//! Accelerating test generation with optimized random patterns (§5.2).
//!
//! "The optimizing procedure can also support deterministic test pattern
//! generation, since the computing time of optimizing and simulation
//! together is less than computing test patterns by the D-algorithm.
//! Fault simulation of optimized patterns can provide nearly complete
//! fault coverage in economical time."
//!
//! This example plays that flow on the C2670 analogue: simulate optimized
//! random patterns with fault dropping, then hand only the leftover
//! faults to a real PODEM run, and compare with ATPG-from-scratch.
//!
//! Run with `cargo run --release --example atpg_acceleration`.

use wrt::prelude::*;

fn main() {
    let circuit = wrt::workloads::c2670ish();
    println!("circuit: {circuit}");
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    println!("targeting {} collapsed faults", faults.len());

    let mut engine = CopEngine::new();
    let optimized = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    let weights = quantize_weights(&optimized.weights, 0.05);

    let budget = 4_000;
    let mut leftovers_by_label = Vec::new();
    for (label, w) in [
        ("conventional", vec![0.5; circuit.num_inputs()]),
        ("optimized", weights),
    ] {
        let result = fault_coverage(
            &circuit,
            &faults,
            WeightedPatterns::new(w, 0xA77),
            budget,
            true,
        );
        // The compact test set: first-detection pattern indices.
        let mut kept: Vec<u64> = result.detected_at().iter().flatten().copied().collect();
        kept.sort_unstable();
        kept.dedup();
        let leftovers: FaultList = faults
            .iter()
            .zip(result.detected_at())
            .filter(|(_, d)| d.is_none())
            .map(|((_, f), _)| f)
            .collect();
        println!();
        println!("{label} random patterns ({budget} applied):");
        println!("  fault coverage        : {:.1} %", result.coverage() * 100.0);
        println!("  compact test set size : {} patterns", kept.len());
        println!("  faults left for ATPG  : {}", leftovers.len());
        leftovers_by_label.push((label, leftovers));
    }

    // Now the deterministic mop-up: PODEM only on what random missed.
    println!();
    for (label, leftovers) in &leftovers_by_label {
        let t0 = std::time::Instant::now();
        let report = generate_tests(&circuit, leftovers, &AtpgConfig::default());
        println!(
            "PODEM mop-up after {label:12}: {} calls, {} tests, {} redundant, {:.1?}",
            report.podem_calls,
            report.tests.len(),
            report.redundant.len(),
            t0.elapsed()
        );
    }
    let t0 = std::time::Instant::now();
    let scratch = generate_tests(&circuit, &faults, &AtpgConfig::default());
    println!(
        "PODEM from scratch          : {} calls, {} tests, {} redundant, {:.1?}",
        scratch.podem_calls,
        scratch.tests.len(),
        scratch.redundant.len(),
        t0.elapsed()
    );
    println!();
    println!("optimized random patterns leave the fewest faults for the");
    println!("expensive deterministic generator — the paper's §5.2 argument.");
}

//! The §2.1 reduction end to end: a sequential accumulator under scan.
//!
//! The optimizer, fault simulator and ATPG all operate on combinational
//! networks; a real design is sequential.  Scan makes the reduction: the
//! registers become pseudo-primary inputs/outputs, the combinational core
//! is tested like any other circuit, and test time is paid per scan shift.
//!
//! Run with `cargo run --release --example sequential_scan`.

use std::time::Duration;

use wrt::bist::accumulator;
use wrt::prelude::*;

fn main() {
    let seq = accumulator(16);
    let core = seq.scan_view();
    println!(
        "sequential accumulator: {} primary inputs, {} registers",
        seq.primary_inputs().len(),
        seq.num_registers()
    );
    println!("scan-test view: {core}");

    // Functional sanity: three clock cycles.
    let mut state = vec![false; 16];
    for add in [1000u32, 2000, 3000] {
        let primary: Vec<bool> = (0..16).map(|i| (add >> i) & 1 == 1).collect();
        let (_, next) = seq.cycle(&primary, &state);
        state = next;
    }
    let total: u32 = state
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| 1 << i)
        .sum();
    println!("functional check: 1000 + 2000 + 3000 = {total}");

    // Scan-test the core like any combinational circuit.
    let faults = FaultList::checkpoints(core).collapse_equivalent(core);
    let mut engine = CopEngine::new();
    let probs = engine.estimate(core, &faults, &vec![0.5; core.num_inputs()]);
    let detectable: Vec<f64> = probs.into_iter().filter(|&p| p > 0.0).collect();
    let n = required_test_length(&detectable, 1e-3).patterns();
    println!(
        "random scan test: {} faults, {:.3e} patterns at 99.9 % confidence",
        faults.len(),
        n
    );

    // Test-application economics: every pattern is shifted through the
    // scan chain.
    let access = seq.scan_access();
    let time = access.test_time(n, 10e6);
    println!(
        "test time at 10 MHz through a {}-cell chain: {:.1} ms",
        seq.num_registers(),
        time.as_secs_f64() * 1e3
    );
    assert!(time < Duration::from_secs(1));

    // Coverage check by simulation.
    let result = fault_coverage(
        core,
        &faults,
        WeightedPatterns::equiprobable(core.num_inputs(), 77),
        n.min(1e6) as u64,
        true,
    );
    println!("simulated: {result}");
}

//! Self test by weighted random patterns — the paper's main use case.
//!
//! Optimizes input probabilities for the S1 comparator, realizes them
//! with a weighted LFSR (AND-ed register bits, dyadic weights), runs a
//! BILBO-style self-test session with MISR signature compaction, and
//! compares against the unweighted session.
//!
//! Run with `cargo run --release --example self_test_bist`.

use wrt::prelude::*;

fn main() {
    let circuit = wrt::workloads::s1();
    println!("circuit under test: {circuit}");
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);

    // Compute and quantize the optimized weights.
    let mut engine = CopEngine::new();
    let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    println!(
        "optimization: {:.2e} -> {:.2e} patterns ({} sweeps)",
        result.initial_length,
        result.final_length,
        result.sweeps.len()
    );

    let patterns = 12_000;

    // Weighted self test: dyadic LFSR weights approximating the optimum.
    let generator = WeightedLfsr::from_weights(&result.weights, 5, 0xD1CE);
    println!(
        "worst weight quantization error (5 AND bits): {:.3}",
        generator.quantization_error(&result.weights)
    );
    let mut weighted_session = SelfTestSession::new(&circuit, generator);
    let weighted = weighted_session.run(&faults, patterns);

    // Conventional self test: plain LFSR (all weights 1/2).
    let flat = WeightedLfsr::from_weights(&vec![0.5; circuit.num_inputs()], 5, 0xD1CE);
    let mut flat_session = SelfTestSession::new(&circuit, flat);
    let conventional = flat_session.run(&faults, patterns);

    println!();
    println!("self-test results after {patterns} patterns:");
    println!(
        "  conventional LFSR : coverage {:.1} %  (golden signature {:08x})",
        conventional.coverage() * 100.0,
        conventional.golden_signature
    );
    println!(
        "  weighted LFSR     : coverage {:.1} %  (golden signature {:08x})",
        weighted.coverage() * 100.0,
        weighted.golden_signature
    );
    println!();
    if weighted.coverage() > conventional.coverage() {
        println!("weighted self test wins, as the paper predicts.");
    } else {
        println!("unexpected: weighting did not help on this run.");
    }
}

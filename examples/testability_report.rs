//! Probabilistic testability report for a circuit — the PROTEST-style
//! analysis the optimizer is built on.
//!
//! For a chosen workload circuit this prints: structural statistics,
//! signal-probability bounds from the cutting algorithm, the hardest
//! faults under equiprobable inputs, proven redundancies, and the
//! estimated conventional test length.
//!
//! Run with `cargo run --release --example testability_report [name]`
//! where `name` is a workload (default `c432ish`; see
//! `wrt::workloads::WORKLOAD_NAMES`).

use wrt::prelude::*;
use wrt_estimate::{constant_line_faults, signal_probability_bounds};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c432ish".into());
    let Some(circuit) = wrt::workloads::by_name(&name) else {
        eprintln!(
            "unknown workload `{name}`; available: {:?}",
            wrt::workloads::WORKLOAD_NAMES
        );
        std::process::exit(1);
    };

    println!("{}", wrt::circuit::CircuitStats::of(&circuit));

    // Cutting-algorithm bounds: how much correlation uncertainty is there?
    let probs = vec![0.5; circuit.num_inputs()];
    let bounds = signal_probability_bounds(&circuit, &probs);
    let widths: Vec<f64> = circuit
        .ids()
        .map(|id| bounds.interval(id).width())
        .collect();
    let avg_width = widths.iter().sum::<f64>() / widths.len() as f64;
    let tight = widths.iter().filter(|w| **w < 1e-9).count();
    println!(
        "cutting bounds: {tight}/{} signals exact, mean interval width {avg_width:.3}",
        widths.len()
    );

    // Fault universe and redundancy proofs.
    let full = FaultList::full(&circuit);
    let collapsed = full.collapse_equivalent(&circuit);
    let redundant = constant_line_faults(&circuit, &collapsed, 14);
    let proven = redundant.iter().filter(|&&r| r).count();
    println!(
        "faults: {} full, {} collapsed, {proven} proven redundant",
        full.len(),
        collapsed.len()
    );

    // Hardest faults under equiprobable inputs.
    let live: FaultList = collapsed
        .iter()
        .zip(&redundant)
        .filter(|(_, &r)| !r)
        .map(|((_, f), _)| f)
        .collect();
    let mut engine = CopEngine::new();
    let estimates = engine.estimate(&circuit, &live, &probs);
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]));
    println!();
    println!("hardest faults at p = 0.5:");
    for &k in order.iter().take(8) {
        let fault = live.fault(wrt::fault::FaultId::from_index(k));
        println!("  {:<30} p = {:.3e}", fault.describe(&circuit), estimates[k]);
    }

    let detectable: Vec<f64> = estimates.iter().copied().filter(|&p| p > 0.0).collect();
    let tl = required_test_length(&detectable, 1e-3);
    println!();
    println!(
        "conventional random test length (99.9 % confidence): {:.3e} patterns, {} relevant faults",
        tl.patterns(),
        tl.num_relevant()
    );
}

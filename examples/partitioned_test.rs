//! The limits of one weight set, and the partitioning fix (paper §5.3).
//!
//! A wide AND and a wide NOR over the same inputs cannot both be made
//! probable by a single input distribution — the paper's pathological
//! case.  The fault-set partitioning extension computes one weight set
//! per conflict group and applies them in consecutive test sessions.
//!
//! Run with `cargo run --release --example partitioned_test`.

use wrt::prelude::*;

fn main() {
    let width = 16;
    let circuit = wrt::workloads::pathological_pair(width);
    println!("circuit: {circuit}");
    let and_out = circuit.node_id("WIDE_AND").expect("exists");
    let nor_out = circuit.node_id("WIDE_NOR").expect("exists");
    let faults = FaultList::from_faults(vec![
        Fault::output(and_out, false), // test = all ones
        Fault::output(nor_out, false), // test = all zeros
    ]);

    let config = OptimizeConfig::default();
    let mut engine = CopEngine::new();

    // One weight set: the conflict forces the equiprobable disaster.
    let single = optimize(&circuit, &faults, &mut engine, &config);
    println!();
    println!(
        "single weight set : {:.3e} patterns (improvement {:.1}x)",
        single.final_length,
        single.improvement_factor()
    );

    // Two weight sets via partitioning.
    let parts = optimize_partitioned(&circuit, &faults, &mut engine, &config, 2);
    println!(
        "partitioned       : {:.3e} patterns total over {} sessions",
        parts.total_length(),
        parts.parts.len()
    );
    for (k, part) in parts.parts.iter().enumerate() {
        let mean: f64 = part.weights.iter().sum::<f64>() / part.weights.len() as f64;
        println!(
            "  session {k}: {} faults, length {:.3e}, mean weight {mean:.2}",
            part.fault_ids.len(),
            part.test_length
        );
    }

    // Confirm by simulation: run each session's patterns back to back.
    let budget_each = 2_000;
    let mut caught = vec![false; faults.len()];
    for (k, part) in parts.parts.iter().enumerate() {
        let result = fault_coverage(
            &circuit,
            &faults,
            WeightedPatterns::new(part.weights.clone(), 31 + k as u64),
            budget_each,
            true,
        );
        for (i, d) in result.detected_at().iter().enumerate() {
            caught[i] |= d.is_some();
        }
    }
    println!();
    println!(
        "simulation with {budget_each} patterns per session: {}/{} conflict faults detected",
        caught.iter().filter(|&&c| c).count(),
        caught.len()
    );
}

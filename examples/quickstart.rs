//! Quickstart: make a random-pattern-resistant circuit testable.
//!
//! Builds a small circuit with one hard fault class (a wide AND), shows
//! that a conventional random test would need hundreds of thousands of
//! patterns, computes optimized input probabilities, and verifies the
//! improvement by fault simulation.
//!
//! Run with `cargo run --release --example quickstart`.

use wrt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-input AND detector feeding a parity network: the AND output
    // stuck-at-0 needs the all-ones pattern (probability 2^-16).
    let mut src = String::from("OUTPUT(flag)\nOUTPUT(par)\n");
    let mut names = Vec::new();
    for i in 0..16 {
        src.push_str(&format!("INPUT(x{i})\n"));
        names.push(format!("x{i}"));
    }
    src.push_str(&format!("flag = AND({})\n", names.join(", ")));
    src.push_str(&format!("par = XOR({})\n", names.join(", ")));
    let circuit = wrt::circuit::parse_bench(&src)?;
    println!("circuit: {circuit}");

    // The fault universe: checkpoint faults, equivalence collapsed.
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    println!("fault list: {} collapsed checkpoint faults", faults.len());

    // How long would a conventional random test need?
    let mut engine = CopEngine::new();
    let conventional = engine.estimate(&circuit, &faults, &[0.5; 16]);
    let n_conv = required_test_length(&conventional, 1e-3);
    println!("conventional test length (99.9 % confidence): {:.3e}", n_conv.patterns());

    // Optimize the input probabilities.
    let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    println!(
        "optimized test length: {:.3e}  (improvement factor {:.0})",
        result.final_length,
        result.improvement_factor()
    );
    let weights = quantize_weights(&result.weights, 0.05);
    println!("optimized weights (0.05 grid): {weights:?}");

    // Verify by simulation: 4096 weighted patterns.
    let optimized_cov = fault_coverage(
        &circuit,
        &faults,
        WeightedPatterns::new(weights, 1),
        4096,
        true,
    );
    let conventional_cov = fault_coverage(
        &circuit,
        &faults,
        WeightedPatterns::equiprobable(16, 1),
        4096,
        true,
    );
    println!("coverage after 4096 conventional patterns: {conventional_cov}");
    println!("coverage after 4096 optimized   patterns: {optimized_cov}");
    Ok(())
}

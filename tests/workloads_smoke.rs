//! Smoke test over the whole workload registry: every built-in circuit
//! must build, levelize, survive a `.bench` write/parse round trip, and
//! report internally consistent [`CircuitStats`] — one guard for all
//! twelve generators at once.

use wrt::circuit::{parse_bench_named, to_bench, CircuitStats};
use wrt::workloads::{all_paper_circuits, by_name, starred_circuits, WORKLOAD_NAMES};

#[test]
fn every_registry_circuit_builds_levelizes_and_round_trips() {
    assert_eq!(WORKLOAD_NAMES.len(), 12, "the paper evaluates twelve circuits");
    for name in WORKLOAD_NAMES {
        let circuit = by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
        assert_eq!(circuit.name(), name);

        // Structural sanity.
        assert!(circuit.num_inputs() > 0, "{name}: no primary inputs");
        assert!(circuit.num_outputs() > 0, "{name}: no primary outputs");
        assert!(circuit.num_gates() > 0, "{name}: no gates");

        // Levelization: every gate sits strictly above all of its fanin,
        // and the recorded depth is the maximum level.
        let levels = circuit.levels();
        let mut max_level = 0;
        for (id, node) in circuit.iter() {
            max_level = max_level.max(levels.level(id));
            for &f in node.fanin() {
                assert!(
                    levels.level(f) < levels.level(id),
                    "{name}: node {id} at level {} has fanin {f} at level {}",
                    levels.level(id),
                    levels.level(f)
                );
            }
        }
        assert_eq!(levels.depth(), max_level, "{name}: depth mismatch");

        // Stats consistency.
        let stats = CircuitStats::of(&circuit);
        assert_eq!(stats.name, name);
        assert_eq!(stats.inputs, circuit.num_inputs(), "{name}: input count");
        assert_eq!(stats.outputs, circuit.num_outputs(), "{name}: output count");
        assert_eq!(stats.gates, circuit.num_gates(), "{name}: gate count");
        assert_eq!(stats.nodes, circuit.num_nodes(), "{name}: node count");
        assert_eq!(stats.depth, levels.depth(), "{name}: stats depth");
        assert_eq!(stats.stems, circuit.fanout_stems().len(), "{name}: stems");
        let by_kind_total: usize = stats.by_kind.values().sum();
        assert_eq!(by_kind_total, stats.gates, "{name}: by_kind must sum to gates");

        // `.bench` write → parse round trip preserves the structure.
        let text = to_bench(&circuit);
        let reparsed = parse_bench_named(&text, name)
            .unwrap_or_else(|e| panic!("{name}: failed to reparse own .bench: {e}"));
        assert_eq!(reparsed.num_inputs(), circuit.num_inputs(), "{name}: reparse inputs");
        assert_eq!(reparsed.num_outputs(), circuit.num_outputs(), "{name}: reparse outputs");
        assert_eq!(reparsed.num_gates(), circuit.num_gates(), "{name}: reparse gates");
    }
}

/// The tiled scale generator holds the same bar as the registry at every
/// size: lint-clean (structural lints over SCOAP), valid levelization,
/// a `.bench` round trip, and exact reproduction from `(gates, seed)`.
#[test]
fn tiled_generator_is_lint_clean_levelized_and_deterministic() {
    for (target, seed) in [(2_000usize, 11u64), (10_000, 11), (30_000, 5)] {
        let circuit = wrt::workloads::tiled(target, seed);
        assert!(circuit.num_gates() >= target, "tiled({target}, {seed}) undershoots");

        // Structural lints (floating inputs, dead gates, constant gates)
        // must not fire at any size: the stitching marks every
        // unconsumed signal as an output by construction.
        let report = wrt::analyze::analyze(&circuit);
        assert!(
            report.findings.is_empty(),
            "tiled({target}, {seed}): {:?}",
            report.findings
        );

        // Levelization validity: every gate strictly above its fanin.
        let levels = circuit.levels();
        for (id, node) in circuit.iter() {
            for &f in node.fanin() {
                assert!(
                    levels.level(f) < levels.level(id),
                    "tiled({target}, {seed}): {id} not above fanin {f}"
                );
            }
        }

        // `.bench` write → parse round trip preserves the structure.
        let text = to_bench(&circuit);
        let reparsed =
            parse_bench_named(&text, circuit.name()).expect("tiled netlist reparses");
        assert_eq!(reparsed.num_gates(), circuit.num_gates());
        assert_eq!(reparsed.num_inputs(), circuit.num_inputs());
        assert_eq!(reparsed.num_outputs(), circuit.num_outputs());

        // Deterministic reproduction, node for node.
        let again = wrt::workloads::tiled(target, seed);
        assert_eq!(again.num_nodes(), circuit.num_nodes());
        for (id, node) in circuit.iter() {
            let other = again.node(id);
            assert_eq!(node.kind(), other.kind(), "tiled({target}, {seed}): {id}");
            assert_eq!(node.fanin(), other.fanin(), "tiled({target}, {seed}): {id}");
        }
    }
}

#[test]
fn registry_collections_are_consistent() {
    let all = all_paper_circuits();
    assert_eq!(all.len(), WORKLOAD_NAMES.len());
    for (circuit, name) in all.iter().zip(WORKLOAD_NAMES) {
        assert_eq!(circuit.name(), name);
    }
    // Starred circuits are drawn from the registry by the same generators.
    for starred in starred_circuits() {
        let again = by_name(starred.name()).expect("starred name registered");
        assert_eq!(again.num_nodes(), starred.num_nodes());
    }
}

//! Smoke test over the whole workload registry: every built-in circuit
//! must build, levelize, survive a `.bench` write/parse round trip, and
//! report internally consistent [`CircuitStats`] — one guard for all
//! twelve generators at once.

use wrt::circuit::{parse_bench_named, to_bench, CircuitStats};
use wrt::workloads::{all_paper_circuits, by_name, starred_circuits, WORKLOAD_NAMES};

#[test]
fn every_registry_circuit_builds_levelizes_and_round_trips() {
    assert_eq!(WORKLOAD_NAMES.len(), 12, "the paper evaluates twelve circuits");
    for name in WORKLOAD_NAMES {
        let circuit = by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
        assert_eq!(circuit.name(), name);

        // Structural sanity.
        assert!(circuit.num_inputs() > 0, "{name}: no primary inputs");
        assert!(circuit.num_outputs() > 0, "{name}: no primary outputs");
        assert!(circuit.num_gates() > 0, "{name}: no gates");

        // Levelization: every gate sits strictly above all of its fanin,
        // and the recorded depth is the maximum level.
        let levels = circuit.levels();
        let mut max_level = 0;
        for (id, node) in circuit.iter() {
            max_level = max_level.max(levels.level(id));
            for &f in node.fanin() {
                assert!(
                    levels.level(f) < levels.level(id),
                    "{name}: node {id} at level {} has fanin {f} at level {}",
                    levels.level(id),
                    levels.level(f)
                );
            }
        }
        assert_eq!(levels.depth(), max_level, "{name}: depth mismatch");

        // Stats consistency.
        let stats = CircuitStats::of(&circuit);
        assert_eq!(stats.name, name);
        assert_eq!(stats.inputs, circuit.num_inputs(), "{name}: input count");
        assert_eq!(stats.outputs, circuit.num_outputs(), "{name}: output count");
        assert_eq!(stats.gates, circuit.num_gates(), "{name}: gate count");
        assert_eq!(stats.nodes, circuit.num_nodes(), "{name}: node count");
        assert_eq!(stats.depth, levels.depth(), "{name}: stats depth");
        assert_eq!(stats.stems, circuit.fanout_stems().len(), "{name}: stems");
        let by_kind_total: usize = stats.by_kind.values().sum();
        assert_eq!(by_kind_total, stats.gates, "{name}: by_kind must sum to gates");

        // `.bench` write → parse round trip preserves the structure.
        let text = to_bench(&circuit);
        let reparsed = parse_bench_named(&text, name)
            .unwrap_or_else(|e| panic!("{name}: failed to reparse own .bench: {e}"));
        assert_eq!(reparsed.num_inputs(), circuit.num_inputs(), "{name}: reparse inputs");
        assert_eq!(reparsed.num_outputs(), circuit.num_outputs(), "{name}: reparse outputs");
        assert_eq!(reparsed.num_gates(), circuit.num_gates(), "{name}: reparse gates");
    }
}

#[test]
fn registry_collections_are_consistent() {
    let all = all_paper_circuits();
    assert_eq!(all.len(), WORKLOAD_NAMES.len());
    for (circuit, name) in all.iter().zip(WORKLOAD_NAMES) {
        assert_eq!(circuit.name(), name);
    }
    // Starred circuits are drawn from the registry by the same generators.
    for starred in starred_circuits() {
        let again = by_name(starred.name()).expect("starred name registered");
        assert_eq!(again.num_nodes(), starred.num_nodes());
    }
}

//! Chaos suite: deterministic fail-point injections across every planted
//! site.
//!
//! The fail-point registry is process-global, so these tests live in
//! their own integration-test binary (one process) and every workload
//! that passes a fail point runs while holding an exclusive
//! [`failpoint::session`] — concurrent tests serialize on the session
//! lock instead of consuming each other's arms.
//!
//! The contract under test, for every site in
//! [`wrt::robust::failpoint::sites::ALL`]: an injected failure is either
//! *recovered bit-identically* (shard panics, estimate anomalies) or
//! surfaced as a *structured error* (budget injections, checkpoint write
//! failures) — never a hang, never silent result loss.  "Never a hang"
//! is enforced mechanically: every chaos workload runs under a
//! wall-clock watchdog.

// Sessions are deliberately held for whole test bodies (resume runs must
// observe the spent arm; recording must span every drill), not dropped at
// first opportunity.
#![allow(clippy::significant_drop_tightening)]

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use wrt::atpg::generate_tests_budgeted;
use wrt::core::optimize_budgeted;
use wrt::estimate::DegradingEngine;
use wrt::prelude::*;
use wrt::robust::failpoint::{self, sites};
use wrt::robust::{CheckpointError, FailAction};
use wrt::sim::{
    fault_coverage_robust, fault_coverage_tiled_robust, BatchMode, CoverageResult, SimOptions,
    TileOptions,
};

/// Patterns per simulation drill: enough chunks that every skip count in
/// the storm lands before the stream ends.
const PATTERNS: u64 = 512;
const THREADS: usize = 3;
const WATCHDOG: Duration = Duration::from_secs(180);

/// Runs `f` on a fresh thread and fails the test if it has not finished
/// within `limit` — the "never hang" clause, enforced mechanically.
fn within<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            handle.join().expect("worker finished after reporting");
            value
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos workload still running after {limit:?} — a hang")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Ok(()) => unreachable!("sender dropped without sending"),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

fn s1() -> (Circuit, FaultList) {
    let circuit = wrt::workloads::s1();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    (circuit, faults)
}

fn patterns(circuit: &Circuit) -> WeightedPatterns {
    WeightedPatterns::equiprobable(circuit.num_inputs(), 0xC0DE)
}

/// An `--set` spec flipping the first AND/NAND gate — a legal ECO on any
/// workload that has one.
fn flippable_gate_spec(circuit: &Circuit) -> String {
    circuit
        .iter()
        .find_map(|(_, n)| match n.kind() {
            wrt::circuit::GateKind::And => Some(format!("{}=OR", n.name())),
            wrt::circuit::GateKind::Nand => Some(format!("{}=NOR", n.name())),
            _ => None,
        })
        .expect("workload has a flippable gate")
}

/// Injects at a sharded-simulation site and asserts full recovery: the
/// run completes, every fault is accounted for, and the result is
/// bit-identical to the serial engine's.
fn shard_drill(site: &'static str, action: FailAction, skip: u64, must_fire: bool) {
    let session = failpoint::session();
    session.arm(site, action, skip);
    let (outcome, reference) = within(WATCHDOG, move || {
        let (circuit, faults) = s1();
        // The serial engine passes no fail points, so it is safe to run
        // while the arm is live.
        let reference = fault_coverage(&circuit, &faults, patterns(&circuit), PATTERNS, true);
        let outcome = fault_coverage_robust(
            &circuit,
            &faults,
            patterns(&circuit),
            PATTERNS,
            true,
            THREADS,
            SimOptions::event(4),
            &Budget::unlimited(),
        );
        (outcome, reference)
    });
    assert!(
        outcome.is_complete(),
        "{site} {action:?} skip {skip}: a recovered run must complete"
    );
    let rc = outcome.into_value();
    assert!(
        rc.recovery.unresolved.is_empty(),
        "{site} {action:?} skip {skip}: unresolved faults {:?}",
        rc.recovery.unresolved
    );
    assert_eq!(
        rc.result.detected_at(),
        reference.detected_at(),
        "{site} {action:?} skip {skip}: recovery must be bit-identical to serial"
    );
    let fired = !session.fired().is_empty();
    if must_fire {
        assert!(fired, "{site} {action:?} skip {skip}: arm never fired");
    }
    if fired {
        assert!(
            !rc.recovery.is_clean(),
            "{site} {action:?} skip {skip}: a fired arm must be visible in the recovery record"
        );
        assert!(rc.recovery.replays >= 1);
    } else {
        assert!(rc.recovery.is_clean());
        assert_eq!(session.still_armed(), vec![site.to_string()]);
    }
}

/// Injects at `tile::run` in the 2D tiled engine and asserts full
/// recovery: the poisoned tile — home or stolen — is replayed serially,
/// the run completes with no unresolved faults, and the result is
/// bit-identical to the serial engine's.
fn tile_drill(action: FailAction, skip: u64, must_fire: bool) {
    let session = failpoint::session();
    session.arm(sites::TILE_RUN, action, skip);
    let (outcome, reference) = within(WATCHDOG, move || {
        let (circuit, faults) = s1();
        // The serial engine passes no fail points — safe while armed.
        let reference = fault_coverage(&circuit, &faults, patterns(&circuit), PATTERNS, true);
        // More threads than shards, so workers drain their home shard and
        // steal: the replay ladder must cover stolen tiles too.
        let outcome = fault_coverage_tiled_robust(
            &circuit,
            &faults,
            patterns(&circuit),
            PATTERNS,
            true,
            &TileOptions {
                block_words: 2,
                pattern_stripes: 4,
                fault_shards: 2,
                threads: 4,
                batch: BatchMode::Auto,
            },
            &Budget::unlimited(),
        );
        (outcome, reference)
    });
    assert!(
        outcome.is_complete(),
        "tile {action:?} skip {skip}: a recovered run must complete"
    );
    let rc = outcome.into_value();
    assert!(
        rc.recovery.unresolved.is_empty(),
        "tile {action:?} skip {skip}: unresolved faults {:?}",
        rc.recovery.unresolved
    );
    assert_eq!(
        rc.result.detected_at(),
        reference.detected_at(),
        "tile {action:?} skip {skip}: recovery must be bit-identical to serial"
    );
    let fired = !session.fired().is_empty();
    if must_fire {
        assert!(fired, "tile {action:?} skip {skip}: arm never fired");
    }
    if fired {
        assert!(
            !rc.recovery.is_clean(),
            "tile {action:?} skip {skip}: a fired arm must be visible in the recovery record"
        );
        assert!(rc.recovery.replays >= 1);
    } else {
        assert!(rc.recovery.is_clean());
        assert_eq!(session.still_armed(), vec![sites::TILE_RUN.to_string()]);
    }
}

/// Injects at `budget::check_in` during a sharded run and returns the
/// partial result: the interruption must be structured, its partial a
/// well-formed prefix of the pattern stream.
fn budget_injection_drill(skip: u64) -> (Vec<Option<u64>>, u64) {
    let session = failpoint::session();
    session.arm(sites::BUDGET_CHECK_IN, FailAction::Error, skip);
    let (outcome, circuit, faults) = within(WATCHDOG, move || {
        let (circuit, faults) = s1();
        let outcome = fault_coverage_robust(
            &circuit,
            &faults,
            patterns(&circuit),
            PATTERNS,
            true,
            THREADS,
            SimOptions::dense(),
            &Budget::unlimited(),
        );
        (outcome, circuit, faults)
    });
    let (partial, done) = match outcome {
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            assert_eq!(reason, BudgetExceeded::Injected);
            assert!(progress.done <= PATTERNS);
            assert_eq!(progress.total, Some(PATTERNS));
            (partial, progress.done)
        }
        RunOutcome::Complete(full) => {
            // The skip count outlived the stream's check-ins: legal, but
            // the arm must still be accounted for — not silently lost.
            assert_eq!(
                session.still_armed(),
                vec![sites::BUDGET_CHECK_IN.to_string()]
            );
            (full, PATTERNS)
        }
    };
    // Bit-identity of the partial: exactly the first `done` patterns.
    let prefix: CoverageResult =
        fault_coverage(&circuit, &faults, patterns(&circuit), done, true);
    assert_eq!(
        partial.result.detected_at(),
        prefix.detected_at(),
        "skip {skip}: the partial must be the serial prefix over {done} patterns"
    );
    (partial.result.detected_at().to_vec(), done)
}

/// Injects at `checkpoint::write`: the write must fail with a structured
/// I/O error and leave no file behind; an unfired arm must leave a
/// round-trippable file.
fn checkpoint_drill(skip: u64, tag: &str) {
    let session = failpoint::session();
    session.arm(sites::CHECKPOINT_WRITE, FailAction::Error, skip);
    let mut ckpt = Checkpoint::new("chaos");
    ckpt.put("tag", tag);
    ckpt.put_f64_bits("value", 0.062_5);
    let path = std::env::temp_dir().join(format!("wrt_chaos_{tag}.ckpt"));
    let _ = std::fs::remove_file(&path);
    let result = ckpt.write_atomic(&path);
    if session.fired().is_empty() {
        result.expect("unfired write succeeds");
        let back = Checkpoint::read(&path, "chaos").expect("round-trips");
        assert_eq!(back.render(), ckpt.render());
    } else {
        match result {
            Err(CheckpointError::Io { .. }) => {}
            other => panic!("injected write failure must be a structured Io error: {other:?}"),
        }
        assert!(!path.exists(), "a failed write must not leave a file");
    }
    let _ = std::fs::remove_file(&path);
}

/// Injects at `estimate::anomaly`: the caller keeps getting healthy,
/// bit-identical answers while the degradation is recorded on the ladder.
fn estimate_drill(skip: u64) {
    let (circuit, faults) = s1();
    let probs = vec![0.5; circuit.num_inputs()];
    let session = failpoint::session();
    // The bare engine passes no fail points; safe while the arm is live.
    let mut reference = CopEngine::new();
    session.arm(sites::ESTIMATE_ANOMALY, FailAction::Error, skip);
    let mut wrapped = DegradingEngine::new(CopEngine::new(), CopEngine::new());
    for _ in 0..4 {
        let expected = reference.estimate(&circuit, &faults, &probs);
        let got = wrapped.estimate(&circuit, &faults, &probs);
        assert!(got.iter().all(|v| v.is_finite()));
        assert_eq!(got, expected, "degradation must not change answers");
    }
    let fired = !session.fired().is_empty();
    assert!(fired, "skip {skip}: four estimates must spend the arm");
    assert!(wrapped.is_degraded());
    assert_eq!(wrapped.ladder().len(), 1, "one switch, recorded once");
}

/// Injects at a serve site and asserts the server keeps speaking the
/// protocol: every request still gets a framed response — the injected
/// failure surfaces as an `err` frame, never a dropped connection or a
/// hang — and shutdown still drains the accept loop.
fn serve_drill(site: &'static str, skip: u64) {
    let session = failpoint::session();
    session.arm(site, FailAction::Error, skip);
    let errors = within(WATCHDOG, move || {
        let registry = std::sync::Arc::new(wrt::serve::Registry::new());
        let handle = wrt::serve::spawn(registry, "127.0.0.1:0", None).expect("server spawns");
        let addr = handle.addr().to_string();
        let spec = flippable_gate_spec(&wrt::workloads::s1());
        let argv: Vec<String> = ["eco", "s1", "--set", spec.as_str()]
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut errors = 0u32;
        // A fresh connection per request, so the accept site passes every
        // time; each request passes the session and ECO-apply sites once.
        for _ in 0..4 {
            match wrt::serve::client::request(&addr, &argv).expect("a frame must come back") {
                Ok(_) => {}
                Err(message) => {
                    errors += 1;
                    assert!(!message.is_empty(), "error frames carry a reason");
                }
            }
        }
        handle.trigger_shutdown();
        handle.wait();
        errors
    });
    if session.fired().is_empty() {
        // The skip outlived the traffic: legal, but the arm must still be
        // accounted for — not silently lost.
        assert_eq!(session.still_armed(), vec![site.to_string()]);
    } else {
        assert!(
            errors >= 1,
            "{site} skip {skip}: a fired arm must surface as an err frame"
        );
    }
}

#[test]
fn drill_workloads_exercise_every_planted_site() {
    let session = failpoint::session();
    within(WATCHDOG, || {
        let (circuit, faults) = s1();
        // Sharded simulation under a budget: spawn, merge, check-in.
        let outcome = fault_coverage_robust(
            &circuit,
            &faults,
            patterns(&circuit),
            128,
            true,
            2,
            SimOptions::dense(),
            &Budget::unlimited(),
        );
        assert!(outcome.is_complete());
        // Atomic checkpoint write.
        let path = std::env::temp_dir().join("wrt_chaos_drill.ckpt");
        Checkpoint::new("chaos").write_atomic(&path).expect("writes");
        let _ = std::fs::remove_file(&path);
        // Screened estimate.
        let mut engine = DegradingEngine::new(CopEngine::new(), CopEngine::new());
        let probs = vec![0.5; circuit.num_inputs()];
        let _ = engine.estimate(&circuit, &faults, &probs);
        // 2D tiled simulation: every tile passes `tile::run`.  W = 1
        // keeps the probe superblock to one of the two blocks, so a
        // post-probe stripe (and its tiles) actually exists at 128
        // patterns.
        let outcome = fault_coverage_tiled_robust(
            &circuit,
            &faults,
            patterns(&circuit),
            128,
            true,
            &TileOptions {
                block_words: 1,
                pattern_stripes: 2,
                threads: 2,
                ..TileOptions::default()
            },
            &Budget::unlimited(),
        );
        assert!(outcome.is_complete());
        // Resident server: the accept loop, the per-request session
        // handler, and the ECO overlay apply each pass their site.
        let registry = std::sync::Arc::new(wrt::serve::Registry::new());
        let handle = wrt::serve::spawn(registry, "127.0.0.1:0", None).expect("server spawns");
        let addr = handle.addr().to_string();
        let spec = flippable_gate_spec(&circuit);
        let argv: Vec<String> = ["eco", "s1", "--set", spec.as_str()]
            .iter()
            .map(ToString::to_string)
            .collect();
        let response = wrt::serve::client::request(&addr, &argv).expect("transport");
        assert!(response.is_ok(), "{response:?}");
        handle.trigger_shutdown();
        handle.wait();
    });
    for site in sites::ALL {
        assert!(
            session.hits(site) > 0,
            "site `{site}` is planted but never exercised by the drills"
        );
    }
}

/// The storm: one seed, one deterministic injection plan, one drill.
/// Every seed must end in recovery or a structured error within the
/// watchdog — across every planted site, both actions, early and late
/// skips.
#[test]
fn seeded_injection_storm_recovers_or_errors_never_hangs() {
    for seed in 0..30u64 {
        let (site_index, skip) = failpoint::seeded_plan(seed, sites::ALL.len(), 3);
        let site = sites::ALL[site_index];
        match site {
            sites::WORKER_SPAWN | sites::SHARD_MERGE => {
                let action = if seed % 2 == 0 {
                    FailAction::Panic
                } else {
                    FailAction::Error
                };
                shard_drill(site, action, skip, false);
            }
            sites::BUDGET_CHECK_IN => {
                // Same skip twice: the injected interruption must be
                // deterministic — identical partial, identical progress.
                let (first, done_first) = budget_injection_drill(skip);
                let (second, done_second) = budget_injection_drill(skip);
                assert_eq!(done_first, done_second, "seed {seed}");
                assert_eq!(first, second, "seed {seed}: partials diverged");
            }
            sites::CHECKPOINT_WRITE => checkpoint_drill(skip, &format!("storm{seed}")),
            sites::ESTIMATE_ANOMALY => estimate_drill(skip),
            sites::TILE_RUN => {
                let action = if seed % 2 == 0 {
                    FailAction::Panic
                } else {
                    FailAction::Error
                };
                tile_drill(action, skip, false);
            }
            sites::SERVE_ACCEPT | sites::SERVE_SESSION | sites::SERVE_ECO_APPLY => {
                serve_drill(site, skip);
            }
            other => unreachable!("unknown site {other}"),
        }
    }
}

#[test]
fn shard_panics_and_merge_failures_recover_bit_identically() {
    for site in [sites::WORKER_SPAWN, sites::SHARD_MERGE] {
        for action in [FailAction::Panic, FailAction::Error] {
            for skip in 0..2u64 {
                shard_drill(site, action, skip, true);
            }
        }
    }
}

#[test]
fn tile_panics_and_errors_recover_bit_identically() {
    // Skips 0..6 land the injection on different tiles of the 2×4 grid —
    // early and late stripes, home and stolen claims alike.
    for action in [FailAction::Panic, FailAction::Error] {
        for skip in 0..6u64 {
            tile_drill(action, skip, true);
        }
    }
}

#[test]
fn injected_interruption_checkpoints_and_resumes_optimize_bit_identically() {
    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
    let session = failpoint::session();
    let (circuit, faults) = s1();
    let config = OptimizeConfig::default();
    // The unbudgeted optimizer never checks in, so it passes no fail
    // points even while the arm is live.
    let mut reference_engine = CopEngine::new();
    let reference = optimize(&circuit, &faults, &mut reference_engine, &config);

    session.arm(sites::BUDGET_CHECK_IN, FailAction::Error, 1);
    let mut engine = CopEngine::new();
    let first = optimize_budgeted(
        &circuit,
        &faults,
        &mut engine,
        &config,
        &Budget::unlimited(),
        None,
    )
    .expect("no resume state to validate");
    assert_eq!(
        first.outcome.interrupt_reason(),
        Some(BudgetExceeded::Injected)
    );
    let ckpt = first.checkpoint.expect("interrupted runs carry resume state");

    // The arm is spent; resume inside the same session and the descent
    // must land exactly where the uninterrupted reference did.
    let mut resumed_engine = CopEngine::new();
    let resumed = optimize_budgeted(
        &circuit,
        &faults,
        &mut resumed_engine,
        &config,
        &Budget::unlimited(),
        Some(&ckpt),
    )
    .expect("checkpoint validates");
    assert!(resumed.outcome.is_complete());
    let got = resumed.outcome.into_value();
    assert_eq!(bits(&got.weights), bits(&reference.weights));
    assert_eq!(got.final_length.to_bits(), reference.final_length.to_bits());
    assert_eq!(
        got.initial_length.to_bits(),
        reference.initial_length.to_bits()
    );
    assert_eq!(got.excluded, reference.excluded);
    assert_eq!(got.engine_calls, reference.engine_calls);
    assert_eq!(got.sweeps.len(), reference.sweeps.len());
    for (g, r) in got.sweeps.iter().zip(&reference.sweeps) {
        assert_eq!(g.test_length.to_bits(), r.test_length.to_bits());
        assert_eq!(g.num_relevant, r.num_relevant);
    }
}

#[test]
fn injected_interruption_checkpoints_and_resumes_atpg_bit_identically() {
    let session = failpoint::session();
    let (circuit, faults) = s1();
    let config = AtpgConfig::default();
    // The unbudgeted runner never checks in — safe while armed.
    let reference = generate_tests(&circuit, &faults, &config);

    session.arm(sites::BUDGET_CHECK_IN, FailAction::Error, 2);
    let first = generate_tests_budgeted(&circuit, &faults, &config, &Budget::unlimited(), None)
        .expect("no resume state to validate");
    assert_eq!(
        first.outcome.interrupt_reason(),
        Some(BudgetExceeded::Injected)
    );
    let partial = first.outcome.value();
    assert!(
        !partial.survivors.is_empty(),
        "an early interruption leaves unattempted faults"
    );
    let ckpt = first.checkpoint.expect("interrupted runs carry resume state");

    let resumed = generate_tests_budgeted(
        &circuit,
        &faults,
        &config,
        &Budget::unlimited(),
        Some(&ckpt),
    )
    .expect("checkpoint validates");
    assert!(resumed.outcome.is_complete());
    let got = resumed.outcome.into_value();
    assert_eq!(got.tests, reference.tests, "random fill must resume mid-stream");
    assert_eq!(got.detected, reference.detected);
    assert_eq!(got.redundant, reference.redundant);
    assert_eq!(got.aborted, reference.aborted);
    assert!(got.survivors.is_empty());
    assert_eq!(got.podem_calls, reference.podem_calls);
    assert_eq!(got.backtracks, reference.backtracks);
}

/// A valid optimize-shaped checkpoint to corrupt.
fn sample_checkpoint_text() -> String {
    let mut ckpt = Checkpoint::new("optimize");
    ckpt.put("fingerprint", "00dead00beef0000");
    ckpt.put("num_inputs", 3_u64);
    ckpt.put_f64_slice_bits("weights", &[0.25, 0.5, 1.0 - 1e-16]);
    ckpt.put_f64_bits("best_length", 1234.5678e12);
    ckpt.put_u64_slice("excluded", &[3, 17, 99]);
    ckpt.render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-byte corruption and truncation of a checkpoint file are
    /// either *detected* (a structured error — never a panic) or
    /// *harmless* (the parsed fields are exactly the original's, e.g. a
    /// same-byte "flip" or a dropped trailing newline).  Silently parsing
    /// different data is the one forbidden outcome.
    #[test]
    fn corrupted_checkpoints_never_parse_silently(
        position in 0usize..4096,
        replacement in 0u8..128,
        truncate in any::<bool>(),
    ) {
        let original = sample_checkpoint_text();
        let reference = Checkpoint::parse(&original, "optimize").expect("valid");
        let index = position % original.len();
        let mutated = if truncate {
            original[..index].to_string()
        } else {
            let mut bytes = original.into_bytes();
            bytes[index] = replacement;
            match String::from_utf8(bytes) {
                Ok(s) => s,
                Err(_) => return Ok(()), // ASCII replacement keeps UTF-8; unreachable
            }
        };
        match Checkpoint::parse(&mutated, "optimize") {
            Err(_) => {} // detected — structured, no panic
            Ok(parsed) => prop_assert_eq!(
                parsed.render(),
                reference.render(),
                "corruption parsed as different data"
            ),
        }
    }
}

//! Registry-level validation of the static analysis subsystem: the
//! built-in workloads are lint-clean, SCOAP's structural difficulty
//! ranking agrees with COP's probabilistic one where costs stay finite,
//! and the analysis seeds stay consistent with the estimators.

use wrt::prelude::*;
use wrt_estimate::spearman;

/// Every registry circuit passes every built-in lint and has no
/// SCOAP-undetectable checkpoint fault: the workload generators fold
/// constants and strip dead logic (`simplify`), and the lints must not
/// fire on healthy netlists.
#[test]
fn registry_is_lint_clean() {
    for name in wrt::workloads::WORKLOAD_NAMES {
        let circuit = wrt::workloads::by_name(name).expect("registered");
        let report = analyze(&circuit);
        assert!(
            report.findings.is_empty(),
            "{name}: {:?}",
            report.findings
        );
        assert_eq!(
            report.scoap.undetectable, 0,
            "{name}: SCOAP flags undetectable faults in an irredundant workload"
        );
    }
}

/// SCOAP cost and COP log-difficulty rank faults the same way on
/// circuits whose costs stay well below saturation.  The two models
/// share no arithmetic — SCOAP counts assignments, COP multiplies
/// probabilities — so strong rank agreement is a real cross-check of
/// both.  Thresholds are set from measured values (s1 +0.96, c499ish
/// +0.91, c2670ish +0.64, c7552ish +0.57) with slack.
#[test]
fn scoap_ranks_agree_with_cop_on_tractable_circuits() {
    let strong = [("s1", 0.9), ("c499ish", 0.8), ("c2670ish", 0.5), ("c7552ish", 0.5)];
    for (name, threshold) in strong {
        let r = rank_correlation(name);
        assert!(
            r > threshold,
            "{name}: spearman {r:.3} below {threshold}"
        );
    }
}

/// Even where deep arithmetic saturates costs into ties, the ranking
/// never *inverts*: no registry circuit shows a significantly negative
/// correlation.
#[test]
fn scoap_ranks_never_invert_on_the_registry() {
    for name in wrt::workloads::WORKLOAD_NAMES {
        let r = rank_correlation(name);
        assert!(r > -0.1, "{name}: spearman {r:.3} — SCOAP ranking inverted");
    }
}

fn rank_correlation(name: &str) -> f64 {
    let circuit = wrt::workloads::by_name(name).expect("registered");
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let scoap = Scoap::compute(&circuit);
    let costs: Vec<f64> = faults
        .as_slice()
        .iter()
        .map(|&f| scoap.fault_cost(&circuit, f) as f64)
        .collect();
    let mut engine = CopEngine::new();
    let probs = engine.estimate(&circuit, &faults, &vec![0.5; circuit.num_inputs()]);
    // COP detection probabilities span many decades; compare ranks
    // against log-difficulty, with p = 0 mapped beyond every finite one.
    let difficulty: Vec<f64> = probs
        .iter()
        .map(|&p| if p > 0.0 { -p.ln() } else { f64::MAX })
        .collect();
    spearman(&costs, &difficulty)
}

/// The SCOAP optimizer seed is a valid weight vector on every registry
/// circuit and biases wide-AND-dominated inputs the same direction the
/// optimizer's own descent does.
#[test]
fn scoap_seed_weights_are_valid_on_the_registry() {
    for name in wrt::workloads::WORKLOAD_NAMES {
        let circuit = wrt::workloads::by_name(name).expect("registered");
        let scoap = Scoap::compute(&circuit);
        let weights = scoap_seed_weights(&circuit, &scoap);
        assert_eq!(weights.len(), circuit.num_inputs(), "{name}");
        assert!(
            weights.iter().all(|w| (0.05..=0.95).contains(w)),
            "{name}: seed weight out of bounds"
        );
    }
}

/// Backtrace guidance never changes PODEM's conclusions on a full
/// registry circuit — only the search effort.
#[test]
fn podem_guidance_is_conclusion_invariant_on_c880ish() {
    let circuit = wrt::workloads::by_name("c880ish").expect("registered");
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let scoap = Scoap::compute(&circuit);
    let guided = Podem::with_backtrace_costs(&circuit, &scoap);
    let unguided = Podem::unguided(&circuit);
    for (_, fault) in faults.iter() {
        let g = guided.generate(fault);
        let u = unguided.generate(fault);
        let class = |o: &AtpgOutcome| match o {
            AtpgOutcome::Test(_) => "test",
            AtpgOutcome::Redundant => "redundant",
            AtpgOutcome::Aborted => "aborted",
        };
        assert_eq!(class(&g), class(&u), "{}", fault.describe(&circuit));
    }
}

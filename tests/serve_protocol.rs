//! Adversarial protocol tests for the resident server.
//!
//! Three contracts, enforced against a live `wrt serve` instance over
//! real sockets:
//!
//! * **Token soup never kills the server.**  Requests assembled from a
//!   fuzz alphabet of real verbs, real flags, and garbage always get a
//!   framed `ok`/`err` response — never a panic, never a hang (every
//!   runaway verb is cut short by the server's default deadline), never
//!   a dropped connection.
//! * **Malformed frames are structured errors.**  Oversized lines,
//!   invalid UTF-8, blank lines, CRLF, and pipelined requests all
//!   resolve to well-formed frames.
//! * **Concurrent sessions ≡ serial.**  N threads interleaving verbs
//!   over persistent connections receive responses bit-identical to a
//!   serial run of the same verbs against the same registry.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use wrt::serve::protocol::{read_response, LineReader, MAX_LINE};
use wrt::serve::{client, execute, spawn, ExecContext, Registry, ServerHandle};

/// Per-request safety net: any runaway verb the fuzzer assembles is
/// interrupted at its next budget check-in.
const DEADLINE: Duration = Duration::from_millis(300);

/// One long-lived server shared by every case in this binary (spawning
/// per fuzz case would dominate the run).  Deliberately never shut
/// down — process exit reaps it.
fn fuzz_addr() -> &'static str {
    static SERVER: OnceLock<(ServerHandle, String)> = OnceLock::new();
    let (_, addr) = SERVER.get_or_init(|| {
        let handle = spawn(Arc::new(Registry::new()), "127.0.0.1:0", Some(DEADLINE))
            .expect("fuzz server spawns");
        let addr = handle.addr().to_string();
        (handle, addr)
    });
    addr
}

/// Writes raw bytes on a fresh connection and reads one response frame.
/// The outer `Err` is a transport/framing failure — the fuzz contract is
/// that it never happens for newline-terminated input.
fn raw_response(bytes: &[u8]) -> Result<Result<String, String>, String> {
    let stream = TcpStream::connect(fuzz_addr()).expect("connect");
    (&stream).write_all(bytes).expect("send");
    let mut reader = LineReader::new(&stream);
    read_response(&mut reader, &mut || true)
}

fn strs(args: &[&str]) -> Vec<String> {
    args.iter().map(ToString::to_string).collect()
}

/// The fuzz alphabet: every verb the server speaks, the flags they take,
/// plausible values, and garbage.  Deliberately absent: `--out`,
/// `--checkpoint`, `--resume` (no fuzz case may touch the filesystem),
/// `--time-limit` (must not override the safety-net deadline), big
/// workload names (the deadline would cut them off anyway, but slowly),
/// and `shutdown` (the server is shared across cases).
const ALPHABET: &[&str] = &[
    "stats", "analyze", "estimate", "eco", "simulate", "optimize", "atpg", "workloads", "stat",
    "load", "flush", "help", "generate", "s1", "#1", "#999999", "#nope", "--top", "3", "--json",
    "--lint", "--weights", "0.5,0.5", "0.25", "--set", "G10=OR", "x=NAND", "=", "--patterns",
    "64", "--confidence", "0.95", "--grid", "2", "--threads", "2", "--seed", "7", "--gates",
    "32", "--engine", "cop", "--guidance", "scoap", "--max-evals", "5", "nonsense", "--", "-1",
    "1e309", "NaN", "\u{2603}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn token_soup_always_gets_a_frame_and_never_kills_the_server(
        // At least one token: a blank line is a keep-alive the server
        // deliberately never answers (covered by the pipelining test).
        tokens in proptest::collection::vec(prop::sample::select(ALPHABET.to_vec()), 1..6),
    ) {
        let mut line = tokens.join(" ");
        line.push('\n');
        let response = raw_response(line.as_bytes());
        prop_assert!(response.is_ok(), "transport failure on {line:?}: {response:?}");
        // The server must still answer a known-good request afterwards.
        let alive = client::run(fuzz_addr(), &strs(&["workloads"]));
        prop_assert!(alive.is_ok(), "server unhealthy after {line:?}: {alive:?}");
    }
}

#[test]
fn oversized_lines_are_refused_with_an_err_frame() {
    let mut line = vec![b'a'; MAX_LINE + 1];
    line.push(b'\n');
    let response = raw_response(&line).expect("a frame must come back");
    let message = response.expect_err("oversized input is an error");
    assert!(message.contains("exceeds"), "unexpected reason: {message}");
}

#[test]
fn invalid_utf8_is_refused_with_an_err_frame() {
    let response = raw_response(b"stats \xff\xfe s1\n").expect("a frame must come back");
    let message = response.expect_err("non-UTF-8 input is an error");
    assert!(message.contains("UTF-8"), "unexpected reason: {message}");
}

#[test]
fn blank_lines_crlf_and_pipelining_are_tolerated() {
    let stream = TcpStream::connect(fuzz_addr()).expect("connect");
    (&stream)
        .write_all(b"\n\nworkloads\r\nworkloads\nstat\n")
        .expect("send");
    let mut reader = LineReader::new(&stream);
    let first = read_response(&mut reader, &mut || true)
        .expect("frame")
        .expect("workloads succeeds");
    let second = read_response(&mut reader, &mut || true)
        .expect("frame")
        .expect("workloads succeeds");
    assert_eq!(first, second, "one connection, identical answers");
    read_response(&mut reader, &mut || true)
        .expect("frame")
        .expect("stat succeeds");
}

#[test]
fn unknown_verbs_and_bad_arguments_are_structured_errors() {
    for line in [
        "frobnicate\n",
        "stats\n",
        "stats no-such-circuit-anywhere\n",
        "estimate s1 --weights 0.5\n",
        "eco s1 --set garbage\n",
        "simulate s1\n",
        "#7\n",
    ] {
        let response = raw_response(line.as_bytes()).expect("a frame must come back");
        assert!(response.is_err(), "{line:?} must be an err frame: {response:?}");
    }
}

#[test]
fn concurrent_interleaved_sessions_match_serial_execution_bit_for_bit() {
    let registry = Arc::new(Registry::new());
    let handle = spawn(Arc::clone(&registry), "127.0.0.1:0", None).expect("server spawns");
    let addr = handle.addr().to_string();

    // The serial reference: the same verbs, the same registry, no
    // server in the path.  `uid`-bearing outputs (stats, analyze
    // --json) only compare equal because server and reference share one
    // registry — uids are process-local.
    let requests: Vec<Vec<String>> = vec![
        strs(&["stats", "s1"]),
        strs(&["estimate", "s1", "--top", "3"]),
        strs(&["analyze", "s1", "--json"]),
        strs(&["estimate", "s1", "--confidence", "0.9"]),
        strs(&["workloads"]),
        strs(&["stats", "c880ish"]),
    ];
    let ctx = ExecContext::new(Arc::clone(&registry));
    let serial: Vec<String> = requests
        .iter()
        .map(|argv| execute(&ctx, argv).expect("serial reference"))
        .collect();

    let workers: Vec<_> = (0..4)
        .map(|rotation: usize| {
            let addr = addr.clone();
            let requests = requests.clone();
            let serial = serial.clone();
            thread::spawn(move || {
                // One persistent connection per session; each session
                // walks the verbs in a different order so the server
                // interleaves distinct verbs at any instant.
                let stream = TcpStream::connect(&addr).expect("connect");
                let mut reader = LineReader::new(&stream);
                for round in 0..3 {
                    for k in 0..requests.len() {
                        let i = (k + rotation) % requests.len();
                        let mut line = requests[i].join(" ");
                        line.push('\n');
                        (&stream).write_all(line.as_bytes()).expect("send");
                        let served = read_response(&mut reader, &mut || true)
                            .expect("frame")
                            .expect("verb succeeds");
                        assert_eq!(
                            served, serial[i],
                            "session {rotation} round {round} diverged on {:?}",
                            requests[i]
                        );
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("session thread");
    }
    handle.trigger_shutdown();
    handle.wait();
}

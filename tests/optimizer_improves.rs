//! The optimizer's contract across the workload family: it never hurts,
//! and it rescues every random-pattern-resistant circuit.

use wrt::prelude::*;

fn faults_for(circuit: &wrt::circuit::Circuit) -> FaultList {
    FaultList::checkpoints(circuit).collapse_equivalent(circuit)
}

#[test]
fn starred_circuits_improve_by_orders_of_magnitude() {
    // s2/c7552ish run in the release-mode bench harness; keep the two
    // faster starred circuits for the debug-mode test suite.
    for name in ["s1", "c2670ish"] {
        let circuit = wrt::workloads::by_name(name).expect("registered");
        let faults = faults_for(&circuit);
        let mut engine = CopEngine::new();
        let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
        assert!(
            result.improvement_factor() > 100.0,
            "{name}: factor {}",
            result.improvement_factor()
        );
    }
}

#[test]
fn easy_circuits_are_not_made_worse() {
    for name in ["c499ish", "c880ish"] {
        let circuit = wrt::workloads::by_name(name).expect("registered");
        let faults = faults_for(&circuit);
        let mut engine = CopEngine::new();
        let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
        assert!(
            result.final_length <= result.initial_length,
            "{name}: {} -> {}",
            result.initial_length,
            result.final_length
        );
    }
}

#[test]
fn weights_stay_within_bounds_and_width() {
    let circuit = wrt::workloads::c880ish();
    let faults = faults_for(&circuit);
    let config = OptimizeConfig::default();
    let mut engine = CopEngine::new();
    let result = optimize(&circuit, &faults, &mut engine, &config);
    assert_eq!(result.weights.len(), circuit.num_inputs());
    let (lo, hi) = config.weight_bounds;
    for (i, &w) in result.weights.iter().enumerate() {
        assert!(w >= lo - 1e-12 && w <= hi + 1e-12, "weight {i} = {w}");
    }
}

#[test]
fn quantization_to_the_grid_keeps_most_of_the_gain() {
    let circuit = wrt::workloads::s1();
    let faults = faults_for(&circuit);
    let mut engine = CopEngine::new();
    let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    let quantized = quantize_weights(&result.weights, 0.05);
    let probs = engine.estimate(&circuit, &faults, &quantized);
    let detectable: Vec<f64> = probs.into_iter().filter(|&p| p > 0.0).collect();
    let quantized_length = required_test_length(&detectable, 1e-3).patterns();
    assert!(
        quantized_length < result.initial_length / 100.0,
        "quantized {} vs initial {}",
        quantized_length,
        result.initial_length
    );
}

#[test]
fn partitioning_solves_the_pathological_conflict() {
    let circuit = wrt::workloads::pathological_pair(14);
    let and_out = circuit.node_id("WIDE_AND").expect("exists");
    let nor_out = circuit.node_id("WIDE_NOR").expect("exists");
    let faults = FaultList::from_faults(vec![
        Fault::output(and_out, false),
        Fault::output(nor_out, false),
    ]);
    let config = OptimizeConfig::default();
    let mut engine = CopEngine::new();
    let single = optimize(&circuit, &faults, &mut engine, &config);
    let parts = optimize_partitioned(&circuit, &faults, &mut engine, &config, 2);
    assert!(
        parts.total_length() * 10.0 < single.final_length,
        "partitioned {} vs single {}",
        parts.total_length(),
        single.final_length
    );
    // Simulate both weight sets back to back: both hard faults detected
    // within a small budget.
    let budget_each = 2_000;
    let mut caught = vec![false; faults.len()];
    for (k, part) in parts.parts.iter().enumerate() {
        let result = fault_coverage(
            &circuit,
            &faults,
            WeightedPatterns::new(part.weights.clone(), 100 + k as u64),
            budget_each,
            true,
        );
        for (i, d) in result.detected_at().iter().enumerate() {
            caught[i] |= d.is_some();
        }
    }
    assert!(caught.iter().all(|&c| c), "both conflict faults detected");
}

mod proptests {
    use proptest::prelude::*;
    use wrt::prelude::*;
    use wrt_circuit::CircuitBuilder;

    fn arb_circuit() -> impl Strategy<Value = wrt::circuit::Circuit> {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Not,
        ]);
        proptest::collection::vec(
            (kinds, proptest::collection::vec(0usize..64, 1..4)),
            4..24,
        )
        .prop_map(|specs| {
            let mut b = CircuitBuilder::named("rand");
            let mut ids = Vec::new();
            for i in 0..6 {
                ids.push(b.input(format!("i{i}")));
            }
            for (kind, picks) in specs {
                let fanin: Vec<_> = if kind == GateKind::Not {
                    vec![ids[picks[0] % ids.len()]]
                } else {
                    picks.iter().map(|&p| ids[p % ids.len()]).collect()
                };
                ids.push(b.gate_auto(kind, &fanin).expect("valid"));
            }
            b.mark_output(*ids.last().expect("non-empty"));
            b.build().expect("valid circuit")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Invariants of `optimize` on arbitrary circuits: the reported
        /// final length never exceeds the initial one, all weights respect
        /// the configured bounds, and the reported lengths are reproduced
        /// by re-estimating at the returned weights.
        #[test]
        fn optimizer_invariants_hold_on_random_circuits(circuit in arb_circuit()) {
            let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
            let config = OptimizeConfig { max_sweeps: 6, ..OptimizeConfig::default() };
            let mut engine = CopEngine::new();
            let result = optimize(&circuit, &faults, &mut engine, &config);
            prop_assert!(result.final_length <= result.initial_length * (1.0 + 1e-9));
            let (lo, hi) = config.weight_bounds;
            for &w in &result.weights {
                prop_assert!(w >= lo - 1e-12 && w <= hi + 1e-12, "weight {w}");
            }
            if result.final_length.is_finite() {
                // Re-estimate at the returned weights: the objective value
                // must reach the confidence threshold at the reported N.
                let probs: Vec<f64> = engine
                    .estimate(&circuit, &faults, &result.weights)
                    .into_iter()
                    .filter(|&p| p > 0.0)
                    .collect();
                let theta = config.theta();
                let check = required_test_length(&probs, theta).patterns();
                prop_assert!(
                    check <= result.final_length * 1.01 + 2.0,
                    "reported {} vs recomputed {}",
                    result.final_length,
                    check
                );
            }
        }
    }
}

//! End-to-end reproduction of the paper's S1 narrative: the comparator is
//! hopeless under conventional random patterns and fully testable under
//! optimized ones.

use wrt::prelude::*;

fn s1_setup() -> (wrt::circuit::Circuit, FaultList) {
    let circuit = wrt::workloads::s1();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    (circuit, faults)
}

#[test]
fn s1_conventional_random_test_is_hopeless() {
    let (circuit, faults) = s1_setup();
    let mut engine = CopEngine::new();
    let probs = engine.estimate(&circuit, &faults, &vec![0.5; circuit.num_inputs()]);
    let detectable: Vec<f64> = probs.into_iter().filter(|&p| p > 0.0).collect();
    let n = required_test_length(&detectable, 1e-3).patterns();
    // The AEQB cone forces ~2^-24 probabilities: hundreds of millions of
    // patterns, exactly the paper's Table 1 regime.
    assert!(n > 1e8, "N = {n}");
}

#[test]
fn s1_optimization_gains_orders_of_magnitude_and_simulation_confirms() {
    let (circuit, faults) = s1_setup();
    let mut engine = CopEngine::new();
    let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    assert!(
        result.improvement_factor() > 1e3,
        "factor {}",
        result.improvement_factor()
    );
    assert!(result.final_length < 1e6, "final {}", result.final_length);

    // Table 2 vs Table 4 in miniature (2000 patterns to keep debug-mode
    // test times reasonable).
    let patterns = 2000;
    let conventional = fault_coverage(
        &circuit,
        &faults,
        WeightedPatterns::equiprobable(circuit.num_inputs(), 11),
        patterns,
        true,
    );
    let weights = quantize_weights(&result.weights, 0.05);
    let optimized = fault_coverage(
        &circuit,
        &faults,
        WeightedPatterns::new(weights, 11),
        patterns,
        true,
    );
    // 2000 patterns is an order below the optimized full-confidence
    // length (~4·10^4), so expect high-but-not-complete coverage.
    assert!(
        optimized.coverage() > 0.93,
        "optimized coverage {}",
        optimized.coverage()
    );
    assert!(
        optimized.coverage() > conventional.coverage() + 0.2,
        "optimized {} vs conventional {}",
        optimized.coverage(),
        conventional.coverage()
    );
}

#[test]
fn optimized_weights_are_asymmetric_like_the_appendix() {
    // The paper's appendix lists strongly biased values (0.05 … 0.95);
    // a successful optimization of S1 must leave the equiprobable point.
    let (circuit, faults) = s1_setup();
    let mut engine = CopEngine::new();
    let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    let extreme = result
        .weights
        .iter()
        .filter(|&&w| !(0.2..=0.8).contains(&w))
        .count();
    assert!(
        extreme > circuit.num_inputs() / 2,
        "only {extreme} extreme weights"
    );
}

#[test]
fn bench_roundtrip_preserves_optimization_results() {
    // Serialize S1 to .bench, parse it back, and confirm the testability
    // analysis is unchanged (the interchange format is lossless for the
    // whole pipeline).
    let (circuit, faults) = s1_setup();
    let text = wrt::circuit::to_bench(&circuit);
    let reparsed = wrt::circuit::parse_bench(&text).expect("roundtrip parses");
    let faults2 = FaultList::checkpoints(&reparsed).collapse_equivalent(&reparsed);
    assert_eq!(faults.len(), faults2.len());
    let mut engine = CopEngine::new();
    let p1 = engine.estimate(&circuit, &faults, &vec![0.5; circuit.num_inputs()]);
    let p2 = engine.estimate(&reparsed, &faults2, &vec![0.5; reparsed.num_inputs()]);
    let h1 = p1.iter().copied().fold(f64::INFINITY, f64::min);
    let h2 = p2.iter().copied().fold(f64::INFINITY, f64::min);
    assert!((h1 - h2).abs() < 1e-15, "{h1} vs {h2}");
}

//! Fuzz-style property tests: the user-input pipeline
//! (`parse_bench` → levelize → simulate) never panics.
//!
//! These tests justify the panic audit's conclusion for the circuit
//! crate: every failure mode reachable from untrusted `.bench` text is a
//! structured [`ParseBenchError`], and the internal `expect`/`assert`
//! sites that remain (DFS stack invariants, topological-order asserts,
//! `NodeId` width conversions) are unreachable from any input the parser
//! accepts.  The strategy below deliberately generates the adversarial
//! shapes that would trip them if they were reachable: dangling fanin,
//! duplicate definitions, self-loops and longer cycles (a tiny name pool
//! makes collisions and cycles common), unknown gate kinds, missing
//! parentheses, and plain token soup.

use proptest::prelude::*;
use wrt::prelude::*;
use wrt_circuit::scan_bench_issues;

/// One line of a synthetic `.bench` file.  Drawn from a small name pool
/// so that redefinition, forward references, and cycles actually occur
/// instead of every identifier being unique garbage.
fn arb_line() -> impl Strategy<Value = String> {
    let name = prop::sample::select(vec![
        "a", "b", "c", "d", "e", "y", "q0", "_x", "ghost",
    ]);
    let kind = prop::sample::select(vec![
        "AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUFF", "DFF", "MAJ", "and", "N O T", "",
    ]);
    let args = proptest::collection::vec(
        prop::sample::select(vec!["a", "b", "c", "d", "e", "y", "q0", "_x", "ghost"]),
        0..4,
    );
    (0u8..8, name, kind, args).prop_map(|(form, name, kind, args)| match form {
        0 => format!("INPUT({name})"),
        1 => format!("OUTPUT({name})"),
        2 => format!("{name} = {kind}({})", args.join(", ")),
        3 => format!("# {name} {kind}"),
        4 => format!("{name} = {kind}({}", args.join(", ")), // missing ')'
        5 => format!("{name} {kind} {}", args.join(" ")),    // missing '='
        6 => format!("INPUT {name}"),
        _ => format!("  {name}=\t{kind} ( {} )  ", args.join(",")),
    })
}

fn arb_bench_text() -> impl Strategy<Value = String> {
    // Half the cases start from a small valid skeleton (names drawn from
    // the same pool, so appended soup lines interact with it: duplicate
    // definitions of `y`, references to its inputs, etc.); the other
    // half are pure soup.  Without the skeleton essentially nothing
    // parses and the pipeline property would be vacuous.
    (any::<bool>(), proptest::collection::vec(arb_line(), 0..25)).prop_map(|(seed, lines)| {
        let mut text = String::new();
        if seed {
            text.push_str("INPUT(a)\nINPUT(b)\nINPUT(c)\ny = AND(a, b)\nq0 = NOR(y, c)\nOUTPUT(q0)\n");
        }
        text.push_str(&lines.join("\n"));
        text
    })
}

/// Anti-vacuity check: the generator must actually produce netlists the
/// parser accepts, or the pipeline property below would pass trivially
/// by never exercising levelization and simulation.
#[test]
fn generator_produces_parseable_netlists() {
    use proptest::test_runner::TestRng;
    let strategy = arb_bench_text();
    let mut rng = TestRng::from_name("generator_produces_parseable_netlists");
    let accepted = (0..2048)
        .filter(|_| wrt_circuit::parse_bench(&strategy.generate(&mut rng)).is_ok())
        .count();
    assert!(accepted > 0, "no generated netlist ever parsed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse_bench` on arbitrary token soup returns `Ok` or a
    /// structured error — it never panics — and the lenient scanner is
    /// consistent with it in the documented direction: a netlist the
    /// parser accepts scans clean.  (The converse does not hold: the
    /// scanner checks lines, so a comment-only file scans clean while
    /// the parser still rejects the resulting empty circuit.)
    #[test]
    fn parser_never_panics_and_accepted_input_scans_clean(text in arb_bench_text()) {
        let parsed = wrt_circuit::parse_bench(&text);
        let issues = scan_bench_issues(&text);
        if parsed.is_ok() {
            prop_assert!(
                issues.is_empty(),
                "parse accepted but scanner reported {issues:?}"
            );
        }
    }

    /// Every circuit the parser accepts survives the rest of the
    /// pipeline without panicking: levelization (whose topological-order
    /// assert must hold for any parser-built circuit), single-pattern
    /// simulation, and fault simulation over the full collapsed list.
    #[test]
    fn accepted_circuits_levelize_and_simulate(text in arb_bench_text()) {
        let Ok(circuit) = wrt_circuit::parse_bench(&text) else {
            return Ok(());
        };
        let levels = circuit.levels();
        prop_assert!(levels.depth() as usize <= circuit.num_nodes());

        let assignment = vec![false; circuit.num_inputs()];
        let outputs = wrt_sim::simulate_pattern(&circuit, &assignment);
        prop_assert_eq!(outputs.len(), circuit.num_outputs());

        let faults = FaultList::full(&circuit);
        if circuit.num_inputs() > 0 && !faults.is_empty() {
            let source = WeightedPatterns::equiprobable(circuit.num_inputs(), 7);
            let cov = wrt_sim::fault_coverage(&circuit, &faults, source, 64, true);
            prop_assert!(cov.num_detected() <= faults.len());
        }
    }
}

//! Cross-engine validation: the four detection-probability engines must
//! agree with each other (and with ground truth) within their advertised
//! error regimes.

use wrt::prelude::*;
use wrt_estimate::signal_probability_bounds;

/// A reconvergent but small circuit: every engine can handle it and the
/// exact engine provides ground truth.
fn small_circuit() -> wrt::circuit::Circuit {
    wrt::circuit::parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n\
         OUTPUT(y)\nOUTPUT(z)\n\
         m = NAND(a, b)\nn = NOR(c, d)\nx = XOR(m, n)\n\
         y = AND(x, e)\nz = OR(x, a)\n",
    )
    .expect("valid netlist")
}

#[test]
fn monte_carlo_tracks_exact_within_sampling_noise() {
    let circuit = small_circuit();
    let faults = FaultList::full(&circuit);
    let probs = vec![0.3, 0.7, 0.5, 0.4, 0.6];
    let exact = ExactEngine::new(8).estimate(&circuit, &faults, &probs);
    let mc = MonteCarloEngine::new(64 * 512, 3).estimate(&circuit, &faults, &probs);
    for (i, (e, m)) in exact.iter().zip(&mc).enumerate() {
        assert!(
            (e - m).abs() < 0.04,
            "fault {i}: exact {e} vs monte-carlo {m}"
        );
    }
}

#[test]
fn stafan_and_cop_are_reasonable_heuristics_here() {
    let circuit = small_circuit();
    let faults = FaultList::full(&circuit);
    let probs = vec![0.5; 5];
    let exact = ExactEngine::new(8).estimate(&circuit, &faults, &probs);
    let cop = CopEngine::new().estimate(&circuit, &faults, &probs);
    let stafan = StafanEngine::new(64 * 512, 5).estimate(&circuit, &faults, &probs);
    for (i, ((e, c), s)) in exact.iter().zip(&cop).zip(&stafan).enumerate() {
        // Heuristics: allow a generous but bounded error.
        assert!((e - c).abs() < 0.35, "fault {i}: exact {e} vs cop {c}");
        assert!((e - s).abs() < 0.35, "fault {i}: exact {e} vs stafan {s}");
    }
}

#[test]
fn cutting_bounds_bracket_monte_carlo_signal_estimates() {
    let circuit = wrt::workloads::c432ish();
    let probs = vec![0.5; circuit.num_inputs()];
    let bounds = signal_probability_bounds(&circuit, &probs);

    // Estimate signal probabilities by simulation.
    let mut sim = LogicSim::new(&circuit);
    let mut source = WeightedPatterns::equiprobable(circuit.num_inputs(), 9);
    let blocks = 400u32;
    let mut ones = vec![0u64; circuit.num_nodes()];
    for _ in 0..blocks {
        let block = source.next_block(64);
        sim.run(&block.words);
        for id in circuit.ids() {
            ones[id.index()] += u64::from(sim.value(id).count_ones());
        }
    }
    let total = f64::from(blocks) * 64.0;
    for id in circuit.ids() {
        let measured = ones[id.index()] as f64 / total;
        let interval = bounds.interval(id);
        // Allow 3-sigma sampling noise outside the guaranteed interval.
        let slack = 3.0 * (0.25 / total).sqrt();
        assert!(
            measured >= interval.lo - slack && measured <= interval.hi + slack,
            "node {id}: measured {measured} outside [{}, {}]",
            interval.lo,
            interval.hi
        );
    }
}

#[test]
fn engines_rank_hard_faults_consistently() {
    // On the adder/comparator, every engine must agree that the
    // comparator-cone faults are the hardest ones.
    let circuit = wrt::workloads::c2670ish();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let probs = vec![0.5; circuit.num_inputs()];
    let cop = CopEngine::new().estimate(&circuit, &faults, &probs);
    let stafan = StafanEngine::new(64 * 128, 17).estimate(&circuit, &faults, &probs);

    let hardest_cop: Vec<usize> = {
        let mut idx: Vec<usize> = (0..cop.len()).collect();
        idx.sort_by(|&a, &b| cop[a].total_cmp(&cop[b]));
        idx.into_iter().take(10).collect()
    };
    // STAFAN must also consider those faults hard (estimate below 1e-3;
    // their true probability is ~2^-20).
    for &k in &hardest_cop {
        assert!(
            stafan[k] < 1e-3,
            "fault {k}: cop {} stafan {}",
            cop[k],
            stafan[k]
        );
    }
}

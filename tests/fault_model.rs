//! Property tests of the fault-model theorems the pipeline relies on.

use proptest::prelude::*;
use wrt::prelude::*;
use wrt_circuit::CircuitBuilder;

fn arb_circuit() -> impl Strategy<Value = wrt::circuit::Circuit> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
    ]);
    proptest::collection::vec((kinds, proptest::collection::vec(0usize..64, 1..3)), 4..20)
        .prop_map(|specs| {
            let mut b = CircuitBuilder::named("rand");
            let mut ids = Vec::new();
            for i in 0..6 {
                ids.push(b.input(format!("i{i}")));
            }
            for (kind, picks) in specs {
                let fanin: Vec<_> = if kind == GateKind::Not {
                    vec![ids[picks[0] % ids.len()]]
                } else {
                    picks.iter().map(|&p| ids[p % ids.len()]).collect()
                };
                ids.push(b.gate_auto(kind, &fanin).expect("valid"));
            }
            b.mark_output(*ids.last().expect("non-empty"));
            b.mark_output(ids[7.min(ids.len() - 1)]);
            b.build().expect("valid circuit")
        })
}

/// Per-fault detection words over the full 2^6 input space.
fn detection_signature(circuit: &wrt::circuit::Circuit, faults: &FaultList) -> Vec<u64> {
    let mut sim = FaultSimulator::new(circuit, faults);
    let mut source = wrt::sim::ExhaustivePatterns::new(6);
    let block = source.next_block(64);
    sim.detect_block(&block.words, block.mask())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The checkpoint theorem: any pattern set detecting all checkpoint
    /// faults detects every full-universe fault.  Verified exhaustively:
    /// every detectable full-list fault must be detected by the union of
    /// patterns that detect checkpoint faults.
    #[test]
    fn checkpoint_faults_cover_the_full_universe(circuit in arb_circuit()) {
        let full = FaultList::full(&circuit);
        let checkpoints = FaultList::checkpoints(&circuit);
        let full_sig = detection_signature(&circuit, &full);
        let cp_sig = detection_signature(&circuit, &checkpoints);

        // A minimal test set detecting every detectable checkpoint fault:
        // greedily take, for each checkpoint fault, its detecting patterns.
        let mut test_set = 0u64;
        for &w in &cp_sig {
            if w != 0 {
                test_set |= 1 << w.trailing_zeros();
            }
        }
        // Every detectable full-universe fault intersects that test set …
        // after augmenting per the theorem's actual statement: a set
        // detecting ALL checkpoint faults.  Greedy first-pattern picks may
        // not cover a checkpoint fault detected elsewhere, so check the
        // implication on the union of all checkpoint-detecting patterns.
        let all_cp_patterns: u64 = cp_sig.iter().copied().fold(0, |a, w| a | w);
        let _ = test_set;
        for (k, &w) in full_sig.iter().enumerate() {
            if w != 0 {
                prop_assert!(
                    w & all_cp_patterns != 0,
                    "fault {} detectable only outside checkpoint-detecting patterns",
                    full.fault(wrt::fault::FaultId::from_index(k)).describe(&circuit)
                );
            }
        }
    }

    /// Equivalence collapsing is sound: faults in one class are detected
    /// by exactly the same patterns.
    #[test]
    fn equivalence_classes_share_detection_signatures(circuit in arb_circuit()) {
        let full = FaultList::full(&circuit);
        let classes = wrt::fault::EquivalenceClasses::compute(&circuit, &full);
        let sig = detection_signature(&circuit, &full);
        for (id, _) in full.iter() {
            for &other in classes.class_members(id) {
                prop_assert_eq!(
                    sig[id.index()], sig[other.index()],
                    "equivalent faults {} and {} differ",
                    full.fault(id).describe(&circuit),
                    full.fault(other).describe(&circuit)
                );
            }
        }
    }

    /// Dominance collapsing never loses coverage: a pattern set detecting
    /// all remaining faults detects all dropped ones too.
    #[test]
    fn dominance_preserves_full_coverage(circuit in arb_circuit()) {
        let full = FaultList::full(&circuit);
        let reduced = wrt::fault::dominance_collapse(&circuit, &full);
        let full_sig = detection_signature(&circuit, &full);
        let reduced_sig = detection_signature(&circuit, &reduced);
        let reduced_patterns: u64 = reduced_sig.iter().copied().fold(0, |a, w| a | w);
        for (k, &w) in full_sig.iter().enumerate() {
            if w != 0 {
                prop_assert!(
                    w & reduced_patterns != 0,
                    "dropped fault {} undetected by the reduced list's patterns",
                    full.fault(wrt::fault::FaultId::from_index(k)).describe(&circuit)
                );
            }
        }
    }

    /// `.bench` writer/parser roundtrip preserves the Boolean functions
    /// of all outputs (checked exhaustively over the input space).
    #[test]
    fn bench_roundtrip_preserves_functions(circuit in arb_circuit()) {
        let text = wrt::circuit::to_bench(&circuit);
        let reparsed = wrt::circuit::parse_bench(&text).expect("roundtrip parses");
        prop_assert_eq!(circuit.num_inputs(), reparsed.num_inputs());
        prop_assert_eq!(circuit.num_outputs(), reparsed.num_outputs());
        for v in 0..(1u64 << 6) {
            let assignment: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            prop_assert_eq!(
                wrt::sim::simulate_pattern(&circuit, &assignment),
                wrt::sim::simulate_pattern(&reparsed, &assignment),
                "functions differ at {:?}", assignment
            );
        }
    }

    /// `simplify` preserves output functions while never growing the gate
    /// count.
    #[test]
    fn simplify_preserves_functions(circuit in arb_circuit()) {
        let simplified = wrt::circuit::simplify(&circuit);
        prop_assert!(simplified.num_gates() <= circuit.num_gates() + circuit.num_outputs());
        for v in 0..(1u64 << 6) {
            let assignment: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            prop_assert_eq!(
                wrt::sim::simulate_pattern(&circuit, &assignment),
                wrt::sim::simulate_pattern(&simplified, &assignment),
                "functions differ at {:?}", assignment
            );
        }
    }
}

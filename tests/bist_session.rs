//! Hardware-path integration: optimizer output driving a weighted-LFSR
//! self-test session with signature compaction.

use wrt::prelude::*;

#[test]
fn optimized_weighted_lfsr_self_test_beats_flat_lfsr() {
    let circuit = wrt::workloads::c2670ish();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let mut engine = CopEngine::new();
    let optimized = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());

    let patterns = 3000;
    let weighted = {
        let generator = WeightedLfsr::from_weights(&optimized.weights, 5, 0xF00D);
        SelfTestSession::new(&circuit, generator).run(&faults, patterns)
    };
    let flat = {
        let generator = WeightedLfsr::from_weights(&vec![0.5; circuit.num_inputs()], 5, 0xF00D);
        SelfTestSession::new(&circuit, generator).run(&faults, patterns)
    };
    assert!(
        weighted.coverage() > flat.coverage(),
        "weighted {} vs flat {}",
        weighted.coverage(),
        flat.coverage()
    );
    assert!(
        weighted.coverage() > 0.95,
        "weighted coverage {}",
        weighted.coverage()
    );
}

#[test]
fn dyadic_quantization_error_is_bounded() {
    // 5 AND-able bits: every weight in [0.03125, 0.96875] is within 0.22
    // of a realizable dyadic value; typical optimizer outputs much closer.
    let circuit = wrt::workloads::s1();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let mut engine = CopEngine::new();
    let optimized = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
    let generator = WeightedLfsr::from_weights(&optimized.weights, 5, 1);
    assert!(generator.quantization_error(&optimized.weights) <= 0.25);
}

#[test]
fn signatures_are_reproducible_across_sessions() {
    let circuit = wrt::workloads::c880ish();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let run = || {
        let generator = WeightedLfsr::from_weights(&vec![0.5; circuit.num_inputs()], 4, 77);
        SelfTestSession::new(&circuit, generator).run(&faults, 512)
    };
    let a = run();
    let b = run();
    assert_eq!(a.golden_signature, b.golden_signature);
    assert_eq!(a.caught, b.caught);
}

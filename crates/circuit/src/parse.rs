//! Parser for the ISCAS-85 `.bench` netlist format.
//!
//! The format (used by the circuits of Table 1 in the paper, distributed at
//! the ISCAS'85 test session \[BRGL85\]) is line oriented:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! y = NAND(a, b)
//! b = NOT(a)
//! ```
//!
//! Signals may be referenced before they are defined; the parser performs
//! its own topological ordering and rejects combinational cycles.
//!
//! The scan is zero-copy: signal names are `&str` slices borrowed from the
//! input text and fanin references live in one flat arena, so parsing a
//! million-gate netlist performs O(gates) small allocations (the builder's
//! name arena), not O(edges) — the difference between linear and
//! allocator-bound scaling at the sizes `bench_scale` sweeps.

use std::collections::{HashMap, HashSet};

use crate::builder::CircuitBuilder;
use crate::error::ParseBenchError;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

#[derive(Debug)]
struct RawGate<'a> {
    name: &'a str,
    kind: GateKind,
    /// Start of this gate's fanin names in [`Scan::fanin_names`].
    fanin_start: u32,
    fanin_len: u32,
    line: usize,
}

/// Borrowed scan of a `.bench` netlist: all names point into the source
/// text; per-gate fanin lists are slices of one shared arena.
#[derive(Debug, Default)]
struct Scan<'a> {
    inputs: Vec<(&'a str, usize)>,
    outputs: Vec<(&'a str, usize)>,
    gates: Vec<RawGate<'a>>,
    fanin_names: Vec<&'a str>,
}

impl<'a> Scan<'a> {
    fn fanin(&self, g: &RawGate<'a>) -> &[&'a str] {
        let lo = g.fanin_start as usize;
        &self.fanin_names[lo..lo + g.fanin_len as usize]
    }
}

/// Line-level scan of a `.bench` netlist.  Lenient: malformed lines are
/// reported into `issues` and skipped, so one bad line does not hide
/// structural problems elsewhere.
fn scan_lines<'a>(text: &'a str, issues: &mut Vec<ParseBenchError>) -> Scan<'a> {
    let mut scan = Scan::default();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if code.is_empty() {
            continue;
        }
        if let Some(inner) = strip_call(code, "INPUT") {
            scan.inputs.push((inner.trim(), line));
        } else if let Some(inner) = strip_call(code, "OUTPUT") {
            scan.outputs.push((inner.trim(), line));
        } else if let Some(eq) = code.find('=') {
            let target = code[..eq].trim();
            let rhs = code[eq + 1..].trim();
            if target.is_empty() {
                issues.push(syntax(line, "missing signal name before `=`"));
                continue;
            }
            let Some(open) = rhs.find('(') else {
                issues.push(syntax(line, "expected `KIND(args)` after `=`"));
                continue;
            };
            if !rhs.ends_with(')') {
                issues.push(syntax(line, "missing closing `)`"));
                continue;
            }
            let kind: GateKind = match rhs[..open].trim().parse() {
                Ok(k) => k,
                Err(e) => {
                    issues.push(syntax(line, &format!("{e}")));
                    continue;
                }
            };
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanin_start =
                u32::try_from(scan.fanin_names.len()).expect("fanin arena fits in u32");
            scan.fanin_names
                .extend(args.split(',').map(str::trim).filter(|a| !a.is_empty()));
            let fanin_len =
                u32::try_from(scan.fanin_names.len()).expect("fanin arena fits in u32")
                    - fanin_start;
            scan.gates.push(RawGate {
                name: target,
                kind,
                fanin_start,
                fanin_len,
                line,
            });
        } else {
            issues.push(syntax(line, "expected INPUT(..), OUTPUT(..) or `sig = KIND(..)`"));
        }
    }
    scan
}

/// Indexes gate definitions by name, reporting duplicate definitions and
/// input/gate name conflicts into `issues`.
fn index_definitions<'a>(
    scan: &Scan<'a>,
    issues: &mut Vec<ParseBenchError>,
) -> HashMap<&'a str, usize> {
    let mut def: HashMap<&str, usize> = HashMap::with_capacity(scan.gates.len());
    for (i, g) in scan.gates.iter().enumerate() {
        if def.insert(g.name, i).is_some() {
            issues.push(syntax(
                g.line,
                &format!("signal `{}` defined more than once", g.name),
            ));
        }
    }
    for &(name, line) in &scan.inputs {
        if def.contains_key(name) {
            issues.push(syntax(
                line,
                &format!("signal `{name}` is both an input and a gate output"),
            ));
        }
    }
    def
}

/// Parses a `.bench` netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, undefined signals,
/// combinational cycles, or structural violations (duplicate definitions,
/// missing inputs/outputs, wrong gate arity).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = wrt_circuit::parse_bench(
///     "# tiny\nINPUT(a)\nINPUT(b)\nOUTPUT(s)\ns = XOR(a, b)\n",
/// )?;
/// assert_eq!(c.num_inputs(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(text: &str) -> Result<Circuit, ParseBenchError> {
    parse_bench_named(text, "bench")
}

/// Tag bit marking a resolved fanin reference as a primary-input index
/// (as opposed to a gate index).  Node counts are bounded well below
/// 2^31 by the `u32` arenas, so the bit is always free.
const INPUT_REF: u32 = 1 << 31;
/// Resolved-reference sentinel for a signal nobody defines.
const UNDEFINED_REF: u32 = u32::MAX;

/// Like [`parse_bench`] but sets the circuit's name.
///
/// # Errors
///
/// Same conditions as [`parse_bench`].
pub fn parse_bench_named(text: &str, name: &str) -> Result<Circuit, ParseBenchError> {
    let mut issues = Vec::new();
    let scan = scan_lines(text, &mut issues);
    let def = index_definitions(&scan, &mut issues);
    if let Some(first) = issues.into_iter().next() {
        return Err(first);
    }

    let mut builder = CircuitBuilder::named(name);
    let mut input_pos: HashMap<&str, u32> = HashMap::with_capacity(scan.inputs.len());
    let mut input_ids: Vec<NodeId> = Vec::with_capacity(scan.inputs.len());
    for &(name, _) in &scan.inputs {
        input_pos.insert(name, u32::try_from(input_ids.len()).expect("inputs fit in u32"));
        input_ids.push(builder.input(name));
    }

    // Resolve every fanin name exactly once, up front: the DFS below then
    // touches only flat arrays — at million-gate scale the per-edge hash
    // lookups, not the graph walk, dominate this path.
    let fanin_refs: Vec<u32> = scan
        .fanin_names
        .iter()
        .map(|&f| match def.get(f) {
            Some(&fi) => u32::try_from(fi).expect("gate count fits in u32"),
            None => input_pos.get(f).map_or(UNDEFINED_REF, |&p| INPUT_REF | p),
        })
        .collect();

    // Iterative DFS over gate dependencies, emitting in dependency
    // (DFS post) order.  `gate_ids[fi]` is valid once `mark[fi]` is black.
    let mut mark = vec![Mark::White; scan.gates.len()];
    let mut gate_ids: Vec<NodeId> = vec![NodeId::from_index(0); scan.gates.len()];
    let mut fanin_ids: Vec<NodeId> = Vec::new();
    for start in 0..scan.gates.len() {
        if mark[start] == Mark::Black {
            continue;
        }
        // stack of (gate index, next fanin position)
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(&(gi, pos)) = stack.last() {
            let g = &scan.gates[gi];
            if pos < g.fanin_len as usize {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let r = fanin_refs[g.fanin_start as usize + pos];
                if r == UNDEFINED_REF {
                    return Err(ParseBenchError::UndefinedSignal {
                        signal: scan.fanin(g)[pos].to_string(),
                        sink: g.name.to_string(),
                        line: g.line,
                    });
                }
                if r & INPUT_REF != 0 {
                    continue; // primary input: always materialized
                }
                match mark[r as usize] {
                    Mark::Black => {}
                    Mark::Grey => return Err(cycle_error(&scan, &stack, r as usize, g.line)),
                    Mark::White => {
                        mark[r as usize] = Mark::Grey;
                        stack.push((r as usize, 0));
                    }
                }
            } else {
                // All fanins materialized: emit this gate.
                let lo = g.fanin_start as usize;
                fanin_ids.clear();
                fanin_ids.extend(fanin_refs[lo..lo + g.fanin_len as usize].iter().map(
                    |&r| {
                        if r & INPUT_REF != 0 {
                            input_ids[(r & !INPUT_REF) as usize]
                        } else {
                            gate_ids[r as usize]
                        }
                    },
                ));
                gate_ids[gi] = builder.gate(g.kind, g.name, &fanin_ids)?;
                mark[gi] = Mark::Black;
                stack.pop();
            }
        }
    }

    for &(oname, line) in &scan.outputs {
        let id = match def.get(oname) {
            Some(&fi) => gate_ids[fi],
            None => match input_pos.get(oname) {
                Some(&p) => input_ids[p as usize],
                None => {
                    return Err(ParseBenchError::UndefinedSignal {
                        signal: oname.to_string(),
                        sink: "OUTPUT".to_string(),
                        line,
                    })
                }
            },
        };
        builder.mark_output(id);
    }

    Ok(builder.build()?)
}

#[derive(Clone, Copy, PartialEq)]
enum Mark {
    White,
    Grey,
    Black,
}

/// Reconstructs the combinational loop from the DFS stack when a grey node
/// `fi` is re-entered: the stack suffix from `fi`'s frame to the top, with
/// the loop signal repeated at the end to close the path.
fn cycle_error(
    scan: &Scan<'_>,
    stack: &[(usize, usize)],
    fi: usize,
    line: usize,
) -> ParseBenchError {
    let k = stack
        .iter()
        .position(|&(i, _)| i == fi)
        .expect("grey node is on the DFS stack");
    let mut path: Vec<String> = stack[k..]
        .iter()
        .map(|&(i, _)| scan.gates[i].name.to_string())
        .collect();
    path.push(scan.gates[fi].name.to_string());
    ParseBenchError::Cycle { path, line }
}

/// Scans a `.bench` netlist and returns *all* structural issues it can find
/// without building a circuit: syntax errors, duplicate definitions,
/// undriven nets (signals referenced but never defined), and combinational
/// cycles.
///
/// Unlike [`parse_bench`], which stops at the first problem, this is the
/// lint-oriented entry point: every issue is reported, each with the line
/// it was detected on.  An empty result means [`parse_bench`] will get past
/// scanning and dependency resolution (structural `Build` errors such as
/// bad arity can still occur).
///
/// # Example
///
/// ```
/// let issues = wrt_circuit::scan_bench_issues(
///     "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = NOT(p)\ny = OR(a, ghost)\n",
/// );
/// assert_eq!(issues.len(), 2); // one undriven net, one cycle
/// ```
pub fn scan_bench_issues(text: &str) -> Vec<ParseBenchError> {
    let mut issues = Vec::new();
    let scan = scan_lines(text, &mut issues);
    let def = index_definitions(&scan, &mut issues);
    let defined: HashSet<&str> = scan
        .inputs
        .iter()
        .map(|&(n, _)| n)
        .chain(scan.gates.iter().map(|g| g.name))
        .collect();

    // Undriven nets: every reference to a signal nobody defines.
    let mut seen: HashSet<(&str, &str)> = HashSet::new();
    for g in &scan.gates {
        for &fname in scan.fanin(g) {
            if !defined.contains(fname) && seen.insert((fname, g.name)) {
                issues.push(ParseBenchError::UndefinedSignal {
                    signal: fname.to_string(),
                    sink: g.name.to_string(),
                    line: g.line,
                });
            }
        }
    }
    for &(oname, line) in &scan.outputs {
        if !defined.contains(oname) {
            issues.push(ParseBenchError::UndefinedSignal {
                signal: oname.to_string(),
                sink: "OUTPUT".to_string(),
                line,
            });
        }
    }

    // Combinational cycles: same iterative DFS as the parser, but every
    // back edge becomes one finding instead of aborting on the first.
    let mut mark = vec![Mark::White; scan.gates.len()];
    for start in 0..scan.gates.len() {
        if mark[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(&(gi, pos)) = stack.last() {
            let g = &scan.gates[gi];
            let fanin = scan.fanin(g);
            if pos < fanin.len() {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let Some(&fi) = def.get(fanin[pos]) else {
                    continue; // primary input or undriven (already reported)
                };
                match mark[fi] {
                    Mark::Black => {}
                    Mark::Grey => issues.push(cycle_error(&scan, &stack, fi, g.line)),
                    Mark::White => {
                        mark[fi] = Mark::Grey;
                        stack.push((fi, 0));
                    }
                }
            } else {
                mark[gi] = Mark::Black;
                stack.pop();
            }
        }
    }
    issues
}

fn strip_call<'a>(code: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = code.strip_prefix(keyword)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn syntax(line: usize, message: &str) -> ParseBenchError {
    ParseBenchError::Syntax {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_forward_references() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = NOT(a)\n").unwrap();
        assert_eq!(c.num_gates(), 2);
        // m must come before y in topological order
        let m = c.node_id("m").unwrap();
        let y = c.node_id("y").unwrap();
        assert!(m < y);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse_bench("# header\n\nINPUT(a)\nOUTPUT(y) # trailing\ny = BUFF(a)\n").unwrap();
        assert_eq!(c.num_inputs(), 1);
    }

    #[test]
    fn detects_cycles_with_full_path() {
        let err =
            parse_bench("INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = NOT(p)\n").unwrap_err();
        let ParseBenchError::Cycle { path, line } = err else {
            panic!("expected cycle, got {err:?}");
        };
        // The loop is closed: first signal repeated at the end.
        assert_eq!(path.first(), path.last());
        assert_eq!(path.len(), 3);
        assert!(path.contains(&"p".to_string()));
        assert!(path.contains(&"q".to_string()));
        // Closed by q's reference back to p on line 4.
        assert_eq!(line, 4);
    }

    #[test]
    fn detects_undefined_signals() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert_eq!(
            err,
            ParseBenchError::UndefinedSignal {
                signal: "ghost".into(),
                sink: "y".into(),
                line: 3,
            }
        );
    }

    #[test]
    fn detects_undefined_output() {
        let err = parse_bench("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n").unwrap_err();
        assert_eq!(
            err,
            ParseBenchError::UndefinedSignal {
                signal: "nope".into(),
                sink: "OUTPUT".into(),
                line: 2,
            }
        );
    }

    #[test]
    fn scan_reports_all_issues_not_just_the_first() {
        let issues = scan_bench_issues(
            "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = NOT(p)\ny = OR(a, ghost)\nz = BUFF(spook)\n",
        );
        let undriven = issues
            .iter()
            .filter(|i| matches!(i, ParseBenchError::UndefinedSignal { .. }))
            .count();
        let cycles = issues
            .iter()
            .filter(|i| matches!(i, ParseBenchError::Cycle { .. }))
            .count();
        assert_eq!(undriven, 2, "{issues:?}");
        assert_eq!(cycles, 1, "{issues:?}");
    }

    #[test]
    fn scan_is_empty_on_clean_netlists() {
        assert!(scan_bench_issues("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").is_empty());
    }

    #[test]
    fn scan_reports_self_loop() {
        let issues = scan_bench_issues("INPUT(a)\nOUTPUT(q)\nq = AND(a, q)\n");
        assert_eq!(issues.len(), 1);
        let ParseBenchError::Cycle { path, line } = &issues[0] else {
            panic!("expected cycle, got {issues:?}");
        };
        assert_eq!(path.as_slice(), ["q", "q"]);
        assert_eq!(*line, 3);
    }

    #[test]
    fn scan_keeps_going_past_syntax_errors() {
        let issues = scan_bench_issues("INPUT(a)\nwat\ny = OR(a, ghost)\nOUTPUT(y)\n");
        assert!(issues
            .iter()
            .any(|i| matches!(i, ParseBenchError::Syntax { line: 2, .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ParseBenchError::UndefinedSignal { line: 3, .. })));
    }

    #[test]
    fn detects_double_definition() {
        let err =
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 4, .. }));
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = parse_bench("INPUT(a)\nwat\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_gate_kind() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }));
    }

    #[test]
    fn input_also_gate_output_rejected() {
        let err = parse_bench("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }));
    }

    #[test]
    fn output_can_be_an_input() {
        // An input wired straight to an output is legal in .bench.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(a)\nOUTPUT(y)\ny = NOT(b)\n").unwrap();
        assert_eq!(c.num_outputs(), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 50_000-gate chain; the DFS must be iterative.
        let mut text = String::from("INPUT(x0)\nOUTPUT(x50000)\n");
        // Define in *reverse* order to force maximal DFS depth.
        for i in (1..=50_000).rev() {
            text.push_str(&format!("x{i} = NOT(x{})\n", i - 1));
        }
        let c = parse_bench(&text).unwrap();
        assert_eq!(c.num_gates(), 50_000);
    }
}

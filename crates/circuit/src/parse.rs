//! Parser for the ISCAS-85 `.bench` netlist format.
//!
//! The format (used by the circuits of Table 1 in the paper, distributed at
//! the ISCAS'85 test session \[BRGL85\]) is line oriented:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! y = NAND(a, b)
//! b = NOT(a)
//! ```
//!
//! Signals may be referenced before they are defined; the parser performs
//! its own topological ordering and rejects combinational cycles.

use std::collections::HashMap;

use crate::builder::CircuitBuilder;
use crate::error::ParseBenchError;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

#[derive(Debug)]
struct RawGate {
    name: String,
    kind: GateKind,
    fanin: Vec<String>,
    line: usize,
}

/// Parses a `.bench` netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, undefined signals,
/// combinational cycles, or structural violations (duplicate definitions,
/// missing inputs/outputs, wrong gate arity).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = wrt_circuit::parse_bench(
///     "# tiny\nINPUT(a)\nINPUT(b)\nOUTPUT(s)\ns = XOR(a, b)\n",
/// )?;
/// assert_eq!(c.num_inputs(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(text: &str) -> Result<Circuit, ParseBenchError> {
    parse_bench_named(text, "bench")
}

/// Like [`parse_bench`] but sets the circuit's name.
///
/// # Errors
///
/// Same conditions as [`parse_bench`].
pub fn parse_bench_named(text: &str, name: &str) -> Result<Circuit, ParseBenchError> {
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut gates: Vec<RawGate> = Vec::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if code.is_empty() {
            continue;
        }
        if let Some(inner) = strip_call(code, "INPUT") {
            inputs.push((inner.trim().to_string(), line));
        } else if let Some(inner) = strip_call(code, "OUTPUT") {
            outputs.push((inner.trim().to_string(), line));
        } else if let Some(eq) = code.find('=') {
            let target = code[..eq].trim();
            let rhs = code[eq + 1..].trim();
            if target.is_empty() {
                return Err(syntax(line, "missing signal name before `=`"));
            }
            let open = rhs
                .find('(')
                .ok_or_else(|| syntax(line, "expected `KIND(args)` after `=`"))?;
            if !rhs.ends_with(')') {
                return Err(syntax(line, "missing closing `)`"));
            }
            let kind: GateKind = rhs[..open]
                .trim()
                .parse()
                .map_err(|e| syntax(line, &format!("{e}")))?;
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanin: Vec<String> = args
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            gates.push(RawGate {
                name: target.to_string(),
                kind,
                fanin,
                line,
            });
        } else {
            return Err(syntax(line, "expected INPUT(..), OUTPUT(..) or `sig = KIND(..)`"));
        }
    }

    // Index all definitions.
    let mut def: HashMap<&str, usize> = HashMap::new(); // name -> gates index
    for (i, g) in gates.iter().enumerate() {
        if def.insert(g.name.as_str(), i).is_some() {
            return Err(syntax(
                g.line,
                &format!("signal `{}` defined more than once", g.name),
            ));
        }
    }
    for (name, line) in &inputs {
        if def.contains_key(name.as_str()) {
            return Err(syntax(
                *line,
                &format!("signal `{name}` is both an input and a gate output"),
            ));
        }
    }

    // Build: inputs first, then gates in dependency (DFS post) order.
    let mut builder = CircuitBuilder::named(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for (name, _) in &inputs {
        if ids.contains_key(name) {
            // Let the builder report the duplicate-name error uniformly.
        }
        let id = builder.input(name.clone());
        ids.insert(name.clone(), id);
    }

    // Iterative DFS over gate dependencies.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark = vec![Mark::White; gates.len()];
    for start in 0..gates.len() {
        if mark[start] == Mark::Black {
            continue;
        }
        // stack of (gate index, next fanin position)
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(&mut (gi, ref mut pos)) = stack.last_mut() {
            let g = &gates[gi];
            if *pos < g.fanin.len() {
                let fname = &g.fanin[*pos];
                *pos += 1;
                if ids.contains_key(fname) {
                    continue; // already materialized (input or finished gate)
                }
                let Some(&fi) = def.get(fname.as_str()) else {
                    return Err(ParseBenchError::UndefinedSignal(fname.clone()));
                };
                match mark[fi] {
                    Mark::Black => {}
                    Mark::Grey => return Err(ParseBenchError::Cycle(fname.clone())),
                    Mark::White => {
                        mark[fi] = Mark::Grey;
                        stack.push((fi, 0));
                    }
                }
            } else {
                // All fanins materialized: emit this gate.
                let fanin_ids: Vec<NodeId> =
                    g.fanin.iter().map(|f| ids[f.as_str()]).collect();
                let id = builder.gate(g.kind, g.name.clone(), &fanin_ids)?;
                ids.insert(g.name.clone(), id);
                mark[gi] = Mark::Black;
                stack.pop();
            }
        }
    }

    for (oname, _) in &outputs {
        let Some(&id) = ids.get(oname) else {
            return Err(ParseBenchError::UndefinedSignal(oname.clone()));
        };
        builder.mark_output(id);
    }

    Ok(builder.build()?)
}

fn strip_call<'a>(code: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = code.strip_prefix(keyword)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn syntax(line: usize, message: &str) -> ParseBenchError {
    ParseBenchError::Syntax {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_forward_references() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = NOT(a)\n").unwrap();
        assert_eq!(c.num_gates(), 2);
        // m must come before y in topological order
        let m = c.node_id("m").unwrap();
        let y = c.node_id("y").unwrap();
        assert!(m < y);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse_bench("# header\n\nINPUT(a)\nOUTPUT(y) # trailing\ny = BUFF(a)\n").unwrap();
        assert_eq!(c.num_inputs(), 1);
    }

    #[test]
    fn detects_cycles() {
        let err =
            parse_bench("INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = NOT(p)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Cycle(_)));
    }

    #[test]
    fn detects_undefined_signals() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert_eq!(err, ParseBenchError::UndefinedSignal("ghost".into()));
    }

    #[test]
    fn detects_undefined_output() {
        let err = parse_bench("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n").unwrap_err();
        assert_eq!(err, ParseBenchError::UndefinedSignal("nope".into()));
    }

    #[test]
    fn detects_double_definition() {
        let err =
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 4, .. }));
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = parse_bench("INPUT(a)\nwat\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_gate_kind() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }));
    }

    #[test]
    fn input_also_gate_output_rejected() {
        let err = parse_bench("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }));
    }

    #[test]
    fn output_can_be_an_input() {
        // An input wired straight to an output is legal in .bench.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(a)\nOUTPUT(y)\ny = NOT(b)\n").unwrap();
        assert_eq!(c.num_outputs(), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 50_000-gate chain; the DFS must be iterative.
        let mut text = String::from("INPUT(x0)\nOUTPUT(x50000)\n");
        // Define in *reverse* order to force maximal DFS depth.
        for i in (1..=50_000).rev() {
            text.push_str(&format!("x{i} = NOT(x{})\n", i - 1));
        }
        let c = parse_bench(&text).unwrap();
        assert_eq!(c.num_gates(), 50_000);
    }
}

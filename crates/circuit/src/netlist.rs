//! The immutable, topologically ordered circuit representation.
//!
//! Storage is fully flat: gate kinds, fanin lists, fanout lists, names and
//! levels all live in a handful of arena vectors (CSR layout for the
//! variable-length parts), so a circuit performs O(1) heap allocations
//! regardless of node count and every per-node lookup is an offset into a
//! contiguous array.  This is what keeps bytes/gate flat from 10^2 to 10^6
//! gates (see `BENCH_scale.json`).

use std::fmt;

use crate::gate::GateKind;
use crate::levelize::Levels;

/// Identifier of a node (primary input or gate) within one [`Circuit`].
///
/// Node ids are dense indices `0..circuit.num_nodes()` and are assigned in
/// topological order: every node's fanin has a smaller id.  This invariant
/// is what lets simulators and estimators run a single forward pass over
/// `0..n` without any scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a dense index.
    ///
    /// Intended for iteration (`(0..n).map(NodeId::from_index)`); ids built
    /// this way are only meaningful for the circuit whose node count bounds
    /// them.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a [`Circuit`]: a primary input, constant, or logic gate.
///
/// `Node` is a lightweight `Copy` view into the circuit's flat arenas —
/// nodes own no storage of their own.  Accessors borrow from the circuit
/// (`'c`), not from the `Node` value, so `circuit.node(id).fanin()` hands
/// out a slice that outlives the temporary.
#[derive(Clone, Copy)]
pub struct Node<'c> {
    circuit: &'c Circuit,
    index: u32,
}

impl<'c> Node<'c> {
    /// The node's id within its circuit.
    pub fn id(&self) -> NodeId {
        NodeId(self.index)
    }

    /// The node's name (unique within its circuit).
    pub fn name(&self) -> &'c str {
        self.circuit.node_name(NodeId(self.index))
    }

    /// The logic function of this node.
    pub fn kind(&self) -> GateKind {
        self.circuit.kinds[self.index as usize]
    }

    /// The fanin nodes, in declaration order (a slice into the circuit's
    /// fanin arena).
    pub fn fanin(&self) -> &'c [NodeId] {
        self.circuit.fanin(NodeId(self.index))
    }
}

impl fmt::Debug for Node<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name())
            .field("kind", &self.kind())
            .field("fanin", &self.fanin())
            .finish()
    }
}

impl PartialEq for Node<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.kind() == other.kind()
            && self.fanin() == other.fanin()
            && self.name() == other.name()
    }
}

impl Eq for Node<'_> {}

/// An immutable combinational gate-level network.
///
/// Constructed through [`crate::CircuitBuilder`] or [`crate::parse_bench`];
/// once built, a circuit is validated (acyclic by construction, arities
/// checked, unique names) and its nodes are stored in topological order.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
/// )?;
/// assert_eq!(c.num_gates(), 1);
/// assert_eq!(c.levels().depth(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Process-unique identity assigned at build time (clones share it —
    /// a clone is the same immutable structure).  Lets caches keyed on a
    /// circuit distinguish equally-named, equally-sized circuits in O(1).
    pub(crate) uid: u64,
    pub(crate) name: String,
    /// Gate kind of each node, in topological order.
    pub(crate) kinds: Vec<GateKind>,
    /// Fanin lists in CSR layout: the fanin of node `i` is
    /// `fanin_data[fanin_offsets[i]..fanin_offsets[i + 1]]`, in declaration
    /// order.  One flat arena instead of one heap box per node.
    pub(crate) fanin_offsets: Vec<u32>,
    pub(crate) fanin_data: Vec<NodeId>,
    /// Node names, concatenated into one buffer; the name of node `i` is
    /// `name_bytes[name_offsets[i]..name_offsets[i + 1]]`.
    pub(crate) name_bytes: String,
    pub(crate) name_offsets: Vec<u32>,
    /// Node ids sorted by name — the lookup index behind
    /// [`Circuit::node_id`] (binary search instead of a per-name
    /// `HashMap` entry duplicating every name string).
    pub(crate) name_sorted: Vec<NodeId>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    /// Fanout lists in CSR layout: the sinks of node `i` are
    /// `fanout_data[fanout_offsets[i]..fanout_offsets[i + 1]]`, in
    /// ascending sink-id order.  One flat allocation keeps the per-node
    /// fanout walks of event-driven simulation cache-friendly.
    pub(crate) fanout_offsets: Vec<u32>,
    pub(crate) fanout_data: Vec<NodeId>,
    /// `output_flags[i]` is true when node `i` is a primary output.
    pub(crate) output_flags: Vec<bool>,
    /// Position of each primary input in `inputs`, by node index
    /// (`u32::MAX` for non-inputs).
    pub(crate) input_position: Vec<u32>,
    /// Number of non-source nodes, precomputed so [`Circuit::num_gates`]
    /// is O(1) instead of an O(n) scan per call.
    pub(crate) num_gates: u32,
    /// Maximum fanin count over all gates, precomputed.
    pub(crate) max_fanin: u32,
    pub(crate) levels: Levels,
}

impl Circuit {
    /// The circuit's name (e.g. `"s1"`, `"c6288ish"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process-unique identity of this circuit, assigned when it was
    /// built.  Clones return the same value (a clone is the same
    /// immutable structure); two separately built circuits never share
    /// it, even when their names and shapes coincide.  Intended as a
    /// cache key for engines that carry state across calls.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Stable FNV-1a digest of the circuit *structure*: name, node
    /// kinds, fanin lists, node names, and the input/output interface.
    ///
    /// Unlike [`Circuit::uid`] (a process-local cache key), the digest is
    /// identical across processes and runs for structurally identical
    /// circuits — it is what checkpoint sidecars record so `--resume`
    /// can reject a mismatched circuit, and what remote clients can
    /// compare against a server-resident copy.
    pub fn structural_digest(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
            fn word(&mut self, w: u32) {
                for b in w.to_le_bytes() {
                    self.byte(b);
                }
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        for b in self.name.bytes() {
            h.byte(b);
        }
        h.byte(0xFF);
        h.word(self.kinds.len() as u32);
        for &k in &self.kinds {
            h.byte(k as u8);
        }
        for &f in &self.fanin_data {
            h.word(f.0);
        }
        for b in self.name_bytes.bytes() {
            h.byte(b);
        }
        for &o in &self.name_offsets {
            h.word(o);
        }
        for &i in &self.inputs {
            h.word(i.0);
        }
        for &o in &self.outputs {
            h.word(o.0);
        }
        h.0
    }

    /// Total number of nodes, including primary inputs and constants.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (all nodes that are not sources).
    pub fn num_gates(&self) -> usize {
        self.num_gates as usize
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn node(&self, id: NodeId) -> Node<'_> {
        assert!(
            id.index() < self.kinds.len(),
            "node id {id} out of range for circuit with {} nodes",
            self.kinds.len()
        );
        Node {
            circuit: self,
            index: id.0,
        }
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node<'_>)> {
        (0..self.kinds.len()).map(move |i| {
            (
                NodeId::from_index(i),
                Node {
                    circuit: self,
                    index: i as u32,
                },
            )
        })
    }

    /// All node ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.kinds.len()).map(NodeId::from_index)
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The fanin of `id`, in declaration order (equivalent to
    /// `self.node(id).fanin()`).
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        let lo = self.fanin_offsets[i] as usize;
        let hi = self.fanin_offsets[i + 1] as usize;
        &self.fanin_data[lo..hi]
    }

    /// Base index of `id`'s fanin pins in edge-indexed tables.
    ///
    /// Per-pin quantities (pin observabilities, pin counts, SCOAP branch
    /// costs) are stored as flat arrays of length [`Circuit::num_edges`];
    /// pin `p` of gate `id` lives at `fanin_offset(id) + p`.
    pub fn fanin_offset(&self, id: NodeId) -> usize {
        self.fanin_offsets[id.index()] as usize
    }

    /// The name of a node (equivalent to `self.node(id).name()`).
    pub fn node_name(&self, id: NodeId) -> &str {
        let i = id.index();
        let lo = self.name_offsets[i] as usize;
        let hi = self.name_offsets[i + 1] as usize;
        &self.name_bytes[lo..hi]
    }

    /// The nodes driven by `id` (its fanout), in ascending id order.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        let lo = self.fanout_offsets[i] as usize;
        let hi = self.fanout_offsets[i + 1] as usize;
        &self.fanout_data[lo..hi]
    }

    /// Total number of fanout edges (equivalently, fanin edges) in the
    /// circuit.
    pub fn num_edges(&self) -> usize {
        self.fanout_data.len()
    }

    /// Looks a node up by name (binary search over the sorted name index).
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.name_sorted
            .binary_search_by(|&id| self.node_name(id).cmp(name))
            .ok()
            .map(|pos| self.name_sorted[pos])
    }

    /// If `id` is a primary input, its position within [`Circuit::inputs`].
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        let p = self.input_position[id.index()];
        (p != u32::MAX).then_some(p as usize)
    }

    /// Whether `id` is a primary output (`O(1)` bitmap lookup).
    pub fn is_output(&self, id: NodeId) -> bool {
        self.output_flags[id.index()]
    }

    /// The levelization of the circuit (see [`Levels`]).
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// Maximum fanin count over all gates.
    pub fn max_fanin(&self) -> usize {
        self.max_fanin as usize
    }

    /// Nodes with more than one fanout (fanout stems), the source of
    /// reconvergence and thus of signal correlation.
    pub fn fanout_stems(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|&id| self.fanout(id).len() > 1)
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_gates(),
            self.levels.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn topological_invariant_holds() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate(GateKind::And, "g1", &[a, c]).unwrap();
        let g2 = b.gate(GateKind::Or, "g2", &[g1, a]).unwrap();
        b.mark_output(g2);
        let circuit = b.build().unwrap();
        for (id, node) in circuit.iter() {
            for &f in node.fanin() {
                assert!(f < id, "fanin {f} must precede {id}");
            }
        }
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n = b.gate(GateKind::Not, "n", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[a, n]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.fanout(a), &[n, g]);
        assert_eq!(c.fanout(n), &[g]);
        assert!(c.fanout(g).is_empty());
        assert_eq!(c.fanout_stems(), vec![a]);
    }

    #[test]
    fn lookup_by_name_and_input_position() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::Xor, "g", &[a, x]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.node_id("x"), Some(x));
        assert_eq!(c.node_id("nope"), None);
        assert_eq!(c.input_position(x), Some(1));
        assert_eq!(c.input_position(g), None);
        assert!(c.is_output(g));
        assert!(!c.is_output(a));
    }

    #[test]
    fn node_proxy_borrows_from_circuit_not_temporary() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", &[a]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        // The slice and name must outlive the `Node` temporary.
        let fanin = c.node(g).fanin();
        let name = c.node(g).name();
        assert_eq!(fanin, &[a]);
        assert_eq!(name, "g");
        assert_eq!(c.node(g), c.node(g));
        assert_ne!(c.node(g), c.node(a));
    }

    #[test]
    fn csr_fanouts_cover_every_fanin_edge() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n = b.gate(GateKind::Not, "n", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[a, n, x]).unwrap();
        let h = b.gate(GateKind::Xor, "h", &[a, a]).unwrap(); // duplicate fanin
        b.mark_output(g);
        b.mark_output(h);
        let c = b.build().unwrap();
        // Every fanin edge appears exactly once in the driver's fanout list.
        let total: usize = c.ids().map(|id| c.fanout(id).len()).sum();
        let fanin_edges: usize = c.iter().map(|(_, n)| n.fanin().len()).sum();
        assert_eq!(total, fanin_edges);
        assert_eq!(c.num_edges(), fanin_edges);
        assert_eq!(c.fanout(a), &[n, g, h, h]); // ascending, duplicates kept
        // Fanout slices are ascending (CSR fill visits sinks in id order).
        for id in c.ids() {
            for w in c.fanout(id).windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn fanin_offsets_index_edge_tables() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n = b.gate(GateKind::Not, "n", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[n, x]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        // Offsets partition 0..num_edges() and respect fanin arity.
        let mut covered = vec![false; c.num_edges()];
        for id in c.ids() {
            let base = c.fanin_offset(id);
            for pin in 0..c.fanin(id).len() {
                assert!(!covered[base + pin]);
                covered[base + pin] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
        assert_eq!(c.fanin(g), &[n, x]);
    }

    #[test]
    fn display_is_informative() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", &[a]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        let s = format!("{c}");
        assert!(s.contains("1 inputs"));
        assert!(s.contains("1 gates"));
    }
}

//! The immutable, topologically ordered circuit representation.

use std::collections::HashMap;
use std::fmt;

use crate::gate::GateKind;
use crate::levelize::Levels;

/// Identifier of a node (primary input or gate) within one [`Circuit`].
///
/// Node ids are dense indices `0..circuit.num_nodes()` and are assigned in
/// topological order: every node's fanin has a smaller id.  This invariant
/// is what lets simulators and estimators run a single forward pass over
/// `0..n` without any scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a dense index.
    ///
    /// Intended for iteration (`(0..n).map(NodeId::from_index)`); ids built
    /// this way are only meaningful for the circuit whose node count bounds
    /// them.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a [`Circuit`]: a primary input, constant, or logic gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanin: Box<[NodeId]>,
}

impl Node {
    /// The node's name (unique within its circuit).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The logic function of this node.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nodes, in declaration order.
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }
}

/// An immutable combinational gate-level network.
///
/// Constructed through [`crate::CircuitBuilder`] or [`crate::parse_bench`];
/// once built, a circuit is validated (acyclic by construction, arities
/// checked, unique names) and its nodes are stored in topological order.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
/// )?;
/// assert_eq!(c.num_gates(), 1);
/// assert_eq!(c.levels().depth(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Process-unique identity assigned at build time (clones share it —
    /// a clone is the same immutable structure).  Lets caches keyed on a
    /// circuit distinguish equally-named, equally-sized circuits in O(1).
    pub(crate) uid: u64,
    pub(crate) name: String,
    /// Nodes in topological order (fanin ids < own id).
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    /// Fanout lists in CSR layout: the sinks of node `i` are
    /// `fanout_data[fanout_offsets[i]..fanout_offsets[i + 1]]`, in
    /// ascending sink-id order.  One flat allocation keeps the per-node
    /// fanout walks of event-driven simulation cache-friendly.
    pub(crate) fanout_offsets: Vec<u32>,
    pub(crate) fanout_data: Vec<NodeId>,
    /// `output_flags[i]` is true when node `i` is a primary output.
    pub(crate) output_flags: Vec<bool>,
    pub(crate) name_index: HashMap<String, NodeId>,
    /// Position of each primary input in `inputs`, by node index
    /// (`usize::MAX` for non-inputs).
    pub(crate) input_position: Vec<usize>,
    pub(crate) levels: Levels,
}

impl Circuit {
    /// The circuit's name (e.g. `"s1"`, `"c6288ish"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process-unique identity of this circuit, assigned when it was
    /// built.  Clones return the same value (a clone is the same
    /// immutable structure); two separately built circuits never share
    /// it, even when their names and shapes coincide.  Intended as a
    /// cache key for engines that carry state across calls.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Total number of nodes, including primary inputs and constants.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (all nodes that are not sources).
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| !n.kind.is_source()).count()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// All node ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The nodes driven by `id` (its fanout), in ascending id order.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        let lo = self.fanout_offsets[i] as usize;
        let hi = self.fanout_offsets[i + 1] as usize;
        &self.fanout_data[lo..hi]
    }

    /// Total number of fanout edges (equivalently, fanin edges) in the
    /// circuit.
    pub fn num_edges(&self) -> usize {
        self.fanout_data.len()
    }

    /// Looks a node up by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// If `id` is a primary input, its position within [`Circuit::inputs`].
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        let p = self.input_position[id.index()];
        (p != usize::MAX).then_some(p)
    }

    /// Whether `id` is a primary output (`O(1)` bitmap lookup).
    pub fn is_output(&self, id: NodeId) -> bool {
        self.output_flags[id.index()]
    }

    /// The levelization of the circuit (see [`Levels`]).
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// Maximum fanin count over all gates.
    pub fn max_fanin(&self) -> usize {
        self.nodes.iter().map(|n| n.fanin.len()).max().unwrap_or(0)
    }

    /// Nodes with more than one fanout (fanout stems), the source of
    /// reconvergence and thus of signal correlation.
    pub fn fanout_stems(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|&id| self.fanout(id).len() > 1)
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_gates(),
            self.levels.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn topological_invariant_holds() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate(GateKind::And, "g1", &[a, c]).unwrap();
        let g2 = b.gate(GateKind::Or, "g2", &[g1, a]).unwrap();
        b.mark_output(g2);
        let circuit = b.build().unwrap();
        for (id, node) in circuit.iter() {
            for &f in node.fanin() {
                assert!(f < id, "fanin {f} must precede {id}");
            }
        }
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n = b.gate(GateKind::Not, "n", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[a, n]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.fanout(a), &[n, g]);
        assert_eq!(c.fanout(n), &[g]);
        assert!(c.fanout(g).is_empty());
        assert_eq!(c.fanout_stems(), vec![a]);
    }

    #[test]
    fn lookup_by_name_and_input_position() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::Xor, "g", &[a, x]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.node_id("x"), Some(x));
        assert_eq!(c.node_id("nope"), None);
        assert_eq!(c.input_position(x), Some(1));
        assert_eq!(c.input_position(g), None);
        assert!(c.is_output(g));
        assert!(!c.is_output(a));
    }

    #[test]
    fn csr_fanouts_cover_every_fanin_edge() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n = b.gate(GateKind::Not, "n", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[a, n, x]).unwrap();
        let h = b.gate(GateKind::Xor, "h", &[a, a]).unwrap(); // duplicate fanin
        b.mark_output(g);
        b.mark_output(h);
        let c = b.build().unwrap();
        // Every fanin edge appears exactly once in the driver's fanout list.
        let total: usize = c.ids().map(|id| c.fanout(id).len()).sum();
        let fanin_edges: usize = c.iter().map(|(_, n)| n.fanin().len()).sum();
        assert_eq!(total, fanin_edges);
        assert_eq!(c.num_edges(), fanin_edges);
        assert_eq!(c.fanout(a), &[n, g, h, h]); // ascending, duplicates kept
        // Fanout slices are ascending (CSR fill visits sinks in id order).
        for id in c.ids() {
            for w in c.fanout(id).windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn display_is_informative() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", &[a]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        let s = format!("{c}");
        assert!(s.contains("1 inputs"));
        assert!(s.contains("1 gates"));
    }
}

//! Summary statistics for circuits.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;
use crate::netlist::Circuit;

/// Aggregate statistics of a circuit, for reports and sanity checks.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = wrt_circuit::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let stats = wrt_circuit::CircuitStats::of(&c);
/// assert_eq!(stats.gates, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Logic gate count (excluding inputs/constants).
    pub gates: usize,
    /// Total node count.
    pub nodes: usize,
    /// Circuit depth in gate levels.
    pub depth: u32,
    /// Number of fanout stems (nodes with fanout > 1).
    pub stems: usize,
    /// Gate count per kind.
    pub by_kind: BTreeMap<GateKind, usize>,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut by_kind = BTreeMap::new();
        for (_, n) in circuit.iter() {
            if !n.kind().is_source() {
                *by_kind.entry(n.kind()).or_insert(0) += 1;
            }
        }
        CircuitStats {
            name: circuit.name().to_string(),
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            gates: circuit.num_gates(),
            nodes: circuit.num_nodes(),
            depth: circuit.levels().depth(),
            stems: circuit.fanout_stems().len(),
            by_kind,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PIs, {} POs, {} gates, depth {}, {} stems",
            self.name, self.inputs, self.outputs, self.gates, self.depth, self.stems
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_bench;

    #[test]
    fn counts_by_kind() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\nn = NAND(a, m)\ny = XOR(m, n)\n",
        )
        .unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.by_kind[&GateKind::Nand], 2);
        assert_eq!(s.by_kind[&GateKind::Xor], 1);
        assert_eq!(s.gates, 3);
        assert_eq!(s.stems, 2); // a and m both fan out twice
        assert!(format!("{s}").contains("NAND: 2"));
    }
}

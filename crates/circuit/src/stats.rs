//! Summary statistics for circuits.

use std::collections::BTreeMap;
use std::fmt;
use std::mem::size_of;

use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

/// Aggregate statistics of a circuit, for reports and sanity checks.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = wrt_circuit::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let stats = wrt_circuit::CircuitStats::of(&c);
/// assert_eq!(stats.gates, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Logic gate count (excluding inputs/constants).
    pub gates: usize,
    /// Total node count.
    pub nodes: usize,
    /// Circuit depth in gate levels.
    pub depth: u32,
    /// Number of fanout stems (nodes with fanout > 1).
    pub stems: usize,
    /// Gate count per kind.
    pub by_kind: BTreeMap<GateKind, usize>,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut by_kind = BTreeMap::new();
        for (_, n) in circuit.iter() {
            if !n.kind().is_source() {
                *by_kind.entry(n.kind()).or_insert(0) += 1;
            }
        }
        CircuitStats {
            name: circuit.name().to_string(),
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            gates: circuit.num_gates(),
            nodes: circuit.num_nodes(),
            depth: circuit.levels().depth(),
            stems: circuit.fanout_stems().len(),
            by_kind,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PIs, {} POs, {} gates, depth {}, {} stems",
            self.name, self.inputs, self.outputs, self.gates, self.depth, self.stems
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind}: {count}")?;
        }
        Ok(())
    }
}

/// Heap memory held by one [`Circuit`], broken down by component.
///
/// All figures are exact byte counts derived from the flat arenas'
/// capacities (the circuit is immutable, so capacity ≈ length); since the
/// workspace forbids `unsafe` code there is no global-allocator hook, and
/// this analytic accounting *is* the allocation-measurement shim used by
/// `bench_scale` for its bytes/gate curve.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = wrt_circuit::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let m = c.memory_footprint();
/// assert!(m.total() > 0);
/// assert_eq!(
///     m.total(),
///     m.kinds + m.fanin_csr + m.fanout_csr + m.names + m.levels + m.interface
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Per-node gate-kind array.
    pub kinds: usize,
    /// Fanin CSR arena (offsets + edge data).
    pub fanin_csr: usize,
    /// Fanout CSR arena (offsets + edge data).
    pub fanout_csr: usize,
    /// Name arena (string bytes + offsets + sorted lookup index).
    pub names: usize,
    /// Levelization arrays (per-node level + level CSR).
    pub levels: usize,
    /// Interface arrays (inputs, outputs, output flags, input positions).
    pub interface: usize,
}

impl MemoryFootprint {
    /// Total heap bytes across all components.
    pub fn total(&self) -> usize {
        self.kinds + self.fanin_csr + self.fanout_csr + self.names + self.levels + self.interface
    }

    /// Heap bytes per gate (total / gate count), the scale-benchmark
    /// figure of merit.  Returns the total when the circuit somehow has
    /// zero gates (sources only), to stay finite.
    pub fn bytes_per_gate(&self, gates: usize) -> f64 {
        let total = self.total();
        if gates == 0 {
            total as f64
        } else {
            total as f64 / gates as f64
        }
    }
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "memory: {} bytes total", self.total())?;
        writeln!(f, "  kinds:      {}", self.kinds)?;
        writeln!(f, "  fanin CSR:  {}", self.fanin_csr)?;
        writeln!(f, "  fanout CSR: {}", self.fanout_csr)?;
        writeln!(f, "  names:      {}", self.names)?;
        writeln!(f, "  levels:     {}", self.levels)?;
        write!(f, "  interface:  {}", self.interface)
    }
}

impl Circuit {
    /// Heap memory held by this circuit, by component (see
    /// [`MemoryFootprint`]).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            kinds: self.kinds.capacity() * size_of::<GateKind>(),
            fanin_csr: self.fanin_offsets.capacity() * size_of::<u32>()
                + self.fanin_data.capacity() * size_of::<NodeId>(),
            fanout_csr: self.fanout_offsets.capacity() * size_of::<u32>()
                + self.fanout_data.capacity() * size_of::<NodeId>(),
            names: self.name_bytes.capacity()
                + self.name_offsets.capacity() * size_of::<u32>()
                + self.name_sorted.capacity() * size_of::<NodeId>(),
            levels: self.levels.heap_bytes(),
            interface: self.inputs.capacity() * size_of::<NodeId>()
                + self.outputs.capacity() * size_of::<NodeId>()
                + self.output_flags.capacity() * size_of::<bool>()
                + self.input_position.capacity() * size_of::<u32>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_bench;

    #[test]
    fn counts_by_kind() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\nn = NAND(a, m)\ny = XOR(m, n)\n",
        )
        .unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.by_kind[&GateKind::Nand], 2);
        assert_eq!(s.by_kind[&GateKind::Xor], 1);
        assert_eq!(s.gates, 3);
        assert_eq!(s.stems, 2); // a and m both fan out twice
        assert!(format!("{s}").contains("NAND: 2"));
    }

    #[test]
    fn footprint_components_are_plausible() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\nn = NAND(a, m)\ny = XOR(m, n)\n",
        )
        .unwrap();
        let m = c.memory_footprint();
        // 6 edges of 4 bytes plus 6 offsets of 4 bytes is the floor for
        // each CSR arena (capacity may round up).
        assert!(m.fanin_csr >= 6 * 4 + 6 * 4);
        assert!(m.fanout_csr >= 6 * 4 + 6 * 4);
        // Name arena holds at least the concatenated name bytes.
        assert!(m.names >= "abmny".len());
        assert!(m.levels > 0);
        assert!(m.interface > 0);
        assert!(m.bytes_per_gate(c.num_gates()) > 0.0);
        let shown = format!("{m}");
        assert!(shown.contains("bytes total"));
    }
}

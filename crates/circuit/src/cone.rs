//! Transitive fanin/fanout cone extraction.
//!
//! Cones are the unit of locality for fault simulation (only the output cone
//! of a fault site can differ from the fault-free circuit) and for exact
//! probability computation (a signal depends only on its input support).

use crate::netlist::{Circuit, NodeId};

/// The transitive fanin of `roots`, including the roots themselves,
/// returned as a sorted list of node ids (i.e. in topological order).
pub fn transitive_fanin(circuit: &Circuit, roots: &[NodeId]) -> Vec<NodeId> {
    let mut mark = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut mark[id.index()], true) {
            continue;
        }
        stack.extend(circuit.node(id).fanin().iter().copied());
    }
    collect_marked(&mark)
}

/// The transitive fanout of `roots`, including the roots themselves,
/// returned as a sorted list of node ids (i.e. in topological order).
pub fn transitive_fanout(circuit: &Circuit, roots: &[NodeId]) -> Vec<NodeId> {
    let mut mark = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut mark[id.index()], true) {
            continue;
        }
        stack.extend(circuit.fanout(id).iter().copied());
    }
    collect_marked(&mark)
}

/// The primary inputs a node depends on (its *input support*), sorted by id.
pub fn input_support(circuit: &Circuit, node: NodeId) -> Vec<NodeId> {
    transitive_fanin(circuit, &[node])
        .into_iter()
        .filter(|&id| circuit.node(id).kind() == crate::GateKind::Input)
        .collect()
}

/// The cone needed to evaluate the given primary output: its transitive
/// fanin in topological order (alias of [`transitive_fanin`] with one root).
pub fn output_cone(circuit: &Circuit, output: NodeId) -> Vec<NodeId> {
    transitive_fanin(circuit, &[output])
}

fn collect_marked(mark: &[bool]) -> Vec<NodeId> {
    mark.iter()
        .enumerate()
        .filter(|&(_i, &m)| m).map(|(i, &_m)| NodeId::from_index(i))
        .collect()
}

/// A lazy per-root cache of transitive fanout cones.
///
/// Incremental estimators query the same handful of cones (one per primary
/// input) once per optimizer coordinate, sweep after sweep; this cache
/// computes each cone on first use and hands out the cached slice
/// afterwards.  A cache instance is tied to one circuit — callers that
/// switch circuits must [`clear`](FanoutCones::clear) it (the cache resets
/// itself only on a node-count mismatch, which is a safety net, not a
/// circuit-identity check).
///
/// # Example
///
/// ```
/// use wrt_circuit::{parse_bench, FanoutCones};
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let mut cones = FanoutCones::new();
/// let a = c.node_id("a").unwrap();
/// assert_eq!(cones.cone(&c, a).len(), 2); // a itself + the AND gate
/// assert_eq!(cones.cached_roots(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FanoutCones {
    cones: Vec<Option<Vec<NodeId>>>,
}

impl FanoutCones {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FanoutCones::default()
    }

    /// The transitive fanout cone of `root` (including `root`), in
    /// topological order; computed on first use, cached afterwards.
    pub fn cone(&mut self, circuit: &Circuit, root: NodeId) -> &[NodeId] {
        if self.cones.len() != circuit.num_nodes() {
            self.cones = vec![None; circuit.num_nodes()];
        }
        self.cones[root.index()]
            .get_or_insert_with(|| transitive_fanout(circuit, &[root]))
            .as_slice()
    }

    /// Drops every cached cone (required when switching circuits).
    pub fn clear(&mut self) {
        self.cones.clear();
    }

    /// Number of roots whose cone has been computed.
    pub fn cached_roots(&self) -> usize {
        self.cones.iter().filter(|c| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn diamond() -> (Circuit, [NodeId; 5]) {
        // a -> n1 -> g (AND) <- n2 <- a ; classic reconvergence
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n1 = b.gate(GateKind::Not, "n1", &[a]).unwrap();
        let n2 = b.gate(GateKind::Buf, "n2", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[n1, n2]).unwrap();
        b.mark_output(g);
        b.mark_output(x);
        (b.build().unwrap(), [a, x, n1, n2, g])
    }

    #[test]
    fn fanin_cone_of_reconvergent_gate() {
        let (c, [a, _x, n1, n2, g]) = diamond();
        assert_eq!(transitive_fanin(&c, &[g]), vec![a, n1, n2, g]);
    }

    #[test]
    fn fanout_cone_of_stem() {
        let (c, [a, _x, n1, n2, g]) = diamond();
        assert_eq!(transitive_fanout(&c, &[a]), vec![a, n1, n2, g]);
    }

    #[test]
    fn support_excludes_unrelated_inputs() {
        let (c, [a, x, _, _, g]) = diamond();
        assert_eq!(input_support(&c, g), vec![a]);
        assert_eq!(input_support(&c, x), vec![x]);
    }

    #[test]
    fn cones_are_topologically_sorted() {
        let (c, _) = diamond();
        for out in c.outputs() {
            let cone = output_cone(&c, *out);
            for w in cone.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn fanout_cone_cache_matches_direct_computation() {
        let (c, [a, x, _, _, _]) = diamond();
        let mut cache = FanoutCones::new();
        assert_eq!(cache.cached_roots(), 0);
        assert_eq!(cache.cone(&c, a), transitive_fanout(&c, &[a]).as_slice());
        assert_eq!(cache.cone(&c, x), transitive_fanout(&c, &[x]).as_slice());
        assert_eq!(cache.cached_roots(), 2);
        // Second query hits the cache (same contents either way).
        assert_eq!(cache.cone(&c, a), transitive_fanout(&c, &[a]).as_slice());
        assert_eq!(cache.cached_roots(), 2);
    }

    #[test]
    fn fanout_cone_cache_clears() {
        let (c, [a, ..]) = diamond();
        let mut cache = FanoutCones::new();
        let _ = cache.cone(&c, a);
        cache.clear();
        assert_eq!(cache.cached_roots(), 0);
    }
}

//! Transitive fanin/fanout cone extraction.
//!
//! Cones are the unit of locality for fault simulation (only the output cone
//! of a fault site can differ from the fault-free circuit) and for exact
//! probability computation (a signal depends only on its input support).

use crate::netlist::{Circuit, NodeId};

/// The transitive fanin of `roots`, including the roots themselves,
/// returned as a sorted list of node ids (i.e. in topological order).
pub fn transitive_fanin(circuit: &Circuit, roots: &[NodeId]) -> Vec<NodeId> {
    let mut mark = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut mark[id.index()], true) {
            continue;
        }
        stack.extend(circuit.node(id).fanin().iter().copied());
    }
    collect_marked(&mark)
}

/// The transitive fanout of `roots`, including the roots themselves,
/// returned as a sorted list of node ids (i.e. in topological order).
pub fn transitive_fanout(circuit: &Circuit, roots: &[NodeId]) -> Vec<NodeId> {
    let mut mark = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut mark[id.index()], true) {
            continue;
        }
        stack.extend(circuit.fanout(id).iter().copied());
    }
    collect_marked(&mark)
}

/// The primary inputs a node depends on (its *input support*), sorted by id.
pub fn input_support(circuit: &Circuit, node: NodeId) -> Vec<NodeId> {
    transitive_fanin(circuit, &[node])
        .into_iter()
        .filter(|&id| circuit.node(id).kind() == crate::GateKind::Input)
        .collect()
}

/// The cone needed to evaluate the given primary output: its transitive
/// fanin in topological order (alias of [`transitive_fanin`] with one root).
pub fn output_cone(circuit: &Circuit, output: NodeId) -> Vec<NodeId> {
    transitive_fanin(circuit, &[output])
}

fn collect_marked(mark: &[bool]) -> Vec<NodeId> {
    mark.iter()
        .enumerate()
        .filter(|&(_i, &m)| m).map(|(i, &_m)| NodeId::from_index(i))
        .collect()
}

/// A lazy per-root cache of transitive fanout cones.
///
/// Incremental estimators query the same handful of cones (one per primary
/// input) once per optimizer coordinate, sweep after sweep; this cache
/// computes each cone on first use and hands out the cached slice
/// afterwards.  A cache instance is tied to one circuit — callers that
/// switch circuits must [`clear`](FanoutCones::clear) it (the cache resets
/// itself only on a node-count mismatch, which is a safety net, not a
/// circuit-identity check).
///
/// # Example
///
/// ```
/// use wrt_circuit::{parse_bench, FanoutCones};
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let mut cones = FanoutCones::new();
/// let a = c.node_id("a").unwrap();
/// assert_eq!(cones.cone(&c, a).len(), 2); // a itself + the AND gate
/// assert_eq!(cones.cached_roots(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FanoutCones {
    cones: Vec<Option<Vec<NodeId>>>,
}

impl FanoutCones {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FanoutCones::default()
    }

    /// The transitive fanout cone of `root` (including `root`), in
    /// topological order; computed on first use, cached afterwards.
    pub fn cone(&mut self, circuit: &Circuit, root: NodeId) -> &[NodeId] {
        if self.cones.len() != circuit.num_nodes() {
            self.cones = vec![None; circuit.num_nodes()];
        }
        self.cones[root.index()]
            .get_or_insert_with(|| transitive_fanout(circuit, &[root]))
            .as_slice()
    }

    /// Drops every cached cone (required when switching circuits).
    pub fn clear(&mut self) {
        self.cones.clear();
    }

    /// Number of roots whose cone has been computed.
    pub fn cached_roots(&self) -> usize {
        self.cones.iter().filter(|c| c.is_some()).count()
    }
}

/// Linear merge of two sorted, duplicate-free node lists into `out`
/// (sorted, deduplicated).  The single merge implementation behind both
/// [`ConeUnion::absorb`] and [`ConeUnion::merged_with`].
fn merge_sorted_nodes(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// An incrementally grown union of node sets (typically fanout cones),
/// kept sorted for topological iteration with O(1) membership tests.
///
/// This is the bookkeeping structure behind multi-coordinate pending
/// overlays: each deferred coordinate move absorbs its fanout cone, and
/// the union — the *frontier* every later query must treat as dirty —
/// stays available both as a sorted slice (ascending node ids, i.e.
/// topological order) and as a stamped membership bitmap.  Absorbing is
/// a linear merge, so repeatedly absorbing heavily overlapping cones
/// costs O(|union| + |cone|) per absorb, never a re-sort.
///
/// A union instance is tied to one circuit; callers that switch circuits
/// must [`clear`](ConeUnion::clear) it (capacity adapts automatically,
/// but stamps are only meaningful per circuit).
///
/// # Example
///
/// ```
/// use wrt_circuit::{parse_bench, transitive_fanout, ConeUnion};
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let a = c.node_id("a").unwrap();
/// let b = c.node_id("b").unwrap();
/// let mut union = ConeUnion::new();
/// union.absorb(&transitive_fanout(&c, &[a]));
/// union.absorb(&transitive_fanout(&c, &[b]));
/// assert_eq!(union.len(), 3); // a, b and the shared AND gate
/// assert!(union.contains(c.node_id("y").unwrap()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConeUnion {
    /// Sorted member list (ascending node id = topological order).
    members: Vec<NodeId>,
    /// Membership stamps: `stamp[i] == token` iff node *i* is a member.
    stamp: Vec<u32>,
    token: u32,
    /// Merge scratch, reused across absorbs.
    scratch: Vec<NodeId>,
}

impl ConeUnion {
    /// Creates an empty union.
    pub fn new() -> Self {
        ConeUnion::default()
    }

    /// Adds every node of `cone` (a sorted node list, as produced by
    /// [`transitive_fanout`] and friends) to the union.
    ///
    /// Returns the number of nodes that were new to the union.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `cone` is not sorted.
    pub fn absorb(&mut self, cone: &[NodeId]) -> usize {
        debug_assert!(cone.windows(2).all(|w| w[0] < w[1]), "cone must be sorted");
        if cone.is_empty() {
            return 0;
        }
        let highest = cone.last().expect("non-empty").index();
        if self.stamp.len() <= highest {
            self.stamp.resize(highest + 1, 0);
        }
        if self.token == 0 {
            // First use (or post-wrap reset in `clear`): make 0 invalid.
            self.token = 1;
        }
        let before = self.members.len();
        let mut merged = std::mem::take(&mut self.scratch);
        merge_sorted_nodes(&self.members, cone, &mut merged);
        self.scratch = std::mem::replace(&mut self.members, merged);
        for &id in cone {
            self.stamp[id.index()] = self.token;
        }
        self.members.len() - before
    }

    /// Writes `union ∪ cone` into `out` (sorted, deduplicated), without
    /// modifying the union — the read-only counterpart of
    /// [`absorb`](ConeUnion::absorb), for callers that need a merged
    /// view (e.g. "pending frontier plus one query cone") per query.
    pub fn merged_with(&self, cone: &[NodeId], out: &mut Vec<NodeId>) {
        debug_assert!(cone.windows(2).all(|w| w[0] < w[1]), "cone must be sorted");
        merge_sorted_nodes(&self.members, cone, out);
    }

    /// Whether `id` is in the union.
    pub fn contains(&self, id: NodeId) -> bool {
        self.stamp
            .get(id.index())
            .is_some_and(|&s| s == self.token && self.token != 0)
    }

    /// The union as a sorted slice (ascending node ids — topological
    /// order, like the cones it absorbed).
    pub fn as_slice(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the union is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Empties the union in O(1) amortized (stamp-token bump; the rare
    /// token wrap pays one linear stamp reset).
    pub fn clear(&mut self) {
        self.members.clear();
        self.token = self.token.wrapping_add(1);
        if self.token == 0 {
            self.stamp.fill(0);
            self.token = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn diamond() -> (Circuit, [NodeId; 5]) {
        // a -> n1 -> g (AND) <- n2 <- a ; classic reconvergence
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n1 = b.gate(GateKind::Not, "n1", &[a]).unwrap();
        let n2 = b.gate(GateKind::Buf, "n2", &[a]).unwrap();
        let g = b.gate(GateKind::And, "g", &[n1, n2]).unwrap();
        b.mark_output(g);
        b.mark_output(x);
        (b.build().unwrap(), [a, x, n1, n2, g])
    }

    #[test]
    fn fanin_cone_of_reconvergent_gate() {
        let (c, [a, _x, n1, n2, g]) = diamond();
        assert_eq!(transitive_fanin(&c, &[g]), vec![a, n1, n2, g]);
    }

    #[test]
    fn fanout_cone_of_stem() {
        let (c, [a, _x, n1, n2, g]) = diamond();
        assert_eq!(transitive_fanout(&c, &[a]), vec![a, n1, n2, g]);
    }

    #[test]
    fn support_excludes_unrelated_inputs() {
        let (c, [a, x, _, _, g]) = diamond();
        assert_eq!(input_support(&c, g), vec![a]);
        assert_eq!(input_support(&c, x), vec![x]);
    }

    #[test]
    fn cones_are_topologically_sorted() {
        let (c, _) = diamond();
        for out in c.outputs() {
            let cone = output_cone(&c, *out);
            for w in cone.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn fanout_cone_cache_matches_direct_computation() {
        let (c, [a, x, _, _, _]) = diamond();
        let mut cache = FanoutCones::new();
        assert_eq!(cache.cached_roots(), 0);
        assert_eq!(cache.cone(&c, a), transitive_fanout(&c, &[a]).as_slice());
        assert_eq!(cache.cone(&c, x), transitive_fanout(&c, &[x]).as_slice());
        assert_eq!(cache.cached_roots(), 2);
        // Second query hits the cache (same contents either way).
        assert_eq!(cache.cone(&c, a), transitive_fanout(&c, &[a]).as_slice());
        assert_eq!(cache.cached_roots(), 2);
    }

    #[test]
    fn fanout_cone_cache_clears() {
        let (c, [a, ..]) = diamond();
        let mut cache = FanoutCones::new();
        let _ = cache.cone(&c, a);
        cache.clear();
        assert_eq!(cache.cached_roots(), 0);
    }

    #[test]
    fn cone_union_merges_sorted_and_deduplicates() {
        let (c, [a, x, n1, n2, g]) = diamond();
        let mut union = ConeUnion::new();
        assert!(union.is_empty());
        assert_eq!(union.absorb(&transitive_fanout(&c, &[a])), 4);
        assert_eq!(union.len(), 4);
        // Overlapping absorb adds only the new node.
        assert_eq!(union.absorb(&transitive_fanout(&c, &[x])), 1);
        assert_eq!(union.as_slice(), &[a, x, n1, n2, g]);
        for w in union.as_slice().windows(2) {
            assert!(w[0] < w[1], "union stays sorted");
        }
        assert!(union.contains(n1));
        // Re-absorbing an already-covered cone is a no-op.
        assert_eq!(union.absorb(&transitive_fanout(&c, &[n2])), 0);
        assert_eq!(union.len(), 5);
    }

    #[test]
    fn cone_union_clear_resets_membership() {
        let (c, [a, x, ..]) = diamond();
        let mut union = ConeUnion::new();
        union.absorb(&transitive_fanout(&c, &[a]));
        assert!(union.contains(a));
        union.clear();
        assert!(union.is_empty());
        assert!(!union.contains(a));
        // Reusable after clear.
        union.absorb(&transitive_fanout(&c, &[x]));
        assert!(union.contains(x));
        assert!(!union.contains(a));
    }

    #[test]
    fn fresh_cone_union_contains_nothing() {
        let union = ConeUnion::new();
        assert!(!union.contains(NodeId::from_index(0)));
        assert_eq!(union.as_slice(), &[] as &[NodeId]);
    }
}

//! Constant propagation and dead-logic elimination.
//!
//! Library cells instantiated with tied-off pins (e.g. the cascade inputs
//! of the bottom SN7485 comparator in the paper's S1 circuit) contain
//! logic that is constant or unobservable.  The paper notes that S1 has
//! "some redundancies removed"; this pass performs exactly that removal:
//!
//! 1. **constant folding** — gates whose value is fixed by constant fanin
//!    are replaced by constants (e.g. `AND(x, 0) → 0`, `AND(x, 1) → BUF(x)`);
//! 2. **dead-node elimination** — nodes that reach no primary output are
//!    dropped.
//!
//! The result is a new, functionally equivalent [`Circuit`] in which every
//! remaining constant is one that feeds an XOR/XNOR (those are rewritten to
//! BUF/NOT instead, so a fully simplified circuit contains no constant
//! nodes unless an *output* is constant).

use crate::builder::CircuitBuilder;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

/// Lattice value during constant propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Folded {
    Const(bool),
    /// Equivalent to an already-emitted node.
    Alias(NodeId),
    /// A gate that must be materialized (with possibly reduced fanin).
    Keep,
}

/// Simplifies a circuit by constant folding and dead-node elimination.
///
/// The returned circuit computes the same Boolean function at every primary
/// output.  Output count and order are preserved; internal node names are
/// kept where the node survives.
///
/// # Panics
///
/// Panics only on internal invariant violations (a bug), never on valid
/// input circuits.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// use wrt_circuit::{parse_bench, simplify};
/// // `m` is forced to 0 because XOR(a, a) == 0.
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nz = XOR(a, a)\nm = AND(b, z)\ny = OR(m, b)\n")?;
/// let s = simplify(&c);
/// assert!(s.num_gates() < c.num_gates());
/// # Ok(())
/// # }
/// ```
pub fn simplify(circuit: &Circuit) -> Circuit {
    let mut builder = CircuitBuilder::named(circuit.name());
    // For each old node: its folded status and (if materialized/aliased)
    // the corresponding new id.
    let mut folded: Vec<Option<(Folded, Option<NodeId>)>> = vec![None; circuit.num_nodes()];

    // Mark nodes reaching an output (reverse reachability).
    let mut live = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = circuit.outputs().to_vec();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut live[n.index()], true) {
            continue;
        }
        stack.extend(circuit.node(n).fanin().iter().copied());
    }

    // Primary inputs are all preserved (the interface must not change).
    for &pi in circuit.inputs() {
        let new_id = builder.input(circuit.node(pi).name());
        folded[pi.index()] = Some((Folded::Alias(new_id), Some(new_id)));
    }

    // Lazily created constant drivers in the new circuit.
    let mut const_nodes: [Option<NodeId>; 2] = [None, None];

    for (id, node) in circuit.iter() {
        if node.kind() == GateKind::Input {
            continue;
        }
        if !live[id.index()] {
            continue; // dead logic: drop silently
        }
        let entry = fold_node(circuit, id, &folded, &mut builder);
        folded[id.index()] = Some(entry);
    }

    let mut emitted_outputs = std::collections::HashSet::new();
    for &out in circuit.outputs() {
        let (state, new_id) = folded[out.index()].expect("outputs are live");
        let id = match state {
            Folded::Const(v) => materialize_const(&mut builder, &mut const_nodes, v),
            _ => new_id.expect("non-const nodes are materialized"),
        };
        // `mark_output` rejects duplicates; distinct old outputs may fold
        // onto the same new node, so alias through a BUF when needed.
        if emitted_outputs.insert(id) {
            builder.mark_output(id);
        } else {
            let buf = builder
                .gate(
                    GateKind::Buf,
                    format!("{}_out", circuit.node(out).name()),
                    &[id],
                )
                .expect("buffer of existing node is valid");
            builder.mark_output(buf);
        }
    }

    builder.build().expect("simplification preserves validity")
}

fn fold_node(
    circuit: &Circuit,
    id: NodeId,
    folded: &[Option<(Folded, Option<NodeId>)>],
    builder: &mut CircuitBuilder,
) -> (Folded, Option<NodeId>) {
    let node = circuit.node(id);
    let kind = node.kind();
    match kind {
        GateKind::Const0 => return (Folded::Const(false), None),
        GateKind::Const1 => return (Folded::Const(true), None),
        _ => {}
    }

    // Resolve fanin states.
    let mut const_in: Vec<bool> = Vec::new();
    let mut kept: Vec<NodeId> = Vec::new();
    for &f in node.fanin().iter() {
        let (state, new_id) = folded[f.index()].expect("fanin precedes node");
        match state {
            Folded::Const(v) => const_in.push(v),
            _ => kept.push(new_id.expect("materialized")),
        }
    }

    let invert = kind.is_inverting();
    let base_result = match kind {
        GateKind::And | GateKind::Nand => fold_and(&const_in, &kept),
        GateKind::Or | GateKind::Nor => fold_or(&const_in, &kept),
        GateKind::Xor | GateKind::Xnor => fold_xor(&const_in, &kept),
        GateKind::Not | GateKind::Buf => {
            if let Some(&v) = const_in.first() {
                FoldResult::Const(v)
            } else {
                FoldResult::Wire(kept[0], false)
            }
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => unreachable!(),
    };

    match base_result {
        FoldResult::Const(v) => (Folded::Const(v ^ invert), None),
        FoldResult::Wire(w, inv) => {
            let inv = inv ^ invert;
            if inv {
                let new = builder
                    .gate(GateKind::Not, node.name(), &[w])
                    .expect("valid inverter");
                (Folded::Keep, Some(new))
            } else {
                (Folded::Alias(w), Some(w))
            }
        }
        FoldResult::Gate(base, fanin, inv) => {
            let final_kind = apply_inversion(base, inv ^ invert);
            let new = builder
                .gate(final_kind, node.name(), &fanin)
                .expect("valid folded gate");
            (Folded::Keep, Some(new))
        }
    }
}

enum FoldResult {
    Const(bool),
    /// Single surviving wire, possibly inverted.
    Wire(NodeId, bool),
    /// Gate of `kind` over surviving fanin, output possibly inverted.
    Gate(GateKind, Vec<NodeId>, bool),
}

fn fold_and(consts: &[bool], kept: &[NodeId]) -> FoldResult {
    if consts.iter().any(|&v| !v) {
        return FoldResult::Const(false);
    }
    // AND is idempotent: duplicate wires collapse.
    let kept = dedup_preserving_order(kept);
    match kept.as_slice() {
        [] => FoldResult::Const(true),
        [one] => FoldResult::Wire(*one, false),
        _ => FoldResult::Gate(GateKind::And, kept, false),
    }
}

fn fold_or(consts: &[bool], kept: &[NodeId]) -> FoldResult {
    if consts.iter().any(|&v| v) {
        return FoldResult::Const(true);
    }
    // OR is idempotent: duplicate wires collapse.
    let kept = dedup_preserving_order(kept);
    match kept.as_slice() {
        [] => FoldResult::Const(false),
        [one] => FoldResult::Wire(*one, false),
        _ => FoldResult::Gate(GateKind::Or, kept, false),
    }
}

fn fold_xor(consts: &[bool], kept: &[NodeId]) -> FoldResult {
    let parity = consts.iter().fold(false, |acc, &v| acc ^ v);
    // XOR cancels pairs: keep only wires appearing an odd number of times.
    let mut odd: Vec<NodeId> = Vec::new();
    for &w in kept {
        if let Some(pos) = odd.iter().position(|&o| o == w) {
            odd.remove(pos);
        } else {
            odd.push(w);
        }
    }
    match odd.as_slice() {
        [] => FoldResult::Const(parity),
        [one] => FoldResult::Wire(*one, parity),
        _ => FoldResult::Gate(GateKind::Xor, odd, parity),
    }
}

fn dedup_preserving_order(wires: &[NodeId]) -> Vec<NodeId> {
    let mut seen = Vec::new();
    for &w in wires {
        if !seen.contains(&w) {
            seen.push(w);
        }
    }
    seen
}

fn apply_inversion(kind: GateKind, invert: bool) -> GateKind {
    if !invert {
        return kind;
    }
    match kind {
        GateKind::And => GateKind::Nand,
        GateKind::Or => GateKind::Nor,
        GateKind::Xor => GateKind::Xnor,
        GateKind::Nand => GateKind::And,
        GateKind::Nor => GateKind::Or,
        GateKind::Xnor => GateKind::Xor,
        other => other,
    }
}

fn materialize_const(
    builder: &mut CircuitBuilder,
    const_nodes: &mut [Option<NodeId>; 2],
    value: bool,
) -> NodeId {
    let slot = usize::from(value);
    if let Some(id) = const_nodes[slot] {
        return id;
    }
    let id = if value {
        builder.const1()
    } else {
        builder.const0()
    };
    const_nodes[slot] = Some(id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_bench;

    fn equivalent(a: &Circuit, b: &Circuit) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        let n = a.num_inputs();
        assert!(n <= 16, "exhaustive check limited");
        for v in 0..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            if eval(a, &assignment) != eval(b, &assignment) {
                return false;
            }
        }
        true
    }

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    #[test]
    fn folds_constant_and() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nz = XOR(a, a)\nm = AND(b, z)\ny = OR(m, b)\n",
        )
        .unwrap();
        let s = simplify(&c);
        assert!(equivalent(&c, &s));
        // z folds to 0, m folds to 0, y folds to wire b.
        assert_eq!(s.num_gates(), 0);
    }

    #[test]
    fn keeps_live_logic() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let s = simplify(&c);
        assert!(equivalent(&c, &s));
        assert_eq!(s.num_gates(), 1);
    }

    #[test]
    fn removes_dead_logic() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        )
        .unwrap();
        let s = simplify(&c);
        assert!(equivalent(&c, &s));
        assert!(s.node_id("dead").is_none());
    }

    #[test]
    fn xor_with_constant_becomes_inverter() {
        let mut b = crate::CircuitBuilder::named("t");
        let a = b.input("a");
        let x = b.input("x");
        let one = b.const1();
        let g = b.gate(GateKind::Xor, "g", &[a, one]).unwrap();
        let h = b.gate(GateKind::And, "h", &[g, x]).unwrap();
        b.mark_output(h);
        let c = b.build().unwrap();
        let s = simplify(&c);
        assert!(equivalent(&c, &s));
        // g becomes NOT(a); no constants remain.
        let g2 = s.node_id("g").unwrap();
        assert_eq!(s.node(g2).kind(), GateKind::Not);
    }

    #[test]
    fn nand_with_false_input_is_const1_output() {
        let mut b = crate::CircuitBuilder::named("t");
        let a = b.input("a");
        let zero = b.const0();
        let g = b.gate(GateKind::Nand, "g", &[a, zero]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        let s = simplify(&c);
        assert!(equivalent(&c, &s));
        // Output is constant 1: a materialized Const1 node.
        let out = s.outputs()[0];
        assert_eq!(s.node(out).kind(), GateKind::Const1);
    }

    #[test]
    fn inputs_always_preserved() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        let s = simplify(&c);
        assert_eq!(s.num_inputs(), 2); // b is dead but stays on the interface
        assert!(equivalent(&c, &s));
    }

    #[test]
    fn not_of_constant_folds() {
        let mut b = crate::CircuitBuilder::named("t");
        let a = b.input("a");
        let zero = b.const0();
        let n = b.gate(GateKind::Not, "n", &[zero]).unwrap();
        let g = b.gate(GateKind::And, "g", &[a, n]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        let s = simplify(&c);
        assert!(equivalent(&c, &s));
        assert_eq!(s.num_gates(), 0); // g == a
    }
}

//! Error types for circuit construction and parsing.

use std::fmt;

/// Error produced by [`crate::CircuitBuilder`] when a circuit is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// Two nodes were declared with the same name.
    DuplicateName(String),
    /// A gate references a fanin id that does not exist (or its own id).
    UnknownFanin {
        /// Name of the gate with the bad fanin.
        gate: String,
    },
    /// The fanin count is illegal for the gate kind.
    BadArity {
        /// Name of the offending gate.
        gate: String,
        /// The gate kind.
        kind: crate::GateKind,
        /// The fanin count that was supplied.
        got: usize,
    },
    /// The circuit has no primary outputs.
    NoOutputs,
    /// The circuit has no primary inputs.
    NoInputs,
    /// A node was marked as output more than once.
    DuplicateOutput(String),
    /// `GateKind::Input` was passed to `gate()`; use `input()` instead.
    InputAsGate(String),
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            BuildCircuitError::UnknownFanin { gate } => {
                write!(f, "gate `{gate}` references an unknown fanin")
            }
            BuildCircuitError::BadArity { gate, kind, got } => {
                write!(f, "gate `{gate}` of kind {kind} cannot take {got} fanins")
            }
            BuildCircuitError::NoOutputs => write!(f, "circuit has no primary outputs"),
            BuildCircuitError::NoInputs => write!(f, "circuit has no primary inputs"),
            BuildCircuitError::DuplicateOutput(n) => {
                write!(f, "node `{n}` marked as output twice")
            }
            BuildCircuitError::InputAsGate(n) => {
                write!(f, "node `{n}`: use CircuitBuilder::input for primary inputs")
            }
        }
    }
}

impl std::error::Error for BuildCircuitError {}

/// Error produced by [`crate::parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A signal is referenced but never defined (an undriven net).
    UndefinedSignal {
        /// The undriven signal name.
        signal: String,
        /// The gate (or `OUTPUT`) that references it.
        sink: String,
        /// 1-based line of the referencing definition.
        line: usize,
    },
    /// The netlist contains a combinational cycle.
    Cycle {
        /// The signals on the cycle, in netlist dependency order; the first
        /// name is repeated at the end to close the loop.
        path: Vec<String>,
        /// 1-based line of the definition that closes the loop.
        line: usize,
    },
    /// The netlist was structurally invalid after parsing.
    Build(BuildCircuitError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ParseBenchError::UndefinedSignal { signal, sink, line } => {
                write!(
                    f,
                    "signal `{signal}` referenced by `{sink}` on line {line} is never defined"
                )
            }
            ParseBenchError::Cycle { path, line } => {
                write!(
                    f,
                    "combinational cycle closed on line {line}: {}",
                    path.join(" -> ")
                )
            }
            ParseBenchError::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildCircuitError> for ParseBenchError {
    fn from(e: BuildCircuitError) -> Self {
        ParseBenchError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = BuildCircuitError::DuplicateName("g7".into());
        assert_eq!(e.to_string(), "duplicate node name `g7`");
        let p = ParseBenchError::Syntax {
            line: 3,
            message: "expected `=`".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn parse_error_wraps_build_error_as_source() {
        use std::error::Error;
        let p: ParseBenchError = BuildCircuitError::NoOutputs.into();
        assert!(p.source().is_some());
    }
}

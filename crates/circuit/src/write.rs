//! Writer for the ISCAS-85 `.bench` format.

use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::netlist::Circuit;

/// Serializes a circuit to `.bench` text.
///
/// Constants (which `.bench` has no syntax for) are emitted as 1-input
/// AND/NAND of a self-evident always-true helper network; to keep the output
/// standard we instead encode `Const0`/`Const1` as `XOR(i, i)` /
/// `XNOR(i, i)` of the first primary input — these are logically constant
/// regardless of the input value, so a parse → write → parse roundtrip
/// preserves the Boolean function of every output.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = wrt_circuit::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let text = wrt_circuit::to_bench(&c);
/// let c2 = wrt_circuit::parse_bench(&text)?;
/// assert_eq!(c2.num_gates(), c.num_gates());
/// # Ok(())
/// # }
/// ```
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.node(i).name());
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.node(o).name());
    }
    let first_input_name = circuit.node(circuit.inputs()[0]).name().to_string();
    for (_, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const0 => {
                let _ = writeln!(
                    out,
                    "{} = XOR({first_input_name}, {first_input_name})",
                    node.name()
                );
            }
            GateKind::Const1 => {
                let _ = writeln!(
                    out,
                    "{} = XNOR({first_input_name}, {first_input_name})",
                    node.name()
                );
            }
            kind => {
                let args: Vec<&str> = node
                    .fanin()
                    .iter()
                    .map(|&f| circuit.node(f).name())
                    .collect();
                let _ = writeln!(out, "{} = {}({})", node.name(), kind.bench_keyword(), args.join(", "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_bench, CircuitBuilder, GateKind};

    #[test]
    fn roundtrip_preserves_structure() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nm = NAND(a, b)\ny = XOR(m, a)\nz = NOR(m, b)\n";
        let c1 = parse_bench(src).unwrap();
        let c2 = parse_bench(&to_bench(&c1)).unwrap();
        assert_eq!(c1.num_inputs(), c2.num_inputs());
        assert_eq!(c1.num_outputs(), c2.num_outputs());
        assert_eq!(c1.num_gates(), c2.num_gates());
        for (_, n) in c1.iter() {
            let id2 = c2.node_id(n.name()).unwrap();
            assert_eq!(c2.node(id2).kind(), n.kind());
        }
    }

    #[test]
    fn constants_encoded_functionally() {
        let mut b = CircuitBuilder::named("k");
        let a = b.input("a");
        let one = b.const1();
        let zero = b.const0();
        let g = b.gate(GateKind::And, "g", &[a, one]).unwrap();
        let h = b.gate(GateKind::Or, "h", &[g, zero]).unwrap();
        b.mark_output(h);
        let c = b.build().unwrap();
        let text = to_bench(&c);
        let c2 = parse_bench(&text).unwrap();
        // XOR(a,a) == 0 and XNOR(a,a) == 1, so h == a in both circuits.
        assert_eq!(c2.num_outputs(), 1);
        assert!(text.contains("XNOR(a, a)"));
        assert!(text.contains("XOR(a, a)"));
    }
}

//! Gate primitives.

use std::fmt;
use std::str::FromStr;

/// The logic function computed by a node of a [`crate::Circuit`].
///
/// `Input` marks primary inputs (no fanin).  `Const0`/`Const1` are constant
/// drivers (used e.g. for tied-off cascade inputs of library cells).
/// All other kinds compute the usual Boolean functions of their fanin.
///
/// # Example
///
/// ```
/// use wrt_circuit::GateKind;
/// assert!(GateKind::Nand.is_inverting());
/// assert_eq!("NAND".parse::<GateKind>().ok(), Some(GateKind::Nand));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Logical AND of all fanins.
    And,
    /// Logical NAND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Logical NOR of all fanins.
    Nor,
    /// Odd parity (XOR) of all fanins.
    Xor,
    /// Even parity (XNOR) of all fanins.
    Xnor,
    /// Inverter (exactly one fanin).
    Not,
    /// Buffer (exactly one fanin); used by `.bench` fanout branches.
    Buf,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for exhaustive tests).
    pub const ALL: [GateKind; 11] = [
        GateKind::Input,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
    ];

    /// Returns `true` if the gate output inverts relative to its
    /// non-inverting base function (NAND, NOR, XNOR, NOT).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Returns `true` for kinds that take no fanin (inputs and constants).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// The range of legal fanin counts for this gate kind.
    ///
    /// `.bench` allows 1-input AND/OR (degenerating to a buffer); we accept
    /// that too, since the ISCAS-85 netlists in the wild contain such gates.
    pub fn arity_range(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Not | GateKind::Buf => (1, 1),
            _ => (1, usize::MAX),
        }
    }

    /// Evaluates the gate over boolean fanin values.
    ///
    /// This is the scalar reference semantics; the bit-parallel simulator in
    /// `wrt-sim` must agree with it (and is property-tested against it).
    ///
    /// # Panics
    ///
    /// Panics if the number of fanins is illegal for the kind (e.g. a NOT
    /// with two fanins); circuits built through [`crate::CircuitBuilder`]
    /// can never trigger this.
    pub fn eval(self, fanin: &[bool]) -> bool {
        match self {
            GateKind::Input => panic!("primary inputs have no gate function"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::And => fanin.iter().all(|&v| v),
            GateKind::Nand => !fanin.iter().all(|&v| v),
            GateKind::Or => fanin.iter().any(|&v| v),
            GateKind::Nor => !fanin.iter().any(|&v| v),
            GateKind::Xor => fanin.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanin.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Not => {
                assert_eq!(fanin.len(), 1, "NOT takes exactly one fanin");
                !fanin[0]
            }
            GateKind::Buf => {
                assert_eq!(fanin.len(), 1, "BUF takes exactly one fanin");
                fanin[0]
            }
        }
    }

    /// The `.bench` keyword for this gate kind.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// Error returned when parsing a [`GateKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError(pub(crate) String);

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.0)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses a `.bench` keyword, case-insensitively.  `BUF` and `BUFF` are
    /// both accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "INPUT" => Ok(GateKind::Input),
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            "CONST0" | "GND" => Ok(GateKind::Const0),
            "CONST1" | "VDD" | "VCC" => Ok(GateKind::Const1),
            other => Err(ParseGateKindError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_semantics() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
    }

    #[test]
    fn inverting_gates_negate_their_base() {
        for vals in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(GateKind::Nand.eval(&vals), !GateKind::And.eval(&vals));
            assert_eq!(GateKind::Nor.eval(&vals), !GateKind::Or.eval(&vals));
            assert_eq!(GateKind::Xnor.eval(&vals), !GateKind::Xor.eval(&vals));
        }
    }

    #[test]
    fn xor_is_odd_parity() {
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(!GateKind::Xor.eval(&[true, true, false]));
        assert!(GateKind::Xor.eval(&[true, true, true]));
    }

    #[test]
    fn not_and_buf() {
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
    }

    #[test]
    fn constants() {
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        // Vacuous truth conventions; the builder never produces 0-ary
        // AND/OR, but eval is total over the accepted range.
        assert!(GateKind::And.eval(&[]));
        assert!(!GateKind::Or.eval(&[]));
    }

    #[test]
    fn keyword_roundtrip() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.bench_keyword().parse().expect("keyword parses");
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_knows_aliases() {
        assert_eq!("nand".parse::<GateKind>().ok(), Some(GateKind::Nand));
        assert_eq!("Buf".parse::<GateKind>().ok(), Some(GateKind::Buf));
        assert_eq!("INV".parse::<GateKind>().ok(), Some(GateKind::Not));
        assert!("MAJ".parse::<GateKind>().is_err());
    }

    #[test]
    fn arity_ranges() {
        assert_eq!(GateKind::Input.arity_range(), (0, 0));
        assert_eq!(GateKind::Not.arity_range(), (1, 1));
        assert_eq!(GateKind::And.arity_range().0, 1);
    }
}

//! Levelization: distance of each node from the primary inputs.

use crate::netlist::{Node, NodeId};

/// Levelization of a circuit.
///
/// Sources (inputs, constants) sit at level 0; a gate's level is one more
/// than the maximum level of its fanin.  The *depth* of the circuit is the
/// maximum level.  Levels group nodes into "waves" that event-driven
/// algorithms can process front-to-back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    level: Vec<u32>,
    depth: u32,
    /// Node ids grouped by level; `by_level[l]` is sorted ascending.
    by_level: Vec<Vec<NodeId>>,
}

impl Levels {
    /// Computes levels for a topologically ordered node list.
    ///
    /// Combinational loops are unrepresentable here by construction: the
    /// builder rejects forward fanin references ([`crate::BuildCircuitError::
    /// UnknownFanin`]) and the parser reports cycles as structured
    /// [`crate::ParseBenchError::Cycle`] values before a `Circuit` ever
    /// exists.  The assert below turns any future violation of that
    /// invariant into a loud failure instead of silently wrong levels.
    pub(crate) fn compute(nodes: &[Node]) -> Self {
        let mut level = vec![0u32; nodes.len()];
        let mut depth = 0;
        for (i, node) in nodes.iter().enumerate() {
            let l = node
                .fanin
                .iter()
                .map(|f| {
                    assert!(
                        f.index() < i,
                        "levelize requires topological order; node {i} has forward fanin {}",
                        f.index()
                    );
                    level[f.index()] + 1
                })
                .max()
                .unwrap_or(0);
            level[i] = l;
            depth = depth.max(l);
        }
        let mut by_level = vec![Vec::new(); depth as usize + 1];
        for (i, &l) in level.iter().enumerate() {
            by_level[l as usize].push(NodeId::from_index(i));
        }
        Levels {
            level,
            depth,
            by_level,
        }
    }

    /// The level of a node (0 for sources).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The circuit depth (maximum level over all nodes).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// All nodes at the given level, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `level > self.depth()`.
    pub fn nodes_at(&self, level: u32) -> &[NodeId] {
        &self.by_level[level as usize]
    }

    /// Iterates over levels `0..=depth` as slices of node ids.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.by_level.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn chain_depth() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let mut cur = a;
        for i in 0..5 {
            cur = b.gate(GateKind::Not, format!("n{i}"), &[cur]).unwrap();
        }
        b.mark_output(cur);
        let c = b.build().unwrap();
        assert_eq!(c.levels().depth(), 5);
        assert_eq!(c.levels().level(a), 0);
        assert_eq!(c.levels().level(cur), 5);
    }

    #[test]
    fn level_is_max_of_fanin_plus_one() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n = b.not(a).unwrap(); // level 1
        let g = b.and2(n, x).unwrap(); // level 2 (max(1,0)+1)
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.levels().level(g), 2);
        assert_eq!(c.levels().nodes_at(0).len(), 2);
        assert_eq!(c.levels().nodes_at(2), &[g]);
    }

    #[test]
    fn levels_partition_all_nodes() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g1 = b.and2(a, x).unwrap();
        let g2 = b.or2(g1, a).unwrap();
        b.mark_output(g2);
        let c = b.build().unwrap();
        let total: usize = c.levels().iter().map(<[_]>::len).sum();
        assert_eq!(total, c.num_nodes());
    }
}

//! Levelization: distance of each node from the primary inputs.

use crate::netlist::NodeId;

/// Levelization of a circuit.
///
/// Sources (inputs, constants) sit at level 0; a gate's level is one more
/// than the maximum level of its fanin.  The *depth* of the circuit is the
/// maximum level.  Levels group nodes into "waves" that event-driven
/// algorithms can process front-to-back.
///
/// The per-level node groups are stored in CSR layout (one offsets array +
/// one flat id array) rather than a `Vec` per level, so levelization costs
/// exactly two O(n) arrays regardless of depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    level: Vec<u32>,
    depth: u32,
    /// CSR offsets into `level_data`: the nodes at level `l` are
    /// `level_data[level_offsets[l]..level_offsets[l + 1]]`, ascending.
    level_offsets: Vec<u32>,
    level_data: Vec<NodeId>,
}

impl Levels {
    /// Computes levels for a topologically ordered fanin CSR.
    ///
    /// Combinational loops are unrepresentable here by construction: the
    /// builder rejects forward fanin references ([`crate::BuildCircuitError::
    /// UnknownFanin`]) and the parser reports cycles as structured
    /// [`crate::ParseBenchError::Cycle`] values before a `Circuit` ever
    /// exists.  The assert below turns any future violation of that
    /// invariant into a loud failure instead of silently wrong levels.
    pub(crate) fn compute(
        num_nodes: usize,
        fanin_offsets: &[u32],
        fanin_data: &[NodeId],
    ) -> Self {
        let mut level = vec![0u32; num_nodes];
        let mut depth = 0;
        for i in 0..num_nodes {
            let lo = fanin_offsets[i] as usize;
            let hi = fanin_offsets[i + 1] as usize;
            let l = fanin_data[lo..hi]
                .iter()
                .map(|f| {
                    assert!(
                        f.index() < i,
                        "levelize requires topological order; node {i} has forward fanin {}",
                        f.index()
                    );
                    level[f.index()] + 1
                })
                .max()
                .unwrap_or(0);
            level[i] = l;
            depth = depth.max(l);
        }
        // Counting sort into CSR: count, prefix-sum, fill.  Filling in id
        // order keeps every per-level slice ascending without a sort.
        let num_levels = depth as usize + 1;
        let mut level_offsets = vec![0u32; num_levels + 1];
        for &l in &level {
            level_offsets[l as usize + 1] += 1;
        }
        for i in 1..level_offsets.len() {
            level_offsets[i] += level_offsets[i - 1];
        }
        let mut level_data = vec![NodeId::from_index(0); num_nodes];
        let mut cursor: Vec<u32> = level_offsets[..num_levels].to_vec();
        for (i, &l) in level.iter().enumerate() {
            let c = &mut cursor[l as usize];
            level_data[*c as usize] = NodeId::from_index(i);
            *c += 1;
        }
        Levels {
            level,
            depth,
            level_offsets,
            level_data,
        }
    }

    /// The level of a node (0 for sources).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The circuit depth (maximum level over all nodes).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// All nodes at the given level, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `level > self.depth()`.
    pub fn nodes_at(&self, level: u32) -> &[NodeId] {
        let l = level as usize;
        let lo = self.level_offsets[l] as usize;
        let hi = self.level_offsets[l + 1] as usize;
        &self.level_data[lo..hi]
    }

    /// Iterates over levels `0..=depth` as slices of node ids.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.level_offsets.windows(2).map(move |w| {
            &self.level_data[w[0] as usize..w[1] as usize]
        })
    }

    /// Bytes of heap memory held by the levelization arrays.
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.level.capacity() * size_of::<u32>()
            + self.level_offsets.capacity() * size_of::<u32>()
            + self.level_data.capacity() * size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn chain_depth() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let mut cur = a;
        for i in 0..5 {
            cur = b.gate(GateKind::Not, format!("n{i}"), &[cur]).unwrap();
        }
        b.mark_output(cur);
        let c = b.build().unwrap();
        assert_eq!(c.levels().depth(), 5);
        assert_eq!(c.levels().level(a), 0);
        assert_eq!(c.levels().level(cur), 5);
    }

    #[test]
    fn level_is_max_of_fanin_plus_one() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let n = b.not(a).unwrap(); // level 1
        let g = b.and2(n, x).unwrap(); // level 2 (max(1,0)+1)
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.levels().level(g), 2);
        assert_eq!(c.levels().nodes_at(0).len(), 2);
        assert_eq!(c.levels().nodes_at(2), &[g]);
    }

    #[test]
    fn levels_partition_all_nodes() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g1 = b.and2(a, x).unwrap();
        let g2 = b.or2(g1, a).unwrap();
        b.mark_output(g2);
        let c = b.build().unwrap();
        let total: usize = c.levels().iter().map(<[_]>::len).sum();
        assert_eq!(total, c.num_nodes());
        // Per-level slices are ascending and disjoint.
        let mut seen = vec![false; c.num_nodes()];
        for slice in c.levels().iter() {
            for w in slice.windows(2) {
                assert!(w[0] < w[1]);
            }
            for id in slice {
                assert!(!std::mem::replace(&mut seen[id.index()], true));
            }
        }
    }
}

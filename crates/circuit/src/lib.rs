//! Gate-level combinational netlists for probabilistic testability analysis.
//!
//! This crate provides the circuit substrate used throughout the `wrt`
//! workspace: a compact, immutable, topologically ordered gate-level
//! [`Circuit`], a [`CircuitBuilder`] for programmatic construction, a parser
//! and writer for the ISCAS-85 `.bench` netlist format, levelization, and
//! cone extraction.
//!
//! Circuits are *combinational*: the paper restricts itself to combinational
//! networks because scan-based self test (BILBO-style) reduces sequential
//! testing to the combinational case.
//!
//! # Example
//!
//! ```
//! use wrt_circuit::{CircuitBuilder, GateKind};
//!
//! # fn main() -> Result<(), wrt_circuit::BuildCircuitError> {
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let c = b.input("c");
//! let g = b.gate(GateKind::And, "g", &[a, c])?;
//! b.mark_output(g);
//! let circuit = b.build()?;
//! assert_eq!(circuit.num_inputs(), 2);
//! assert_eq!(circuit.num_outputs(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod builder;
mod cone;
mod error;
mod gate;
mod levelize;
mod netlist;
mod parse;
mod simplify;
mod stats;
mod write;

pub use builder::CircuitBuilder;
pub use cone::{
    input_support, output_cone, transitive_fanin, transitive_fanout, ConeUnion, FanoutCones,
};
pub use error::{BuildCircuitError, ParseBenchError};
pub use gate::GateKind;
pub use levelize::Levels;
pub use netlist::{Circuit, Node, NodeId};
pub use parse::{parse_bench, parse_bench_named, scan_bench_issues};
pub use simplify::simplify;
pub use stats::{CircuitStats, MemoryFootprint};
pub use write::to_bench;

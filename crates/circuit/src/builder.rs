//! Programmatic circuit construction.

use crate::error::BuildCircuitError;
use crate::gate::GateKind;
use crate::levelize::Levels;
use crate::netlist::{Circuit, NodeId};

/// Incremental builder for [`Circuit`]s.
///
/// Gates may only reference node ids the builder has already handed out, so
/// the node list is topologically ordered *by construction* and cycles are
/// unrepresentable.
///
/// The builder appends directly into the flat arenas the final [`Circuit`]
/// keeps (kinds, fanin CSR, name arena), so construction performs zero
/// allocations per gate beyond amortized arena growth; duplicate names are
/// detected by the sorted name index [`CircuitBuilder::build`] computes
/// anyway, not by a build-side hash map.
///
/// # Example
///
/// ```
/// use wrt_circuit::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), wrt_circuit::BuildCircuitError> {
/// let mut b = CircuitBuilder::named("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate(GateKind::Xor, "sum", &[a, c])?;
/// let carry = b.gate(GateKind::And, "carry", &[a, c])?;
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let ha = b.build()?;
/// assert_eq!(ha.num_outputs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    name: String,
    kinds: Vec<GateKind>,
    fanin_offsets: Vec<u32>,
    fanin_data: Vec<NodeId>,
    name_bytes: String,
    name_offsets: Vec<u32>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    anon_counter: u64,
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        CircuitBuilder {
            name: String::new(),
            kinds: Vec::new(),
            fanin_offsets: vec![0],
            fanin_data: Vec::new(),
            name_bytes: String::new(),
            name_offsets: vec![0],
            inputs: Vec::new(),
            outputs: Vec::new(),
            anon_counter: 0,
        }
    }
}

impl CircuitBuilder {
    /// Creates an empty builder with an empty circuit name.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder for a circuit called `name`.
    pub fn named(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Generated names live in the `_`-prefixed namespace; explicit names
    /// that stray into it are caught as duplicates at `build()` like any
    /// other clash.
    fn fresh_name(&mut self, prefix: &str) -> String {
        let candidate = format!("_{prefix}{}", self.anon_counter);
        self.anon_counter += 1;
        candidate
    }

    fn push(&mut self, name: &str, kind: GateKind, fanin: &[NodeId]) -> NodeId {
        let id = NodeId::from_index(self.kinds.len());
        self.name_bytes.push_str(name);
        self.name_offsets
            .push(u32::try_from(self.name_bytes.len()).expect("name arena fits in u32"));
        self.kinds.push(kind);
        self.fanin_data.extend_from_slice(fanin);
        self.fanin_offsets
            .push(u32::try_from(self.fanin_data.len()).expect("edge count fits in u32"));
        id
    }

    /// Adds a primary input and returns its id.
    pub fn input(&mut self, name: impl AsRef<str>) -> NodeId {
        let id = self.push(name.as_ref(), GateKind::Input, &[]);
        self.inputs.push(id);
        id
    }

    /// Adds a constant-0 driver.
    pub fn const0(&mut self) -> NodeId {
        let name = self.fresh_name("const0_");
        self.push(&name, GateKind::Const0, &[])
    }

    /// Adds a constant-1 driver.
    pub fn const1(&mut self) -> NodeId {
        let name = self.fresh_name("const1_");
        self.push(&name, GateKind::Const1, &[])
    }

    /// Adds a gate with an explicit name.
    ///
    /// # Errors
    ///
    /// Returns an error immediately if `kind` is [`GateKind::Input`], if the
    /// arity is illegal for the kind, or if any fanin id was not previously
    /// returned by this builder.  Duplicate names are reported at
    /// [`CircuitBuilder::build`] time.
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: impl AsRef<str>,
        fanin: &[NodeId],
    ) -> Result<NodeId, BuildCircuitError> {
        let name = name.as_ref();
        if kind == GateKind::Input {
            return Err(BuildCircuitError::InputAsGate(name.to_string()));
        }
        let (lo, hi) = kind.arity_range();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(BuildCircuitError::BadArity {
                gate: name.to_string(),
                kind,
                got: fanin.len(),
            });
        }
        if fanin.iter().any(|f| f.index() >= self.kinds.len()) {
            return Err(BuildCircuitError::UnknownFanin { gate: name.to_string() });
        }
        Ok(self.push(name, kind, fanin))
    }

    /// Adds a gate with a generated name (`_g<N>`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn gate_auto(
        &mut self,
        kind: GateKind,
        fanin: &[NodeId],
    ) -> Result<NodeId, BuildCircuitError> {
        let name = self.fresh_name("g");
        self.gate(kind, name, fanin)
    }

    /// Convenience: 2-input AND with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::And, &[a, b])
    }

    /// Convenience: 2-input OR with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::Or, &[a, b])
    }

    /// Convenience: 2-input XOR with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::Xor, &[a, b])
    }

    /// Convenience: inverter with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::Not, &[a])
    }

    /// Marks an existing node as a primary output.
    ///
    /// Duplicate marks are reported at [`CircuitBuilder::build`] time (a
    /// per-call membership scan would make bulk output marking quadratic).
    pub fn mark_output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// Finalizes the circuit: checks global invariants, computes fanouts and
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns the first deferred error (duplicate names, duplicate outputs)
    /// or a structural error (no inputs / no outputs).
    pub fn build(mut self) -> Result<Circuit, BuildCircuitError> {
        // Duplicate-output detection, deferred from `mark_output`: one
        // sort over a scratch copy instead of a scan per call.
        let mut sorted_outputs = self.outputs.clone();
        sorted_outputs.sort_unstable();
        if let Some(w) = sorted_outputs.windows(2).find(|w| w[0] == w[1]) {
            let start = self.name_offsets[w[0].index()] as usize;
            let end = self.name_offsets[w[0].index() + 1] as usize;
            let name = self.name_bytes[start..end].to_string();
            return Err(BuildCircuitError::DuplicateOutput(name));
        }
        // The circuit is immutable from here on: shrink the
        // incrementally-grown arenas so the footprint (and the
        // bytes/gate curve `bench_scale` tracks) reflects the data, not
        // the builder's doubling growth policy.
        self.kinds.shrink_to_fit();
        self.fanin_offsets.shrink_to_fit();
        self.fanin_data.shrink_to_fit();
        self.name_bytes.shrink_to_fit();
        self.name_offsets.shrink_to_fit();
        self.inputs.shrink_to_fit();
        self.outputs.shrink_to_fit();
        if self.inputs.is_empty() {
            return Err(BuildCircuitError::NoInputs);
        }
        if self.outputs.is_empty() {
            return Err(BuildCircuitError::NoOutputs);
        }
        let n = self.kinds.len();
        // Fanout lists in CSR layout: count, prefix-sum, fill.  Sinks are
        // visited in ascending id order, so each node's fanout slice comes
        // out sorted without an explicit sort.
        let mut fanout_offsets = vec![0u32; n + 1];
        for &f in &self.fanin_data {
            fanout_offsets[f.index() + 1] += 1;
        }
        for i in 1..fanout_offsets.len() {
            fanout_offsets[i] += fanout_offsets[i - 1];
        }
        let num_edges = *fanout_offsets.last().expect("offsets non-empty") as usize;
        let mut fanout_data = vec![NodeId::from_index(0); num_edges];
        let mut cursor: Vec<u32> = fanout_offsets[..n].to_vec();
        for i in 0..n {
            let lo = self.fanin_offsets[i] as usize;
            let hi = self.fanin_offsets[i + 1] as usize;
            for &f in &self.fanin_data[lo..hi] {
                let c = &mut cursor[f.index()];
                fanout_data[*c as usize] = NodeId::from_index(i);
                *c += 1;
            }
        }
        let mut output_flags = vec![false; n];
        for o in &self.outputs {
            output_flags[o.index()] = true;
        }
        let mut input_position = vec![u32::MAX; n];
        for (pos, id) in self.inputs.iter().enumerate() {
            input_position[id.index()] = u32::try_from(pos).expect("input count fits in u32");
        }
        let num_gates = self.kinds.iter().filter(|k| !k.is_source()).count();
        let max_fanin = self
            .fanin_offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0);
        let levels = Levels::compute(n, &self.fanin_offsets, &self.fanin_data);
        // Name lookup index: ids sorted by name.  The sort doubles as the
        // deferred duplicate-name check (equal names land adjacent).
        let mut name_sorted: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let name_of = |id: NodeId| -> &str {
            let lo = self.name_offsets[id.index()] as usize;
            let hi = self.name_offsets[id.index() + 1] as usize;
            &self.name_bytes[lo..hi]
        };
        name_sorted.sort_unstable_by(|&a, &b| name_of(a).cmp(name_of(b)));
        if let Some(w) = name_sorted.windows(2).find(|w| name_of(w[0]) == name_of(w[1])) {
            return Err(BuildCircuitError::DuplicateName(name_of(w[0]).to_string()));
        }
        static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Ok(Circuit {
            uid: NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            name: self.name,
            kinds: self.kinds,
            fanin_offsets: self.fanin_offsets,
            fanin_data: self.fanin_data,
            name_bytes: self.name_bytes,
            name_offsets: self.name_offsets,
            name_sorted,
            inputs: self.inputs,
            outputs: self.outputs,
            fanout_offsets,
            fanout_data,
            output_flags,
            input_position,
            num_gates: u32::try_from(num_gates).expect("gate count fits in u32"),
            max_fanin,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_forward_references() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bogus = NodeId::from_index(99);
        let err = b.gate(GateKind::And, "g", &[a, bogus]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::UnknownFanin { .. }));
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let err = b.gate(GateKind::Not, "n", &[a, c]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::BadArity { got: 2, .. }));
    }

    #[test]
    fn rejects_input_as_gate() {
        let mut b = CircuitBuilder::new();
        let err = b.gate(GateKind::Input, "i", &[]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::InputAsGate(_)));
    }

    #[test]
    fn duplicate_names_reported_at_build() {
        let mut b = CircuitBuilder::new();
        let a = b.input("x");
        let _ = b.gate(GateKind::Not, "x", &[a]).unwrap();
        b.mark_output(a);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DuplicateName(_))
        ));
    }

    #[test]
    fn empty_interfaces_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        // no outputs
        let _ = a;
        assert!(matches!(b.build(), Err(BuildCircuitError::NoOutputs)));

        let mut b = CircuitBuilder::new();
        let c0 = b.const1();
        b.mark_output(c0);
        assert!(matches!(b.build(), Err(BuildCircuitError::NoInputs)));
    }

    #[test]
    fn duplicate_output_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.not(a).unwrap();
        b.mark_output(g);
        b.mark_output(g);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DuplicateOutput(_))
        ));
    }

    #[test]
    fn auto_names_never_collide() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g1 = b.gate_auto(GateKind::Not, &[a]).unwrap();
        let g2 = b.gate_auto(GateKind::Not, &[a]).unwrap();
        b.mark_output(g1);
        b.mark_output(g2);
        let c = b.build().unwrap();
        assert_eq!(c.num_nodes(), 3);
    }

    #[test]
    fn constants_are_usable_as_fanin() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let one = b.const1();
        let g = b.gate(GateKind::And, "g", &[a, one]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn name_lookup_via_sorted_index() {
        let mut b = CircuitBuilder::new();
        let ids: Vec<NodeId> = (0..50).map(|i| b.input(format!("in_{i}"))).collect();
        let g = b.gate(GateKind::And, "zz_top", &[ids[0], ids[49]]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(c.node_id(&format!("in_{i}")), Some(id));
        }
        assert_eq!(c.node_id("zz_top"), Some(g));
        assert_eq!(c.node_id("in_50"), None);
        assert_eq!(c.node_id(""), None);
    }
}

//! Programmatic circuit construction.

use std::collections::HashMap;

use crate::error::BuildCircuitError;
use crate::gate::GateKind;
use crate::levelize::Levels;
use crate::netlist::{Circuit, Node, NodeId};

/// Incremental builder for [`Circuit`]s.
///
/// Gates may only reference node ids the builder has already handed out, so
/// the node list is topologically ordered *by construction* and cycles are
/// unrepresentable.
///
/// # Example
///
/// ```
/// use wrt_circuit::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), wrt_circuit::BuildCircuitError> {
/// let mut b = CircuitBuilder::named("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate(GateKind::Xor, "sum", &[a, c])?;
/// let carry = b.gate(GateKind::And, "carry", &[a, c])?;
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let ha = b.build()?;
/// assert_eq!(ha.num_outputs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    name_index: HashMap<String, NodeId>,
    errors: Vec<BuildCircuitError>,
    anon_counter: u64,
}

impl CircuitBuilder {
    /// Creates an empty builder with an empty circuit name.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder for a circuit called `name`.
    pub fn named(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("_{prefix}{}", self.anon_counter);
            self.anon_counter += 1;
            if !self.name_index.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        if self.name_index.insert(node.name.clone(), id).is_some() {
            self.errors
                .push(BuildCircuitError::DuplicateName(node.name.clone()));
        }
        self.nodes.push(node);
        id
    }

    /// Adds a primary input and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node {
            name: name.into(),
            kind: GateKind::Input,
            fanin: Box::new([]),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a constant-0 driver.
    pub fn const0(&mut self) -> NodeId {
        let name = self.fresh_name("const0_");
        self.push(Node {
            name,
            kind: GateKind::Const0,
            fanin: Box::new([]),
        })
    }

    /// Adds a constant-1 driver.
    pub fn const1(&mut self) -> NodeId {
        let name = self.fresh_name("const1_");
        self.push(Node {
            name,
            kind: GateKind::Const1,
            fanin: Box::new([]),
        })
    }

    /// Adds a gate with an explicit name.
    ///
    /// # Errors
    ///
    /// Returns an error immediately if `kind` is [`GateKind::Input`], if the
    /// arity is illegal for the kind, or if any fanin id was not previously
    /// returned by this builder.  Duplicate names are reported at
    /// [`CircuitBuilder::build`] time.
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanin: &[NodeId],
    ) -> Result<NodeId, BuildCircuitError> {
        let name = name.into();
        if kind == GateKind::Input {
            return Err(BuildCircuitError::InputAsGate(name));
        }
        let (lo, hi) = kind.arity_range();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(BuildCircuitError::BadArity {
                gate: name,
                kind,
                got: fanin.len(),
            });
        }
        if fanin.iter().any(|f| f.index() >= self.nodes.len()) {
            return Err(BuildCircuitError::UnknownFanin { gate: name });
        }
        Ok(self.push(Node {
            name,
            kind,
            fanin: fanin.to_vec().into_boxed_slice(),
        }))
    }

    /// Adds a gate with a generated name (`_g<N>`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn gate_auto(
        &mut self,
        kind: GateKind,
        fanin: &[NodeId],
    ) -> Result<NodeId, BuildCircuitError> {
        let name = self.fresh_name("g");
        self.gate(kind, name, fanin)
    }

    /// Convenience: 2-input AND with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::And, &[a, b])
    }

    /// Convenience: 2-input OR with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::Or, &[a, b])
    }

    /// Convenience: 2-input XOR with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::Xor, &[a, b])
    }

    /// Convenience: inverter with a generated name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::gate`].
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, BuildCircuitError> {
        self.gate_auto(GateKind::Not, &[a])
    }

    /// Marks an existing node as a primary output.
    pub fn mark_output(&mut self, id: NodeId) {
        if self.outputs.contains(&id) {
            let name = self.nodes[id.index()].name.clone();
            self.errors.push(BuildCircuitError::DuplicateOutput(name));
        } else {
            self.outputs.push(id);
        }
    }

    /// Finalizes the circuit: checks global invariants, computes fanouts and
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns the first deferred error (duplicate names, duplicate outputs)
    /// or a structural error (no inputs / no outputs).
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if self.inputs.is_empty() {
            return Err(BuildCircuitError::NoInputs);
        }
        if self.outputs.is_empty() {
            return Err(BuildCircuitError::NoOutputs);
        }
        // Fanout lists in CSR layout: count, prefix-sum, fill.  Sinks are
        // visited in ascending id order, so each node's fanout slice comes
        // out sorted without an explicit sort.
        let mut fanout_offsets = vec![0u32; self.nodes.len() + 1];
        for node in &self.nodes {
            for &f in node.fanin.iter() {
                fanout_offsets[f.index() + 1] += 1;
            }
        }
        for i in 1..fanout_offsets.len() {
            fanout_offsets[i] += fanout_offsets[i - 1];
        }
        let num_edges = *fanout_offsets.last().expect("offsets non-empty") as usize;
        let mut fanout_data = vec![NodeId::from_index(0); num_edges];
        let mut cursor: Vec<u32> = fanout_offsets[..self.nodes.len()].to_vec();
        for (i, node) in self.nodes.iter().enumerate() {
            for &f in node.fanin.iter() {
                let c = &mut cursor[f.index()];
                fanout_data[*c as usize] = NodeId::from_index(i);
                *c += 1;
            }
        }
        let mut output_flags = vec![false; self.nodes.len()];
        for o in &self.outputs {
            output_flags[o.index()] = true;
        }
        let mut input_position = vec![usize::MAX; self.nodes.len()];
        for (pos, id) in self.inputs.iter().enumerate() {
            input_position[id.index()] = pos;
        }
        let levels = Levels::compute(&self.nodes);
        static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Ok(Circuit {
            uid: NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            name: self.name,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            fanout_offsets,
            fanout_data,
            output_flags,
            name_index: self.name_index,
            input_position,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_forward_references() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bogus = NodeId::from_index(99);
        let err = b.gate(GateKind::And, "g", &[a, bogus]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::UnknownFanin { .. }));
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let err = b.gate(GateKind::Not, "n", &[a, c]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::BadArity { got: 2, .. }));
    }

    #[test]
    fn rejects_input_as_gate() {
        let mut b = CircuitBuilder::new();
        let err = b.gate(GateKind::Input, "i", &[]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::InputAsGate(_)));
    }

    #[test]
    fn duplicate_names_reported_at_build() {
        let mut b = CircuitBuilder::new();
        let a = b.input("x");
        let _ = b.gate(GateKind::Not, "x", &[a]).unwrap();
        b.mark_output(a);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DuplicateName(_))
        ));
    }

    #[test]
    fn empty_interfaces_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        // no outputs
        let _ = a;
        assert!(matches!(b.build(), Err(BuildCircuitError::NoOutputs)));

        let mut b = CircuitBuilder::new();
        let c0 = b.const1();
        b.mark_output(c0);
        assert!(matches!(b.build(), Err(BuildCircuitError::NoInputs)));
    }

    #[test]
    fn duplicate_output_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.not(a).unwrap();
        b.mark_output(g);
        b.mark_output(g);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DuplicateOutput(_))
        ));
    }

    #[test]
    fn auto_names_never_collide() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g1 = b.gate_auto(GateKind::Not, &[a]).unwrap();
        let g2 = b.gate_auto(GateKind::Not, &[a]).unwrap();
        b.mark_output(g1);
        b.mark_output(g2);
        let c = b.build().unwrap();
        assert_eq!(c.num_nodes(), 3);
    }

    #[test]
    fn constants_are_usable_as_fanin() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let one = b.const1();
        let g = b.gate(GateKind::And, "g", &[a, one]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_gates(), 1);
    }
}

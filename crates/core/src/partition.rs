//! Fault-set partitioning: the extension sketched in paper §5.3.
//!
//! Optimization fails when two faults both have very low detection
//! probability and nearly disjoint test sets (the paper's example
//! criteria).  "The problem can be solved by partitioning the fault set,
//! and by computing different optimal input probabilities for each part."
//! The original did not implement this ("such pathological circuits
//! didn't occur"); we do, as the natural completion of the method.
//!
//! Strategy: optimize on the remaining faults; keep the faults the weight
//! set serves well (individual required length within a factor of the
//! best-served fault); recurse on the rest with a fresh weight set.

use wrt_circuit::Circuit;
use wrt_estimate::DetectionProbabilityEngine;
use wrt_fault::{Fault, FaultId, FaultList};

use crate::optimize::{optimize, OptimizeConfig};
use crate::test_length::required_test_length;

/// One weight set of a partitioned test, serving a subset of the faults.
#[derive(Debug, Clone)]
pub struct WeightSet {
    /// Input probabilities for this session.
    pub weights: Vec<f64>,
    /// Required test length for the faults this set covers.
    pub test_length: f64,
    /// Ids (into the original fault list) covered by this set.
    pub fault_ids: Vec<FaultId>,
}

/// The outcome of [`optimize_partitioned`].
#[derive(Debug, Clone)]
pub struct PartitionedResult {
    /// The weight sets, in the order they should be applied.
    pub parts: Vec<WeightSet>,
    /// Faults excluded as undetectable at the starting distribution.
    pub excluded: Vec<FaultId>,
}

impl PartitionedResult {
    /// Total test length across all sessions.
    pub fn total_length(&self) -> f64 {
        self.parts.iter().map(|p| p.test_length).sum()
    }
}

/// Computes up to `max_parts` weight sets, each optimized for the faults
/// the previous sets left poorly covered.
///
/// With `max_parts = 1` this degenerates to [`optimize`].  The final part
/// always absorbs every remaining fault, so the union of `fault_ids` over
/// all parts is the full (detectable) fault list.
///
/// # Panics
///
/// Panics if `max_parts == 0` or on the conditions of [`optimize`].
pub fn optimize_partitioned(
    circuit: &Circuit,
    faults: &FaultList,
    engine: &mut dyn DetectionProbabilityEngine,
    config: &OptimizeConfig,
    max_parts: usize,
) -> PartitionedResult {
    assert!(max_parts > 0, "need at least one part");
    let theta = config.theta();
    let mut remaining: Vec<(FaultId, Fault)> = faults.iter().collect();
    let mut parts = Vec::new();
    let mut excluded = Vec::new();

    for part_index in 0..max_parts {
        if remaining.is_empty() {
            break;
        }
        let part_list: FaultList = remaining.iter().map(|&(_, f)| f).collect();
        let result = optimize(circuit, &part_list, engine, config);
        // Map the part-local exclusions back to original ids, and keep
        // only live faults for coverage decisions.
        let excluded_local: std::collections::HashSet<usize> =
            result.excluded.iter().map(|id| id.index()).collect();
        excluded.extend(
            remaining
                .iter()
                .enumerate()
                .filter(|(k, _)| excluded_local.contains(k))
                .map(|(_, &(id, _))| id),
        );
        let live: Vec<(FaultId, Fault)> = remaining
            .iter()
            .enumerate()
            .filter(|(k, _)| !excluded_local.contains(k))
            .map(|(_, &pair)| pair)
            .collect();
        if live.is_empty() {
            break;
        }
        let live_list: FaultList = live.iter().map(|&(_, f)| f).collect();
        // A conflicting fault set stalls near the equiprobable saddle:
        // anything under one order of magnitude counts as a stall (real
        // successes gain 10^2–10^6).
        let stalled = result.improvement_factor() < 10.0;
        let mut weights = result.weights;
        let mut dprobs = engine.estimate(circuit, &live_list, &weights);

        let last_part = part_index + 1 == max_parts;
        // Stall breaking: a conflicting fault set (the paper's wide-AND vs
        // wide-NOR example) leaves coordinate descent at the symmetric
        // saddle with no improvement.  Re-optimize for the *hardest* fault
        // alone — its preferred corner becomes this part's weight set and
        // the conflict partner drops out of `covered` naturally.
        if !last_part && live.len() > 1 && stalled {
            let hardest = dprobs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(k, _)| k)
                .expect("live is non-empty");
            let singleton: FaultList = std::iter::once(live[hardest].1).collect();
            let focused = optimize(circuit, &singleton, engine, config);
            let focused_probs = engine.estimate(circuit, &live_list, &focused.weights);
            // Adopt the focused weights only if they genuinely help the
            // hardest fault.
            if focused_probs[hardest] > dprobs[hardest] {
                weights = focused.weights;
                dprobs = focused_probs;
            }
        }
        let (covered, rest): (Vec<usize>, Vec<usize>) = if last_part {
            ((0..live.len()).collect(), Vec::new())
        } else {
            split_by_individual_length(&dprobs)
        };
        if covered.is_empty() {
            // Degenerate: serve everything with this set and stop.
            parts.push(WeightSet {
                weights: weights.clone(),
                test_length: required_test_length(&dprobs, theta).patterns(),
                fault_ids: live.iter().map(|&(id, _)| id).collect(),
            });
            break;
        }
        let covered_probs: Vec<f64> = covered.iter().map(|&k| dprobs[k]).collect();
        parts.push(WeightSet {
            weights: weights.clone(),
            test_length: required_test_length(&covered_probs, theta).patterns(),
            fault_ids: covered.iter().map(|&k| live[k].0).collect(),
        });
        remaining = rest.into_iter().map(|k| live[k]).collect();
    }

    PartitionedResult { parts, excluded }
}

/// Splits fault indices into (well-covered, poorly-covered) by individual
/// required length: a fault stays in the part when its `ln(1/θ)/p` is
/// within `SPREAD` of the best-covered fault's.
fn split_by_individual_length(dprobs: &[f64]) -> (Vec<usize>, Vec<usize>) {
    const SPREAD: f64 = 64.0;
    let best = dprobs.iter().copied().fold(0.0f64, f64::max);
    if best <= 0.0 {
        return ((0..dprobs.len()).collect(), Vec::new());
    }
    let mut covered = Vec::new();
    let mut rest = Vec::new();
    for (k, &p) in dprobs.iter().enumerate() {
        // length ratio = best/p; keep when within SPREAD.
        if p > 0.0 && best / p <= SPREAD {
            covered.push(k);
        } else {
            rest.push(k);
        }
    }
    (covered, rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_estimate::CopEngine;

    fn pathological(width: usize) -> Circuit {
        // Same structure as wrt-workloads::pathological_pair, rebuilt here
        // to keep the dev-dependency graph acyclic.
        let mut b = wrt_circuit::CircuitBuilder::named("patho");
        let xs: Vec<_> = (0..width).map(|i| b.input(format!("X{i}"))).collect();
        let and = b
            .gate(wrt_circuit::GateKind::And, "WIDE_AND", &xs)
            .unwrap();
        let nor = b
            .gate(wrt_circuit::GateKind::Nor, "WIDE_NOR", &xs)
            .unwrap();
        b.mark_output(and);
        b.mark_output(nor);
        b.build().unwrap()
    }

    #[test]
    fn partitioning_beats_single_weight_set_on_conflict() {
        let c = pathological(14);
        let and_id = c.node_id("WIDE_AND").unwrap();
        let nor_id = c.node_id("WIDE_NOR").unwrap();
        let faults = FaultList::from_faults(vec![
            wrt_fault::Fault::output(and_id, false), // needs all ones
            wrt_fault::Fault::output(nor_id, false), // needs all zeros
        ]);
        let config = OptimizeConfig::default();
        let mut engine = CopEngine::new();
        let single = optimize(&c, &faults, &mut engine, &config);
        let parts = optimize_partitioned(&c, &faults, &mut engine, &config, 2);
        assert_eq!(parts.parts.len(), 2);
        assert!(
            parts.total_length() * 10.0 < single.final_length,
            "partitioned {} vs single {}",
            parts.total_length(),
            single.final_length
        );
    }

    #[test]
    fn single_part_matches_optimize() {
        let c = pathological(6);
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig::default();
        let mut e1 = CopEngine::new();
        let mut e2 = CopEngine::new();
        let single = optimize(&c, &faults, &mut e1, &config);
        let parts = optimize_partitioned(&c, &faults, &mut e2, &config, 1);
        assert_eq!(parts.parts.len(), 1);
        assert!((parts.total_length() - single.final_length).abs() < 1e-6);
    }

    #[test]
    fn incremental_engine_matches_full_cop_partitioning() {
        // The recursion funnels every optimize() call through the
        // coordinate-pair hook, so the incremental engine must reproduce
        // the full engine's partitioning exactly.
        let c = pathological(12);
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig::default();
        let mut full = CopEngine::new();
        let mut incremental = wrt_estimate::IncrementalCop::new();
        let reference = optimize_partitioned(&c, &faults, &mut full, &config, 3);
        let got = optimize_partitioned(&c, &faults, &mut incremental, &config, 3);
        assert_eq!(got.parts.len(), reference.parts.len());
        for (g, r) in got.parts.iter().zip(&reference.parts) {
            assert_eq!(g.weights, r.weights);
            assert_eq!(g.test_length.to_bits(), r.test_length.to_bits());
            assert_eq!(g.fault_ids, r.fault_ids);
        }
        assert_eq!(got.excluded, reference.excluded);
    }

    #[test]
    fn batched_pending_engine_matches_full_cop_partitioning() {
        // Partitioning interleaves optimize() runs with direct
        // estimate() calls on changing fault lists — the pending layer
        // must materialize at each unmasked query and stay bit-exact
        // across the part recursion.
        let c = pathological(12);
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig::default();
        let mut full = CopEngine::new();
        let mut batched = wrt_estimate::IncrementalCop::new().with_commit_batch(4);
        let reference = optimize_partitioned(&c, &faults, &mut full, &config, 3);
        let got = optimize_partitioned(&c, &faults, &mut batched, &config, 3);
        assert_eq!(got.parts.len(), reference.parts.len());
        for (g, r) in got.parts.iter().zip(&reference.parts) {
            assert_eq!(g.weights, r.weights);
            assert_eq!(g.test_length.to_bits(), r.test_length.to_bits());
            assert_eq!(g.fault_ids, r.fault_ids);
        }
        assert_eq!(got.excluded, reference.excluded);
    }

    #[test]
    fn all_faults_are_assigned_to_some_part() {
        let c = pathological(10);
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig::default();
        let mut engine = CopEngine::new();
        let parts = optimize_partitioned(&c, &faults, &mut engine, &config, 3);
        let assigned: usize = parts.parts.iter().map(|p| p.fault_ids.len()).sum();
        assert_eq!(assigned + parts.excluded.len(), faults.len());
    }
}

//! Optimized input probabilities for random tests.
//!
//! This crate is the reproduction of the paper's contribution
//! (H.-J. Wunderlich, *On Computing Optimized Input Probabilities for
//! Random Tests*, DAC 1987): given a combinational circuit, a stuck-at
//! fault list and a detection-probability engine, compute one probability
//! `x_i` per primary input such that weighted random patterns drawn with
//! those probabilities need a dramatically shorter test than equiprobable
//! patterns.
//!
//! The machinery follows the paper §2–§4:
//!
//! * the objective `J_N(X) = Σ_f exp(−N · p_f(X))` ([`objective_value`],
//!   formula 9/10) and its relation to the test confidence
//!   ([`confidence`], formula 1/8);
//! * `NORMALIZE` ([`required_test_length`]): the minimal `N` reaching a
//!   confidence target, plus the subset of *relevant* (hardest) faults
//!   that contribute numerically — observation (1) of §4;
//! * `PREPARE`/`MINIMIZE` ([`minimize_coordinate`]): `p_f` is affine in
//!   each single `x_i` (Lemma 1/3), so two engine calls per input yield a
//!   strictly convex 1-D problem solved by safeguarded Newton iteration
//!   (formula 15);
//! * `OPTIMIZE` ([`optimize`]): coordinate descent over all inputs until
//!   the test length stops improving;
//! * weight quantization to a hardware grid ([`quantize_weights`],
//!   appendix) and the fault-set partitioning extension sketched in §5.3
//!   ([`optimize_partitioned`]).
//!
//! # Example
//!
//! ```
//! use wrt_core::{optimize, OptimizeConfig};
//! use wrt_estimate::CopEngine;
//! use wrt_fault::FaultList;
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! // A 6-input AND is mildly random-pattern resistant (p = 2^-6).
//! let c = wrt_circuit::parse_bench(
//!     "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n\
//!      OUTPUT(y)\ny = AND(a, b, c, d, e, f)\n",
//! )?;
//! let faults = FaultList::checkpoints(&c);
//! let mut engine = CopEngine::new();
//! let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
//! assert!(result.final_length < result.initial_length);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod minimize;
mod objective;
mod optimize;
mod partition;
mod quantize;
mod test_length;

pub use minimize::{minimize_coordinate, CoordinateProblem};
pub use objective::{confidence, log_confidence, objective_value};
pub use optimize::{
    optimize, optimize_budgeted, BudgetedOptimize, OptimizeConfig, OptimizeResult, SweepRecord,
    OPTIMIZE_CHECKPOINT_KIND,
};
pub use partition::{optimize_partitioned, PartitionedResult, WeightSet};
pub use quantize::quantize_weights;
pub use test_length::{required_test_length, sort_by_difficulty, TestLength};

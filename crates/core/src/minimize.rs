//! `MINIMIZE`: the strictly convex 1-D subproblem (paper §3.2, formula 15).
//!
//! By Lemma 1 (Shannon expansion), every detection probability is affine
//! in a single input probability:
//!
//! ```text
//! p_f(X, y|i) = p_f(X, 0|i) + y · (p_f(X, 1|i) − p_f(X, 0|i))
//! ```
//!
//! so once `PREPARE` has evaluated the engine at `y = 0` and `y = 1`, the
//! 1-D objective `J_N(X, y|i) = Σ exp(−N (p0_f + y d_f))` and both its
//! derivatives are closed-form — "the minimizing procedure itself is
//! nearly independent of the circuit size" (§4 observation 2).  Lemma 3
//! shows `J''> 0`, so safeguarded Newton iteration converges to the unique
//! interior minimum.

/// The per-input 1-D minimization problem assembled by `PREPARE`.
#[derive(Debug, Clone)]
pub struct CoordinateProblem {
    /// `p_f(X, 0|i)` per relevant fault.
    pub p0: Vec<f64>,
    /// `p_f(X, 1|i)` per relevant fault.
    pub p1: Vec<f64>,
    /// Test length `N` the objective is evaluated at.
    pub n: f64,
}

impl CoordinateProblem {
    /// Creates a problem from the two engine evaluations.
    ///
    /// # Panics
    ///
    /// Panics if the two probability vectors differ in length or `n` is
    /// not positive and finite.
    pub fn new(p0: Vec<f64>, p1: Vec<f64>, n: f64) -> Self {
        assert_eq!(p0.len(), p1.len(), "PREPARE vectors must pair up");
        assert!(n.is_finite() && n > 0.0, "test length must be positive");
        CoordinateProblem { p0, p1, n }
    }

    /// `J_N(X, y|i)` via the affine interpolation.
    pub fn objective(&self, y: f64) -> f64 {
        self.p0
            .iter()
            .zip(&self.p1)
            .map(|(&a, &b)| (-self.n * (a + y * (b - a))).exp())
            .sum()
    }

    /// The scaled first and second derivative sums at `y`, computed with a
    /// shared exponent shift so that huge `N·p` products cannot underflow
    /// all terms simultaneously.  Returns `(sum d·w, sum d²·w)` where
    /// `w_f = exp(−(N·p_f(y) − m))` and `m` is the smallest exponent.
    fn scaled_derivative_sums(&self, y: f64) -> (f64, f64) {
        let exponents: Vec<f64> = self
            .p0
            .iter()
            .zip(&self.p1)
            .map(|(&a, &b)| self.n * (a + y * (b - a)))
            .collect();
        let m = exponents.iter().copied().fold(f64::INFINITY, f64::min);
        let mut s1 = 0.0f64;
        let mut s2 = 0.0f64;
        for ((&a, &b), &e) in self.p0.iter().zip(&self.p1).zip(&exponents) {
            let d = b - a;
            let w = (-(e - m)).exp();
            s1 += d * w;
            s2 += d * d * w;
        }
        (s1, s2)
    }
}

/// Solves `min_y J_N(X, y|i)` over `[lo, hi]` by safeguarded Newton
/// iteration (formula 15: `y := y − J′/J″`).
///
/// The derivative ratio `J′/J″ = −(Σ d·w)/(N · Σ d²·w)` is evaluated with
/// a common exponent shift, so the iteration is stable even when every
/// raw term of `J` underflows.  Steps leaving `[lo, hi]` are clamped; the
/// iteration stops when the step is below `tol` or after `max_iters`.
///
/// Returns the minimizing `y`.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use wrt_core::{minimize_coordinate, CoordinateProblem};
/// // One fault needing the input at 1 (p1 > p0): push y up.
/// let prob = CoordinateProblem::new(vec![0.0], vec![0.3], 100.0);
/// let y = minimize_coordinate(&prob, 0.5, 0.02, 0.98);
/// assert!(y > 0.9);
/// ```
pub fn minimize_coordinate(problem: &CoordinateProblem, start: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "bounds must be ordered");
    assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    let tol = 1e-7;
    let max_iters = 100;
    if problem.p0.is_empty() {
        return start.clamp(lo, hi);
    }
    // J is strictly convex, so J' is increasing: the minimum is at lo/hi
    // when J' does not change sign inside, otherwise at the unique root of
    // J'.  sign(J'(y)) = -sign(s1(y)).
    let deriv_sign = |y: f64, problem: &CoordinateProblem| -> f64 {
        let (s1, _) = problem.scaled_derivative_sums(y);
        -s1
    };
    let d_lo = deriv_sign(lo, problem);
    let d_hi = deriv_sign(hi, problem);
    if d_lo == 0.0 && d_hi == 0.0 {
        return start.clamp(lo, hi); // objective constant in y
    }
    if d_lo >= 0.0 {
        return lo; // increasing everywhere
    }
    if d_hi <= 0.0 {
        return hi; // decreasing everywhere
    }
    // Bracketed Newton: keep [a, b] with J'(a) < 0 < J'(b); fall back to
    // bisection whenever the Newton step leaves the bracket (which also
    // covers the near-degenerate J'' ≈ 0 case).
    let (mut a, mut b) = (lo, hi);
    let mut y = start.clamp(lo, hi);
    for _ in 0..max_iters {
        let (s1, s2) = problem.scaled_derivative_sums(y);
        let dy_sign = -s1;
        if dy_sign < 0.0 {
            a = y;
        } else {
            b = y;
        }
        let newton = if s2 > 0.0 && s1.is_finite() && s2.is_finite() {
            y + s1 / (problem.n * s2)
        } else {
            f64::NAN
        };
        let next = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
        let moved = (next - y).abs();
        y = next;
        if moved < tol || (b - a) < tol {
            break;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_problem_stays_centered() {
        // Two mirrored faults: optimum at 0.5.
        let prob = CoordinateProblem::new(vec![0.0, 0.3], vec![0.3, 0.0], 50.0);
        let y = minimize_coordinate(&prob, 0.31, 0.02, 0.98);
        assert!((y - 0.5).abs() < 1e-4, "y = {y}");
    }

    #[test]
    fn pull_toward_one_and_zero() {
        let up = CoordinateProblem::new(vec![0.01], vec![0.5], 200.0);
        assert!(minimize_coordinate(&up, 0.5, 0.02, 0.98) > 0.95);
        let down = CoordinateProblem::new(vec![0.5], vec![0.01], 200.0);
        assert!(minimize_coordinate(&down, 0.5, 0.02, 0.98) < 0.05);
    }

    #[test]
    fn result_is_a_local_minimum() {
        let prob = CoordinateProblem::new(
            vec![1e-4, 2e-3, 0.05],
            vec![5e-3, 1e-4, 0.01],
            3000.0,
        );
        let y = minimize_coordinate(&prob, 0.5, 0.02, 0.98);
        let j = prob.objective(y);
        for dy in [-1e-3, 1e-3] {
            let y2 = (y + dy).clamp(0.02, 0.98);
            assert!(
                prob.objective(y2) >= j - 1e-12,
                "J({y2}) < J({y}) : {} < {j}",
                prob.objective(y2)
            );
        }
    }

    #[test]
    fn underflow_scale_still_converges() {
        // N·p around 10^4: every raw exp underflows to 0, but the scaled
        // iteration must still find the pull toward 1.
        let prob = CoordinateProblem::new(vec![1e-2], vec![5e-2], 1e6);
        let y = minimize_coordinate(&prob, 0.5, 0.02, 0.98);
        assert!(y > 0.95, "y = {y}");
    }

    #[test]
    fn constant_objective_returns_start() {
        let prob = CoordinateProblem::new(vec![0.1, 0.2], vec![0.1, 0.2], 100.0);
        let y = minimize_coordinate(&prob, 0.37, 0.02, 0.98);
        assert!((y - 0.37).abs() < 1e-12);
    }

    #[test]
    fn empty_problem_returns_start() {
        let prob = CoordinateProblem::new(vec![], vec![], 100.0);
        assert_eq!(minimize_coordinate(&prob, 0.4, 0.02, 0.98), 0.4);
    }

    #[test]
    fn respects_bounds() {
        let prob = CoordinateProblem::new(vec![0.0], vec![0.9], 1000.0);
        let y = minimize_coordinate(&prob, 0.5, 0.1, 0.9);
        assert!(y <= 0.9 + 1e-12);
        assert!((y - 0.9).abs() < 1e-9, "optimum clamps to hi");
    }

    #[test]
    fn golden_section_agrees_with_newton() {
        // Independent check of the optimizer: brute-force golden section.
        let prob = CoordinateProblem::new(
            vec![2e-4, 8e-3, 0.02, 1e-5],
            vec![6e-3, 1e-3, 0.05, 2e-5],
            5000.0,
        );
        let newton = minimize_coordinate(&prob, 0.5, 0.02, 0.98);
        let (mut a, mut b) = (0.02f64, 0.98f64);
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        for _ in 0..100 {
            let x1 = b - phi * (b - a);
            let x2 = a + phi * (b - a);
            if prob.objective(x1) < prob.objective(x2) {
                b = x2;
            } else {
                a = x1;
            }
        }
        let golden = 0.5 * (a + b);
        assert!(
            (newton - golden).abs() < 1e-3,
            "newton {newton} vs golden {golden}"
        );
    }
}

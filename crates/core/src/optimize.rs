//! `OPTIMIZE`: coordinate descent over all input probabilities (paper §4).

use wrt_circuit::Circuit;
use wrt_estimate::DetectionProbabilityEngine;
use wrt_fault::{Fault, FaultId, FaultList};

use crate::minimize::{minimize_coordinate, CoordinateProblem};
use crate::test_length::{required_test_length, sort_by_difficulty, TestLength};

/// Tuning knobs of [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// Confidence target for the random test (the paper's `a`); the
    /// objective threshold is `θ = −ln(confidence)`.
    pub confidence: f64,
    /// Stop when a sweep improves the test length by less than this
    /// relative fraction (the paper's user-defined `α`).
    pub min_improvement: f64,
    /// Hard cap on coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Number of consecutive non-improving sweeps tolerated before giving
    /// up.  Early sweeps on many-input circuits can zigzag (each
    /// coordinate reacts to a still-unsettled rest of the vector) before
    /// the descent locks in; the best vector seen is kept regardless.
    pub patience: usize,
    /// Weights are kept inside `[lo, hi]` (strictly inside `(0, 1)` so no
    /// primary-input fault becomes undetectable, cf. Lemma 2).
    pub weight_bounds: (f64, f64),
    /// Starting weights; `None` = equiprobable 0.5.
    pub starting_weights: Option<Vec<f64>>,
    /// Extra faults carried beyond the `NORMALIZE` relevant set, as slack
    /// against the paper's caveat that "the order of the detection
    /// probabilities may change during optimization".
    pub relevant_slack: usize,
    /// Under-relaxation factor in `(0, 1]`: each coordinate moves this
    /// fraction of the way from its current value to its 1-D optimum.
    /// `1.0` is the paper's plain update; smaller values damp the zigzag
    /// coordinate descent exhibits on wide comparator structures (every
    /// `x_i`'s optimum depends strongly on all the others).
    pub damping: f64,
    /// Deterministic symmetry-breaking perturbation applied to the default
    /// 0.5 starting vector (ignored when `starting_weights` is given).
    ///
    /// Comparator-style circuits are perfectly symmetric in `x ↔ 1 − x`,
    /// which makes the equiprobable point a stationary point of every
    /// 1-D subproblem: coordinate descent started at exactly 0.5 never
    /// moves.  A small per-input offset (sign chosen by hashing the input
    /// index) breaks the tie; the descent then amplifies it toward a
    /// proper relative optimum, cf. the strongly asymmetric weights in
    /// the paper's appendix.
    pub jitter: f64,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            confidence: 0.999,
            min_improvement: 0.01,
            max_sweeps: 48,
            weight_bounds: (0.02, 0.98),
            starting_weights: None,
            relevant_slack: 16,
            jitter: 0.05,
            patience: 6,
            damping: 0.5,
        }
    }
}

impl OptimizeConfig {
    /// `θ = −ln(confidence)`.
    pub fn theta(&self) -> f64 {
        -self.confidence.ln()
    }

    /// Replaces the starting weights with the SCOAP-derived seed
    /// ([`wrt_analyze::scoap_seed_weights`]): each input starts biased
    /// toward the non-controlling values its observable sinks want,
    /// instead of at jittered 0.5.  Opt-in — the descent still converges
    /// from the default start; the seed just begins it closer to the
    /// asymmetric optima wide AND/OR structures end up at.
    pub fn scoap_seeded(mut self, circuit: &Circuit) -> Self {
        let scoap = wrt_analyze::Scoap::compute(circuit);
        let (lo, hi) = self.weight_bounds;
        let seed = wrt_analyze::scoap_seed_weights(circuit, &scoap)
            .into_iter()
            .map(|w| w.clamp(lo, hi))
            .collect();
        self.starting_weights = Some(seed);
        self
    }
}

/// One record per completed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRecord {
    /// Test length after the sweep.
    pub test_length: f64,
    /// Relevant-fault count used during the sweep.
    pub num_relevant: usize,
}

/// The outcome of [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// One probability per primary input.
    pub weights: Vec<f64>,
    /// Required test length at the starting weights.
    pub initial_length: f64,
    /// Required test length at the optimized weights.
    pub final_length: f64,
    /// Per-sweep history.
    pub sweeps: Vec<SweepRecord>,
    /// Faults excluded because their detection probability was 0 at the
    /// starting distribution (redundancy candidates, cf. the paper's
    /// PROTEST redundancy proofs).
    pub excluded: Vec<FaultId>,
    /// Number of engine invocations performed.
    pub engine_calls: usize,
}

impl OptimizeResult {
    /// `initial_length / final_length` (> 1 when optimization helped).
    pub fn improvement_factor(&self) -> f64 {
        self.initial_length / self.final_length
    }
}

/// Computes optimized input probabilities (the paper's `OPTIMIZE`).
///
/// Structure, following §4:
///
/// ```text
/// X := starting vector; ANALYSIS; SORT; NORMALIZE(N, nf);
/// while the sweep improves N by more than α:
///     for every primary input i:
///         PREPARE  (engine at X,0|i and X,1|i — relevant faults only)
///         MINIMIZE (Newton on the 1-D convex objective)
///         x_i := y
///     ANALYSIS; SORT; NORMALIZE(N, nf)
/// ```
///
/// The best weight vector seen (by test length) is returned, so a sweep
/// that overshoots on estimated probabilities cannot make the result
/// worse than its predecessor.
///
/// # Panics
///
/// Panics if `config.starting_weights` is given with the wrong length, or
/// if the confidence is not in `(0, 1)`.
pub fn optimize(
    circuit: &Circuit,
    faults: &FaultList,
    engine: &mut dyn DetectionProbabilityEngine,
    config: &OptimizeConfig,
) -> OptimizeResult {
    assert!(
        config.confidence > 0.0 && config.confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let theta = config.theta();
    let num_inputs = circuit.num_inputs();
    let mut weights = match &config.starting_weights {
        Some(w) => {
            assert_eq!(w.len(), num_inputs, "one starting weight per input");
            w.clone()
        }
        None => (0..num_inputs)
            .map(|i| 0.5 + config.jitter * jitter_sign(i))
            .collect(),
    };
    let (lo, hi) = config.weight_bounds;
    let mut engine_calls = 0usize;

    // Initial ANALYSIS: identify undetectable faults and the baseline N.
    let initial_probs = engine.estimate(circuit, faults, &weights);
    engine_calls += 1;
    let mut excluded = Vec::new();
    let mut live: Vec<(FaultId, Fault)> = Vec::new();
    for ((id, fault), &p) in faults.iter().zip(&initial_probs) {
        if p <= 0.0 {
            excluded.push(id);
        } else {
            live.push((id, fault));
        }
    }
    let live_list: FaultList = live.iter().map(|&(_, f)| f).collect();
    let mut dprobs: Vec<f64> = faults
        .iter()
        .zip(&initial_probs)
        .filter(|((_, _), &p)| p > 0.0)
        .map(|(_, &p)| p)
        .collect();

    let initial = required_test_length(&dprobs, theta);
    let initial_length = initial.patterns();
    let mut best_weights = weights.clone();
    let mut best_length = initial_length;
    let mut n_current = match initial {
        TestLength::Patterns { n, .. } => n,
        TestLength::Infinite => {
            // Nothing the optimizer can do: every fault list member is
            // undetectable under the interior starting point.
            return OptimizeResult {
                weights,
                initial_length,
                final_length: initial_length,
                sweeps: Vec::new(),
                excluded,
                engine_calls,
            };
        }
    };
    let mut num_relevant = initial.num_relevant();
    let mut sweeps = Vec::new();
    let mut stale_sweeps = 0usize;

    for _sweep in 0..config.max_sweeps {
        // Relevant subset: hardest `nf + slack` faults at the current X.
        let order = sort_by_difficulty(&dprobs);
        let take = (num_relevant + config.relevant_slack).min(order.len());
        let relevant_ids: Vec<usize> = order[..take].to_vec();
        let relevant_list: FaultList = relevant_ids
            .iter()
            .map(|&k| live_list.fault(wrt_fault::FaultId::from_index(k)))
            .collect();

        for i in 0..num_inputs {
            // PREPARE: engine at x_i = 0 and x_i = 1, both boundary points
            // in one engine call so parallel engines (e.g. the sharded
            // Monte-Carlo simulator) can reuse their fan-out machinery and
            // incremental engines (IncrementalCop) can restrict the work
            // to input i's fanout cone.
            let saved = weights[i];
            let (p0, p1) =
                engine.estimate_coordinate_pair(circuit, &relevant_list, &weights, i);
            engine_calls += 2;
            // MINIMIZE (with optional under-relaxation).
            let problem = CoordinateProblem::new(p0, p1, n_current);
            let optimum = minimize_coordinate(&problem, saved, lo, hi);
            weights[i] = saved + config.damping.clamp(f64::MIN_POSITIVE, 1.0) * (optimum - saved);
        }

        // ANALYSIS + SORT + NORMALIZE at the new X.
        //
        // Faults in the live list are detectable at every interior X, so a
        // zero estimate here is floating-point absorption (e.g. an OR
        // chain's signal probability rounding to exactly 1.0 makes the
        // s-a-1 activation exactly 0).  Clamp to a representable floor so
        // the sweep records a huge-but-finite length and the descent can
        // recover instead of aborting.
        let probs = engine.estimate(circuit, &live_list, &weights);
        engine_calls += 1;
        dprobs = probs.into_iter().map(|p| p.max(1e-300)).collect();
        let sweep_length = match required_test_length(&dprobs, theta) {
            TestLength::Patterns { n, num_relevant: nf } => {
                n_current = n;
                num_relevant = nf;
                n
            }
            // Beyond NORMALIZE's search range (> 10^18 patterns): a wild
            // overshoot sweep.  Keep the previous N for MINIMIZE and let
            // the patience counter decide.
            TestLength::Infinite => f64::INFINITY,
        };
        sweeps.push(SweepRecord {
            test_length: sweep_length,
            num_relevant,
        });
        if sweep_length < best_length * (1.0 - config.min_improvement) {
            stale_sweeps = 0;
        } else {
            stale_sweeps += 1;
        }
        if sweep_length < best_length {
            best_length = sweep_length;
            best_weights = weights.clone();
        }
        // Termination: too many sweeps without material improvement of
        // the best test length (the paper's α criterion, with patience).
        if stale_sweeps > config.patience {
            break;
        }
    }

    OptimizeResult {
        weights: best_weights,
        initial_length,
        final_length: best_length,
        sweeps,
        excluded,
        engine_calls,
    }
}

/// Deterministic ±1 from a SplitMix64-style hash of the input index.
fn jitter_sign(i: usize) -> f64 {
    let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    if (z ^ (z >> 31)) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_estimate::{CopEngine, ExactEngine};

    fn wide_and(k: usize) -> Circuit {
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..k {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        wrt_circuit::parse_bench(&src).unwrap()
    }

    #[test]
    fn wide_and_drives_weights_up() {
        let c = wide_and(10);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        // The hardest fault (y s-a-0 class needs all-ones) wants x_i → 1,
        // but each x_i s-a-1 needs x_i = 0 with the others 1, pulling back
        // from the boundary: weights end high but interior.
        for (i, &w) in result.weights.iter().enumerate() {
            assert!(w > 0.6, "weight {i} = {w}");
            assert!(w < 0.98 + 1e-9, "weight {i} = {w}");
        }
        assert!(
            result.improvement_factor() > 10.0,
            "improvement {}",
            result.improvement_factor()
        );
    }

    #[test]
    fn optimized_length_never_worse_than_initial() {
        let c = wide_and(6);
        let faults = FaultList::full(&c);
        let mut engine = CopEngine::new();
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(result.final_length <= result.initial_length);
        assert!(!result.sweeps.is_empty());
    }

    #[test]
    fn exact_engine_small_circuit() {
        // 4-input AND with the exact engine: ground-truth optimization.
        let c = wide_and(4);
        let faults = FaultList::checkpoints(&c);
        let mut engine = ExactEngine::new(8);
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(result.improvement_factor() > 1.2);
    }

    #[test]
    fn undetectable_faults_are_excluded_not_fatal() {
        // `dead` reaches no output: observability 0, so p = 0 for the COP
        // engine and the optimizer must set those faults aside.
        let c = wrt_circuit::parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let mut engine = CopEngine::new();
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(!result.excluded.is_empty(), "dead-node faults have p = 0");
        assert!(result.final_length.is_finite());
    }

    #[test]
    fn starting_weights_are_respected() {
        let c = wide_and(5);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let config = OptimizeConfig {
            starting_weights: Some(vec![0.9; 5]),
            max_sweeps: 0,
            ..OptimizeConfig::default()
        };
        let result = optimize(&c, &faults, &mut engine, &config);
        assert_eq!(result.weights, vec![0.9; 5]);
        assert!((result.initial_length - result.final_length).abs() < 1e-9);
    }

    #[test]
    fn scoap_seed_populates_starting_weights_within_bounds() {
        let c = wide_and(12);
        let config = OptimizeConfig::default().scoap_seeded(&c);
        let weights = config.starting_weights.as_ref().expect("seed set");
        assert_eq!(weights.len(), c.num_inputs());
        let (lo, hi) = config.weight_bounds;
        assert!(weights.iter().all(|&w| (lo..=hi).contains(&w)));
        // A wide AND wants each input biased toward 1.
        assert!(weights.iter().all(|&w| w > 0.5), "{weights:?}");
    }

    #[test]
    fn scoap_seed_starts_no_worse_than_it_ends() {
        // The seeded start must still converge (the descent is free to
        // move away from it); on the wide AND the seed alone is already
        // near-optimal, so the initial length beats the 0.5 start's.
        let c = wide_and(12);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let seeded = optimize(
            &c,
            &faults,
            &mut engine,
            &OptimizeConfig::default().scoap_seeded(&c),
        );
        let plain = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(seeded.final_length <= seeded.initial_length + 1e-9);
        assert!(
            seeded.initial_length < plain.initial_length,
            "seeded start {} vs equiprobable start {}",
            seeded.initial_length,
            plain.initial_length
        );
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        let c = wide_and(2);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let config = OptimizeConfig {
            confidence: 1.5,
            ..OptimizeConfig::default()
        };
        let _ = optimize(&c, &faults, &mut engine, &config);
    }

    fn equality_circuit(width: usize) -> Circuit {
        // AND of per-bit XNORs: perfectly symmetric under x ↔ 1-x.
        let mut b = wrt_circuit::CircuitBuilder::named("eq");
        let xs: Vec<_> = (0..width).map(|i| b.input(format!("A{i}"))).collect();
        let ys: Vec<_> = (0..width).map(|i| b.input(format!("B{i}"))).collect();
        let bits: Vec<_> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| b.gate_auto(wrt_circuit::GateKind::Xnor, &[x, y]).unwrap())
            .collect();
        let eq = b.gate(wrt_circuit::GateKind::And, "EQ", &bits).unwrap();
        b.mark_output(eq);
        b.build().unwrap()
    }

    #[test]
    fn jitter_breaks_the_comparator_saddle() {
        let c = equality_circuit(8);
        let eq = c.node_id("EQ").unwrap();
        let faults = FaultList::from_faults(vec![wrt_fault::Fault::output(eq, false)]);

        // Without jitter: exactly 0.5 everywhere is a stationary point of
        // every coordinate subproblem; nothing moves.
        let frozen = OptimizeConfig {
            jitter: 0.0,
            ..OptimizeConfig::default()
        };
        let mut engine = CopEngine::new();
        let stuck = optimize(&c, &faults, &mut engine, &frozen);
        assert!(
            stuck.improvement_factor() < 1.01,
            "factor {}",
            stuck.improvement_factor()
        );

        // Default jitter unlocks the cascade toward a corner: each bit
        // pair aligns and P(EQ = 1) grows by orders of magnitude.
        let moving = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(
            moving.improvement_factor() > 100.0,
            "factor {}",
            moving.improvement_factor()
        );
        // Pairs agreed on a common corner.
        for i in 0..8 {
            let a = moving.weights[i];
            let b = moving.weights[8 + i];
            assert!(
                (a - 0.5) * (b - 0.5) > 0.0,
                "pair {i} disagrees: {a} vs {b}"
            );
        }
    }

    #[test]
    fn incremental_engine_reproduces_full_cop_trajectory() {
        // The optimizer is deterministic, so a bit-identical engine must
        // produce a bit-identical descent: same weights, same lengths,
        // same sweep history.
        use wrt_estimate::IncrementalCop;
        for circuit in [wide_and(8), equality_circuit(5)] {
            let faults = FaultList::checkpoints(&circuit);
            let config = OptimizeConfig::default();
            let mut full = CopEngine::new();
            let mut incremental = IncrementalCop::new();
            let reference = optimize(&circuit, &faults, &mut full, &config);
            let got = optimize(&circuit, &faults, &mut incremental, &config);
            assert_eq!(got.weights, reference.weights);
            assert_eq!(got.final_length.to_bits(), reference.final_length.to_bits());
            assert_eq!(got.sweeps, reference.sweeps);
            assert_eq!(got.engine_calls, reference.engine_calls);
        }
    }

    #[test]
    fn batched_pending_engine_reproduces_full_cop_trajectory() {
        // The pending-overlay engine defers commits across PREPARE
        // queries and materializes at ANALYSIS (or batch/budget) points
        // — the descent must still be bit-identical for every batch
        // size, since each answer is bit-identical.
        use wrt_estimate::IncrementalCop;
        for circuit in [wide_and(8), equality_circuit(5)] {
            let faults = FaultList::checkpoints(&circuit);
            let config = OptimizeConfig::default();
            let mut full = CopEngine::new();
            let reference = optimize(&circuit, &faults, &mut full, &config);
            for batch in [2, 4, 64] {
                let mut batched = IncrementalCop::new().with_commit_batch(batch);
                let got = optimize(&circuit, &faults, &mut batched, &config);
                assert_eq!(got.weights, reference.weights, "batch {batch}");
                assert_eq!(
                    got.final_length.to_bits(),
                    reference.final_length.to_bits(),
                    "batch {batch}"
                );
                assert_eq!(got.sweeps, reference.sweeps, "batch {batch}");
                assert_eq!(got.engine_calls, reference.engine_calls, "batch {batch}");
                let stats = batched.stats();
                assert_eq!(stats.incremental_commits, 0, "batch {batch} defers moves");
                assert!(stats.pending_moves > 0, "batch {batch}");
            }
        }
    }

    #[test]
    fn engine_call_budget_matches_structure() {
        // engine calls = 1 initial + per sweep (2·inputs + 1).
        let c = wide_and(3);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let config = OptimizeConfig {
            max_sweeps: 2,
            min_improvement: 0.0, // always continue to the cap
            ..OptimizeConfig::default()
        };
        let result = optimize(&c, &faults, &mut engine, &config);
        let sweeps = result.sweeps.len();
        assert_eq!(result.engine_calls, 1 + sweeps * (2 * 3 + 1));
    }
}

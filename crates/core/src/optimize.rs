//! `OPTIMIZE`: coordinate descent over all input probabilities (paper §4).
//!
//! The descent is exposed in two forms: [`optimize`], the original
//! run-to-completion entry point, and [`optimize_budgeted`], which bounds
//! the run with a [`Budget`] (checked at sweep boundaries), carries
//! partial results out as [`RunOutcome::Interrupted`], and supports
//! checkpoint/resume — the descent state at the last completed sweep is
//! serialized to a versioned [`Checkpoint`], and a resumed run continues
//! bit-identically to an uninterrupted one (the engine answers are
//! value-identical across engine instances, a property the incremental
//! estimator test suite pins down).

use wrt_circuit::Circuit;
use wrt_estimate::DetectionProbabilityEngine;
use wrt_fault::{Fault, FaultId, FaultList};
use wrt_robust::{Budget, BudgetExceeded, Checkpoint, CheckpointError, Progress, RunOutcome};

use crate::minimize::{minimize_coordinate, CoordinateProblem};
use crate::test_length::{required_test_length, sort_by_difficulty, TestLength};

/// Tuning knobs of [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// Confidence target for the random test (the paper's `a`); the
    /// objective threshold is `θ = −ln(confidence)`.
    pub confidence: f64,
    /// Stop when a sweep improves the test length by less than this
    /// relative fraction (the paper's user-defined `α`).
    pub min_improvement: f64,
    /// Hard cap on coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Number of consecutive non-improving sweeps tolerated before giving
    /// up.  Early sweeps on many-input circuits can zigzag (each
    /// coordinate reacts to a still-unsettled rest of the vector) before
    /// the descent locks in; the best vector seen is kept regardless.
    pub patience: usize,
    /// Weights are kept inside `[lo, hi]` (strictly inside `(0, 1)` so no
    /// primary-input fault becomes undetectable, cf. Lemma 2).
    pub weight_bounds: (f64, f64),
    /// Starting weights; `None` = equiprobable 0.5.
    pub starting_weights: Option<Vec<f64>>,
    /// Extra faults carried beyond the `NORMALIZE` relevant set, as slack
    /// against the paper's caveat that "the order of the detection
    /// probabilities may change during optimization".
    pub relevant_slack: usize,
    /// Under-relaxation factor in `(0, 1]`: each coordinate moves this
    /// fraction of the way from its current value to its 1-D optimum.
    /// `1.0` is the paper's plain update; smaller values damp the zigzag
    /// coordinate descent exhibits on wide comparator structures (every
    /// `x_i`'s optimum depends strongly on all the others).
    pub damping: f64,
    /// Deterministic symmetry-breaking perturbation applied to the default
    /// 0.5 starting vector (ignored when `starting_weights` is given).
    ///
    /// Comparator-style circuits are perfectly symmetric in `x ↔ 1 − x`,
    /// which makes the equiprobable point a stationary point of every
    /// 1-D subproblem: coordinate descent started at exactly 0.5 never
    /// moves.  A small per-input offset (sign chosen by hashing the input
    /// index) breaks the tie; the descent then amplifies it toward a
    /// proper relative optimum, cf. the strongly asymmetric weights in
    /// the paper's appendix.
    pub jitter: f64,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            confidence: 0.999,
            min_improvement: 0.01,
            max_sweeps: 48,
            weight_bounds: (0.02, 0.98),
            starting_weights: None,
            relevant_slack: 16,
            jitter: 0.05,
            patience: 6,
            damping: 0.5,
        }
    }
}

impl OptimizeConfig {
    /// `θ = −ln(confidence)`.
    pub fn theta(&self) -> f64 {
        -self.confidence.ln()
    }

    /// Replaces the starting weights with the SCOAP-derived seed
    /// ([`wrt_analyze::scoap_seed_weights`]): each input starts biased
    /// toward the non-controlling values its observable sinks want,
    /// instead of at jittered 0.5.  Opt-in — the descent still converges
    /// from the default start; the seed just begins it closer to the
    /// asymmetric optima wide AND/OR structures end up at.
    pub fn scoap_seeded(mut self, circuit: &Circuit) -> Self {
        let scoap = wrt_analyze::Scoap::compute(circuit);
        let (lo, hi) = self.weight_bounds;
        let seed = wrt_analyze::scoap_seed_weights(circuit, &scoap)
            .into_iter()
            .map(|w| w.clamp(lo, hi))
            .collect();
        self.starting_weights = Some(seed);
        self
    }
}

/// One record per completed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRecord {
    /// Test length after the sweep.
    pub test_length: f64,
    /// Relevant-fault count used during the sweep.
    pub num_relevant: usize,
}

/// The outcome of [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// One probability per primary input.
    pub weights: Vec<f64>,
    /// Required test length at the starting weights.
    pub initial_length: f64,
    /// Required test length at the optimized weights.
    pub final_length: f64,
    /// Per-sweep history.
    pub sweeps: Vec<SweepRecord>,
    /// Faults excluded because their detection probability was 0 at the
    /// starting distribution (redundancy candidates, cf. the paper's
    /// PROTEST redundancy proofs).
    pub excluded: Vec<FaultId>,
    /// Number of engine invocations performed.
    pub engine_calls: usize,
}

impl OptimizeResult {
    /// `initial_length / final_length` (> 1 when optimization helped).
    pub fn improvement_factor(&self) -> f64 {
        self.initial_length / self.final_length
    }
}

/// Computes optimized input probabilities (the paper's `OPTIMIZE`).
///
/// Structure, following §4:
///
/// ```text
/// X := starting vector; ANALYSIS; SORT; NORMALIZE(N, nf);
/// while the sweep improves N by more than α:
///     for every primary input i:
///         PREPARE  (engine at X,0|i and X,1|i — relevant faults only)
///         MINIMIZE (Newton on the 1-D convex objective)
///         x_i := y
///     ANALYSIS; SORT; NORMALIZE(N, nf)
/// ```
///
/// The best weight vector seen (by test length) is returned, so a sweep
/// that overshoots on estimated probabilities cannot make the result
/// worse than its predecessor.
///
/// # Panics
///
/// Panics if `config.starting_weights` is given with the wrong length, or
/// if the confidence is not in `(0, 1)`.
pub fn optimize(
    circuit: &Circuit,
    faults: &FaultList,
    engine: &mut dyn DetectionProbabilityEngine,
    config: &OptimizeConfig,
) -> OptimizeResult {
    match init_descent(circuit, faults, engine, config) {
        Err(hopeless) => hopeless,
        Ok((mut descent, live_list)) => {
            run_sweeps(circuit, &live_list, engine, config, &mut descent, None);
            descent.into_result()
        }
    }
}

/// The full mutable state of the coordinate descent at a sweep boundary —
/// everything a checkpoint must capture for a bit-identical resume.
struct Descent {
    weights: Vec<f64>,
    best_weights: Vec<f64>,
    best_length: f64,
    n_current: f64,
    num_relevant: usize,
    stale_sweeps: usize,
    engine_calls: usize,
    initial_length: f64,
    sweeps: Vec<SweepRecord>,
    excluded: Vec<FaultId>,
    dprobs: Vec<f64>,
}

/// Runs the initial ANALYSIS and builds the starting descent state plus
/// the live (detectable) fault list.  `Err` carries the early return for
/// the hopeless case (some fault undetectable at the interior start).
fn init_descent(
    circuit: &Circuit,
    faults: &FaultList,
    engine: &mut dyn DetectionProbabilityEngine,
    config: &OptimizeConfig,
) -> Result<(Descent, FaultList), OptimizeResult> {
    assert!(
        config.confidence > 0.0 && config.confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let theta = config.theta();
    let num_inputs = circuit.num_inputs();
    let weights = match &config.starting_weights {
        Some(w) => {
            assert_eq!(w.len(), num_inputs, "one starting weight per input");
            w.clone()
        }
        None => (0..num_inputs)
            .map(|i| 0.5 + config.jitter * jitter_sign(i))
            .collect(),
    };
    let mut engine_calls = 0usize;

    // Initial ANALYSIS: identify undetectable faults and the baseline N.
    let initial_probs = engine.estimate(circuit, faults, &weights);
    engine_calls += 1;
    let mut excluded = Vec::new();
    let mut live: Vec<(FaultId, Fault)> = Vec::new();
    for ((id, fault), &p) in faults.iter().zip(&initial_probs) {
        if p <= 0.0 {
            excluded.push(id);
        } else {
            live.push((id, fault));
        }
    }
    let live_list: FaultList = live.iter().map(|&(_, f)| f).collect();
    let dprobs: Vec<f64> = initial_probs.iter().copied().filter(|&p| p > 0.0).collect();

    let initial = required_test_length(&dprobs, theta);
    let initial_length = initial.patterns();
    let n_current = match initial {
        TestLength::Patterns { n, .. } => n,
        TestLength::Infinite => {
            // Nothing the optimizer can do: every fault list member is
            // undetectable under the interior starting point.
            return Err(OptimizeResult {
                weights,
                initial_length,
                final_length: initial_length,
                sweeps: Vec::new(),
                excluded,
                engine_calls,
            });
        }
    };
    let descent = Descent {
        best_weights: weights.clone(),
        weights,
        best_length: initial_length,
        n_current,
        num_relevant: initial.num_relevant(),
        stale_sweeps: 0,
        engine_calls,
        initial_length,
        sweeps: Vec::new(),
        excluded,
        dprobs,
    };
    Ok((descent, live_list))
}

/// Runs coordinate-descent sweeps until the config's termination
/// criterion — or, when a budget is given, until a check-in at a sweep
/// boundary trips (the tripped axis is returned; the descent state is
/// left at the last completed sweep).  The optimizer's eval unit is
/// engine calls.
fn run_sweeps(
    circuit: &Circuit,
    live_list: &FaultList,
    engine: &mut dyn DetectionProbabilityEngine,
    config: &OptimizeConfig,
    d: &mut Descent,
    budget: Option<&Budget>,
) -> Option<BudgetExceeded> {
    let theta = config.theta();
    let num_inputs = circuit.num_inputs();
    let (lo, hi) = config.weight_bounds;
    while d.sweeps.len() < config.max_sweeps {
        if let Some(budget) = budget {
            if let Err(reason) = budget.check_in(d.engine_calls as u64, 0) {
                return Some(reason);
            }
        }
        // Relevant subset: hardest `nf + slack` faults at the current X.
        let order = sort_by_difficulty(&d.dprobs);
        let take = (d.num_relevant + config.relevant_slack).min(order.len());
        let relevant_ids: Vec<usize> = order[..take].to_vec();
        let relevant_list: FaultList = relevant_ids
            .iter()
            .map(|&k| live_list.fault(wrt_fault::FaultId::from_index(k)))
            .collect();

        for i in 0..num_inputs {
            // PREPARE: engine at x_i = 0 and x_i = 1, both boundary points
            // in one engine call so parallel engines (e.g. the sharded
            // Monte-Carlo simulator) can reuse their fan-out machinery and
            // incremental engines (IncrementalCop) can restrict the work
            // to input i's fanout cone.
            let saved = d.weights[i];
            let (p0, p1) =
                engine.estimate_coordinate_pair(circuit, &relevant_list, &d.weights, i);
            d.engine_calls += 2;
            // MINIMIZE (with optional under-relaxation).
            let problem = CoordinateProblem::new(p0, p1, d.n_current);
            let optimum = minimize_coordinate(&problem, saved, lo, hi);
            d.weights[i] =
                saved + config.damping.clamp(f64::MIN_POSITIVE, 1.0) * (optimum - saved);
        }

        // ANALYSIS + SORT + NORMALIZE at the new X.
        //
        // Faults in the live list are detectable at every interior X, so a
        // zero estimate here is floating-point absorption (e.g. an OR
        // chain's signal probability rounding to exactly 1.0 makes the
        // s-a-1 activation exactly 0).  Clamp to a representable floor so
        // the sweep records a huge-but-finite length and the descent can
        // recover instead of aborting.
        let probs = engine.estimate(circuit, live_list, &d.weights);
        d.engine_calls += 1;
        d.dprobs = probs.into_iter().map(|p| p.max(1e-300)).collect();
        let sweep_length = match required_test_length(&d.dprobs, theta) {
            TestLength::Patterns { n, num_relevant: nf } => {
                d.n_current = n;
                d.num_relevant = nf;
                n
            }
            // Beyond NORMALIZE's search range (> 10^18 patterns): a wild
            // overshoot sweep.  Keep the previous N for MINIMIZE and let
            // the patience counter decide.
            TestLength::Infinite => f64::INFINITY,
        };
        d.sweeps.push(SweepRecord {
            test_length: sweep_length,
            num_relevant: d.num_relevant,
        });
        if sweep_length < d.best_length * (1.0 - config.min_improvement) {
            d.stale_sweeps = 0;
        } else {
            d.stale_sweeps += 1;
        }
        if sweep_length < d.best_length {
            d.best_length = sweep_length;
            d.best_weights = d.weights.clone();
        }
        // Termination: too many sweeps without material improvement of
        // the best test length (the paper's α criterion, with patience).
        if d.stale_sweeps > config.patience {
            break;
        }
    }
    None
}

impl Descent {
    fn into_result(self) -> OptimizeResult {
        OptimizeResult {
            weights: self.best_weights,
            initial_length: self.initial_length,
            final_length: self.best_length,
            sweeps: self.sweeps,
            excluded: self.excluded,
            engine_calls: self.engine_calls,
        }
    }

    /// Serializes the state at the current sweep boundary.
    fn to_checkpoint(&self, fingerprint: u64, circuit: &Circuit) -> Checkpoint {
        let mut c = Checkpoint::new(OPTIMIZE_CHECKPOINT_KIND);
        c.put("fingerprint", format!("{fingerprint:016x}"));
        c.put_circuit_identity(circuit.structural_digest(), circuit.uid());
        c.put("num_inputs", self.weights.len());
        c.put_f64_slice_bits("weights", &self.weights);
        c.put_f64_slice_bits("best_weights", &self.best_weights);
        c.put_f64_bits("best_length", self.best_length);
        c.put_f64_bits("n_current", self.n_current);
        c.put_f64_bits("initial_length", self.initial_length);
        c.put("num_relevant", self.num_relevant);
        c.put("stale_sweeps", self.stale_sweeps);
        c.put("engine_calls", self.engine_calls);
        let lengths: Vec<f64> = self.sweeps.iter().map(|s| s.test_length).collect();
        let relevants: Vec<u64> = self.sweeps.iter().map(|s| s.num_relevant as u64).collect();
        c.put_f64_slice_bits("sweep_lengths", &lengths);
        c.put_u64_slice("sweep_relevants", &relevants);
        let excluded: Vec<u64> = self.excluded.iter().map(|id| id.index() as u64).collect();
        c.put_u64_slice("excluded", &excluded);
        c.put_f64_slice_bits("dprobs", &self.dprobs);
        c
    }

    /// Rebuilds the state from a checkpoint written by
    /// [`Descent::to_checkpoint`], validating the run fingerprint.
    fn from_checkpoint(
        ckpt: &Checkpoint,
        circuit: &Circuit,
        fingerprint: u64,
    ) -> Result<Descent, CheckpointError> {
        let recorded = ckpt.get("fingerprint")?;
        if recorded != format!("{fingerprint:016x}") {
            return Err(CheckpointError::Corrupt {
                reason: format!(
                    "checkpoint fingerprint {recorded} does not match this circuit/fault-list/\
                     config combination ({fingerprint:016x}); resume must use the original inputs"
                ),
            });
        }
        // The fingerprint only hashes circuit *counts*; the structural
        // digest (when recorded) pins the resume to the exact netlist.
        ckpt.validate_circuit_digest(circuit.structural_digest())?;
        let num_inputs = circuit.num_inputs();
        let stored_inputs: usize = ckpt.get_parse("num_inputs")?;
        if stored_inputs != num_inputs {
            return Err(CheckpointError::Corrupt {
                reason: format!(
                    "checkpoint is for a {stored_inputs}-input circuit, got {num_inputs}"
                ),
            });
        }
        let lengths = ckpt.get_f64_slice_bits("sweep_lengths")?;
        let relevants = ckpt.get_u64_slice("sweep_relevants")?;
        if lengths.len() != relevants.len() {
            return Err(CheckpointError::Corrupt {
                reason: "sweep history lengths disagree".to_string(),
            });
        }
        let sweeps = lengths
            .into_iter()
            .zip(relevants)
            .map(|(test_length, nf)| SweepRecord {
                test_length,
                num_relevant: nf as usize,
            })
            .collect();
        Ok(Descent {
            weights: ckpt.get_f64_slice_bits("weights")?,
            best_weights: ckpt.get_f64_slice_bits("best_weights")?,
            best_length: ckpt.get_f64_bits("best_length")?,
            n_current: ckpt.get_f64_bits("n_current")?,
            num_relevant: ckpt.get_parse("num_relevant")?,
            stale_sweeps: ckpt.get_parse("stale_sweeps")?,
            engine_calls: ckpt.get_parse("engine_calls")?,
            initial_length: ckpt.get_f64_bits("initial_length")?,
            sweeps,
            excluded: ckpt
                .get_u64_slice("excluded")?
                .into_iter()
                .map(|i| FaultId::from_index(i as usize))
                .collect(),
            dprobs: ckpt.get_f64_slice_bits("dprobs")?,
        })
    }
}

/// The checkpoint `kind` tag of optimizer descent state.
pub const OPTIMIZE_CHECKPOINT_KIND: &str = "optimize";

/// Fingerprint of everything a resume must hold fixed: circuit shape,
/// fault list, and the full optimizer configuration.  FNV-1a over a
/// canonical rendering; float fields hash by bit pattern.
fn run_fingerprint(circuit: &Circuit, faults: &FaultList, config: &OptimizeConfig) -> u64 {
    let mut text = format!(
        "inputs={} nodes={} faults={} confidence={:016x} min_improvement={:016x} \
         max_sweeps={} patience={} lo={:016x} hi={:016x} slack={} damping={:016x} \
         jitter={:016x}",
        circuit.num_inputs(),
        circuit.num_nodes(),
        faults.len(),
        config.confidence.to_bits(),
        config.min_improvement.to_bits(),
        config.max_sweeps,
        config.patience,
        config.weight_bounds.0.to_bits(),
        config.weight_bounds.1.to_bits(),
        config.relevant_slack,
        config.damping.to_bits(),
        config.jitter.to_bits(),
    );
    if let Some(w) = &config.starting_weights {
        for x in w {
            text.push_str(&format!(" {:016x}", x.to_bits()));
        }
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A budgeted optimizer run: the (possibly partial) result, plus — when
/// the run was interrupted — the descent checkpoint to persist for
/// `--resume`.
#[derive(Debug)]
pub struct BudgetedOptimize {
    /// The descent outcome; `Interrupted` carries the best-so-far result.
    pub outcome: RunOutcome<OptimizeResult>,
    /// Resume state at the last completed sweep (`Some` iff interrupted).
    pub checkpoint: Option<Checkpoint>,
}

/// [`optimize`] under a [`Budget`], with checkpoint/resume.
///
/// The budget is checked at sweep boundaries; its eval axis counts
/// *engine calls* (the optimizer's canonical work unit, machine- and
/// engine-independent).  On interruption the outcome carries the best
/// result over the completed sweeps plus a checkpoint of the descent
/// state; passing that checkpoint back as `resume` continues the descent
/// bit-identically to a run that was never interrupted.
///
/// # Errors
///
/// [`CheckpointError`] when `resume` does not validate against this
/// circuit/fault-list/config combination (wrong kind, wrong fingerprint,
/// or damaged fields).  The run performs no work in that case.
///
/// # Panics
///
/// As [`optimize`] (bad confidence or starting-weight length).
pub fn optimize_budgeted(
    circuit: &Circuit,
    faults: &FaultList,
    engine: &mut dyn DetectionProbabilityEngine,
    config: &OptimizeConfig,
    budget: &Budget,
    resume: Option<&Checkpoint>,
) -> Result<BudgetedOptimize, CheckpointError> {
    let fingerprint = run_fingerprint(circuit, faults, config);
    let (mut descent, live_list) = match resume {
        Some(ckpt) => {
            if ckpt.kind() != OPTIMIZE_CHECKPOINT_KIND {
                return Err(CheckpointError::WrongKind {
                    expected: OPTIMIZE_CHECKPOINT_KIND.to_string(),
                    found: ckpt.kind().to_string(),
                });
            }
            let descent = Descent::from_checkpoint(ckpt, circuit, fingerprint)?;
            // The live list is derived state: the original fault list
            // minus the checkpointed exclusions, in list order.
            let excluded: std::collections::HashSet<FaultId> =
                descent.excluded.iter().copied().collect();
            let live_list: FaultList = faults
                .iter()
                .filter(|(id, _)| !excluded.contains(id))
                .map(|(_, f)| f)
                .collect();
            if live_list.len() != descent.dprobs.len() {
                return Err(CheckpointError::Corrupt {
                    reason: format!(
                        "checkpoint carries {} detection probabilities for {} live faults",
                        descent.dprobs.len(),
                        live_list.len()
                    ),
                });
            }
            (descent, live_list)
        }
        None => match init_descent(circuit, faults, engine, config) {
            Err(hopeless) => {
                return Ok(BudgetedOptimize {
                    outcome: RunOutcome::Complete(hopeless),
                    checkpoint: None,
                })
            }
            Ok(ready) => ready,
        },
    };
    let tripped = run_sweeps(circuit, &live_list, engine, config, &mut descent, Some(budget));
    match tripped {
        None => Ok(BudgetedOptimize {
            outcome: RunOutcome::Complete(descent.into_result()),
            checkpoint: None,
        }),
        Some(reason) => {
            let progress = Progress {
                done: descent.sweeps.len() as u64,
                total: Some(config.max_sweeps as u64),
                unit: "sweeps",
            };
            let checkpoint = descent.to_checkpoint(fingerprint, circuit);
            Ok(BudgetedOptimize {
                outcome: RunOutcome::Interrupted {
                    partial: descent.into_result(),
                    reason,
                    progress,
                },
                checkpoint: Some(checkpoint),
            })
        }
    }
}

/// Deterministic ±1 from a SplitMix64-style hash of the input index.
fn jitter_sign(i: usize) -> f64 {
    let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    if (z ^ (z >> 31)) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_estimate::{CopEngine, ExactEngine};

    fn wide_and(k: usize) -> Circuit {
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..k {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        wrt_circuit::parse_bench(&src).unwrap()
    }

    #[test]
    fn wide_and_drives_weights_up() {
        let c = wide_and(10);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        // The hardest fault (y s-a-0 class needs all-ones) wants x_i → 1,
        // but each x_i s-a-1 needs x_i = 0 with the others 1, pulling back
        // from the boundary: weights end high but interior.
        for (i, &w) in result.weights.iter().enumerate() {
            assert!(w > 0.6, "weight {i} = {w}");
            assert!(w < 0.98 + 1e-9, "weight {i} = {w}");
        }
        assert!(
            result.improvement_factor() > 10.0,
            "improvement {}",
            result.improvement_factor()
        );
    }

    #[test]
    fn optimized_length_never_worse_than_initial() {
        let c = wide_and(6);
        let faults = FaultList::full(&c);
        let mut engine = CopEngine::new();
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(result.final_length <= result.initial_length);
        assert!(!result.sweeps.is_empty());
    }

    #[test]
    fn exact_engine_small_circuit() {
        // 4-input AND with the exact engine: ground-truth optimization.
        let c = wide_and(4);
        let faults = FaultList::checkpoints(&c);
        let mut engine = ExactEngine::new(8);
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(result.improvement_factor() > 1.2);
    }

    #[test]
    fn undetectable_faults_are_excluded_not_fatal() {
        // `dead` reaches no output: observability 0, so p = 0 for the COP
        // engine and the optimizer must set those faults aside.
        let c = wrt_circuit::parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let mut engine = CopEngine::new();
        let result = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(!result.excluded.is_empty(), "dead-node faults have p = 0");
        assert!(result.final_length.is_finite());
    }

    #[test]
    fn starting_weights_are_respected() {
        let c = wide_and(5);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let config = OptimizeConfig {
            starting_weights: Some(vec![0.9; 5]),
            max_sweeps: 0,
            ..OptimizeConfig::default()
        };
        let result = optimize(&c, &faults, &mut engine, &config);
        assert_eq!(result.weights, vec![0.9; 5]);
        assert!((result.initial_length - result.final_length).abs() < 1e-9);
    }

    #[test]
    fn scoap_seed_populates_starting_weights_within_bounds() {
        let c = wide_and(12);
        let config = OptimizeConfig::default().scoap_seeded(&c);
        let weights = config.starting_weights.as_ref().expect("seed set");
        assert_eq!(weights.len(), c.num_inputs());
        let (lo, hi) = config.weight_bounds;
        assert!(weights.iter().all(|&w| (lo..=hi).contains(&w)));
        // A wide AND wants each input biased toward 1.
        assert!(weights.iter().all(|&w| w > 0.5), "{weights:?}");
    }

    #[test]
    fn scoap_seed_starts_no_worse_than_it_ends() {
        // The seeded start must still converge (the descent is free to
        // move away from it); on the wide AND the seed alone is already
        // near-optimal, so the initial length beats the 0.5 start's.
        let c = wide_and(12);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let seeded = optimize(
            &c,
            &faults,
            &mut engine,
            &OptimizeConfig::default().scoap_seeded(&c),
        );
        let plain = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(seeded.final_length <= seeded.initial_length + 1e-9);
        assert!(
            seeded.initial_length < plain.initial_length,
            "seeded start {} vs equiprobable start {}",
            seeded.initial_length,
            plain.initial_length
        );
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        let c = wide_and(2);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let config = OptimizeConfig {
            confidence: 1.5,
            ..OptimizeConfig::default()
        };
        let _ = optimize(&c, &faults, &mut engine, &config);
    }

    fn equality_circuit(width: usize) -> Circuit {
        // AND of per-bit XNORs: perfectly symmetric under x ↔ 1-x.
        let mut b = wrt_circuit::CircuitBuilder::named("eq");
        let xs: Vec<_> = (0..width).map(|i| b.input(format!("A{i}"))).collect();
        let ys: Vec<_> = (0..width).map(|i| b.input(format!("B{i}"))).collect();
        let bits: Vec<_> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| b.gate_auto(wrt_circuit::GateKind::Xnor, &[x, y]).unwrap())
            .collect();
        let eq = b.gate(wrt_circuit::GateKind::And, "EQ", &bits).unwrap();
        b.mark_output(eq);
        b.build().unwrap()
    }

    #[test]
    fn jitter_breaks_the_comparator_saddle() {
        let c = equality_circuit(8);
        let eq = c.node_id("EQ").unwrap();
        let faults = FaultList::from_faults(vec![wrt_fault::Fault::output(eq, false)]);

        // Without jitter: exactly 0.5 everywhere is a stationary point of
        // every coordinate subproblem; nothing moves.
        let frozen = OptimizeConfig {
            jitter: 0.0,
            ..OptimizeConfig::default()
        };
        let mut engine = CopEngine::new();
        let stuck = optimize(&c, &faults, &mut engine, &frozen);
        assert!(
            stuck.improvement_factor() < 1.01,
            "factor {}",
            stuck.improvement_factor()
        );

        // Default jitter unlocks the cascade toward a corner: each bit
        // pair aligns and P(EQ = 1) grows by orders of magnitude.
        let moving = optimize(&c, &faults, &mut engine, &OptimizeConfig::default());
        assert!(
            moving.improvement_factor() > 100.0,
            "factor {}",
            moving.improvement_factor()
        );
        // Pairs agreed on a common corner.
        for i in 0..8 {
            let a = moving.weights[i];
            let b = moving.weights[8 + i];
            assert!(
                (a - 0.5) * (b - 0.5) > 0.0,
                "pair {i} disagrees: {a} vs {b}"
            );
        }
    }

    #[test]
    fn incremental_engine_reproduces_full_cop_trajectory() {
        // The optimizer is deterministic, so a bit-identical engine must
        // produce a bit-identical descent: same weights, same lengths,
        // same sweep history.
        use wrt_estimate::IncrementalCop;
        for circuit in [wide_and(8), equality_circuit(5)] {
            let faults = FaultList::checkpoints(&circuit);
            let config = OptimizeConfig::default();
            let mut full = CopEngine::new();
            let mut incremental = IncrementalCop::new();
            let reference = optimize(&circuit, &faults, &mut full, &config);
            let got = optimize(&circuit, &faults, &mut incremental, &config);
            assert_eq!(got.weights, reference.weights);
            assert_eq!(got.final_length.to_bits(), reference.final_length.to_bits());
            assert_eq!(got.sweeps, reference.sweeps);
            assert_eq!(got.engine_calls, reference.engine_calls);
        }
    }

    #[test]
    fn batched_pending_engine_reproduces_full_cop_trajectory() {
        // The pending-overlay engine defers commits across PREPARE
        // queries and materializes at ANALYSIS (or batch/budget) points
        // — the descent must still be bit-identical for every batch
        // size, since each answer is bit-identical.
        use wrt_estimate::IncrementalCop;
        for circuit in [wide_and(8), equality_circuit(5)] {
            let faults = FaultList::checkpoints(&circuit);
            let config = OptimizeConfig::default();
            let mut full = CopEngine::new();
            let reference = optimize(&circuit, &faults, &mut full, &config);
            for batch in [2, 4, 64] {
                let mut batched = IncrementalCop::new().with_commit_batch(batch);
                let got = optimize(&circuit, &faults, &mut batched, &config);
                assert_eq!(got.weights, reference.weights, "batch {batch}");
                assert_eq!(
                    got.final_length.to_bits(),
                    reference.final_length.to_bits(),
                    "batch {batch}"
                );
                assert_eq!(got.sweeps, reference.sweeps, "batch {batch}");
                assert_eq!(got.engine_calls, reference.engine_calls, "batch {batch}");
                let stats = batched.stats();
                assert_eq!(stats.incremental_commits, 0, "batch {batch} defers moves");
                assert!(stats.pending_moves > 0, "batch {batch}");
            }
        }
    }

    #[test]
    fn engine_call_budget_matches_structure() {
        // engine calls = 1 initial + per sweep (2·inputs + 1).
        let c = wide_and(3);
        let faults = FaultList::checkpoints(&c);
        let mut engine = CopEngine::new();
        let config = OptimizeConfig {
            max_sweeps: 2,
            min_improvement: 0.0, // always continue to the cap
            ..OptimizeConfig::default()
        };
        let result = optimize(&c, &faults, &mut engine, &config);
        let sweeps = result.sweeps.len();
        assert_eq!(result.engine_calls, 1 + sweeps * (2 * 3 + 1));
    }

    fn assert_same_result(got: &OptimizeResult, reference: &OptimizeResult, what: &str) {
        assert_eq!(got.weights, reference.weights, "{what}: weights");
        assert_eq!(
            got.final_length.to_bits(),
            reference.final_length.to_bits(),
            "{what}: final length"
        );
        assert_eq!(
            got.initial_length.to_bits(),
            reference.initial_length.to_bits(),
            "{what}: initial length"
        );
        assert_eq!(got.sweeps, reference.sweeps, "{what}: sweep history");
        assert_eq!(got.excluded, reference.excluded, "{what}: exclusions");
        assert_eq!(got.engine_calls, reference.engine_calls, "{what}: calls");
    }

    #[test]
    fn budgeted_with_unlimited_budget_matches_optimize_bit_for_bit() {
        let c = wide_and(8);
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig::default();
        let mut engine = CopEngine::new();
        let reference = optimize(&c, &faults, &mut engine, &config);
        let mut engine = CopEngine::new();
        let run = optimize_budgeted(
            &c,
            &faults,
            &mut engine,
            &config,
            &wrt_robust::Budget::unlimited(),
            None,
        )
        .expect("no checkpoint involved");
        assert!(run.checkpoint.is_none());
        match run.outcome {
            RunOutcome::Complete(got) => assert_same_result(&got, &reference, "unbudgeted"),
            RunOutcome::Interrupted { .. } => panic!("unlimited budget must not interrupt"),
        }
    }

    #[test]
    fn resume_after_eval_interruption_is_bit_identical_to_uninterrupted() {
        // Interrupt the descent after k sweeps via the eval (= engine
        // call) axis, round-trip the checkpoint through its on-disk text,
        // and resume with a *fresh* engine: the completed run must match
        // the never-interrupted reference bit for bit.
        let c = wide_and(8);
        let num_inputs = 8;
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig {
            min_improvement: 0.0, // keep sweeping to the cap
            max_sweeps: 6,
            ..OptimizeConfig::default()
        };
        let mut engine = CopEngine::new();
        let reference = optimize(&c, &faults, &mut engine, &config);
        assert!(reference.sweeps.len() >= 3, "need room to interrupt");

        for k in [0usize, 1, 2] {
            // engine calls after k sweeps = 1 + k·(2·inputs + 1); the
            // check-in at the start of sweep k+1 sees exactly that value.
            let calls_after_k = 1 + k * (2 * num_inputs + 1);
            let budget = wrt_robust::Budget::unlimited().with_max_evals(calls_after_k as u64);
            let mut engine = CopEngine::new();
            let run = optimize_budgeted(&c, &faults, &mut engine, &config, &budget, None)
                .expect("fresh run");
            let ckpt = run.checkpoint.expect("interrupted run must checkpoint");
            match &run.outcome {
                RunOutcome::Interrupted {
                    partial,
                    reason,
                    progress,
                } => {
                    assert_eq!(*reason, BudgetExceeded::Evals);
                    assert_eq!(progress.done, k as u64);
                    assert_eq!(progress.unit, "sweeps");
                    assert_eq!(partial.sweeps.len(), k);
                }
                RunOutcome::Complete(_) => panic!("budget {calls_after_k} must interrupt"),
            }

            // Simulate the disk round trip.
            let ckpt = Checkpoint::parse(&ckpt.render(), OPTIMIZE_CHECKPOINT_KIND)
                .expect("checkpoint round-trips");

            let mut fresh = CopEngine::new();
            let resumed = optimize_budgeted(
                &c,
                &faults,
                &mut fresh,
                &config,
                &wrt_robust::Budget::unlimited(),
                Some(&ckpt),
            )
            .expect("resume validates");
            match resumed.outcome {
                RunOutcome::Complete(got) => {
                    assert_same_result(&got, &reference, &format!("resume after sweep {k}"));
                }
                RunOutcome::Interrupted { .. } => panic!("resumed run must complete"),
            }
        }
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_a_different_run() {
        let c = wide_and(6);
        let faults = FaultList::checkpoints(&c);
        let config = OptimizeConfig {
            min_improvement: 0.0,
            max_sweeps: 4,
            ..OptimizeConfig::default()
        };
        let budget = wrt_robust::Budget::unlimited().with_max_evals(1);
        let mut engine = CopEngine::new();
        let run = optimize_budgeted(&c, &faults, &mut engine, &config, &budget, None).unwrap();
        let ckpt = run.checkpoint.expect("interrupted");

        // Same checkpoint, different config: the fingerprint must refuse.
        let other_config = OptimizeConfig {
            max_sweeps: 9,
            ..config.clone()
        };
        let mut engine = CopEngine::new();
        let err = optimize_budgeted(
            &c,
            &faults,
            &mut engine,
            &other_config,
            &wrt_robust::Budget::unlimited(),
            Some(&ckpt),
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");

        // A structural twin — same input/node/fault counts, different
        // gates — slips past the count-only fingerprint; the recorded
        // structural digest must refuse it.
        let mut src = String::from("OUTPUT(y)\n");
        for i in 0..6 {
            src.push_str(&format!("INPUT(x{i})\n"));
        }
        src.push_str("y = OR(x0, x1, x2, x3, x4, x5)\n");
        let twin = wrt_circuit::parse_bench(&src).unwrap();
        let twin_faults = FaultList::checkpoints(&twin);
        assert_eq!(twin_faults.len(), faults.len(), "twin must match counts");
        assert_ne!(twin.structural_digest(), c.structural_digest());
        let mut engine = CopEngine::new();
        let err = optimize_budgeted(
            &twin,
            &twin_faults,
            &mut engine,
            &config,
            &wrt_robust::Budget::unlimited(),
            Some(&ckpt),
        )
        .unwrap_err();
        assert!(err.to_string().contains("structural digest"), "{err}");

        // A checkpoint of some other subsystem must be a WrongKind error.
        let foreign = Checkpoint::new("atpg");
        let mut engine = CopEngine::new();
        let err = optimize_budgeted(
            &c,
            &faults,
            &mut engine,
            &config,
            &wrt_robust::Budget::unlimited(),
            Some(&foreign),
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::WrongKind { .. }), "{err}");
    }
}

//! `SORT` and `NORMALIZE`: the necessary test length and the relevant
//! fault subset (paper §4).

use crate::objective::objective_value;

/// Result of `NORMALIZE`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TestLength {
    /// The minimal pattern count `N` reaching the confidence target,
    /// together with `nf`, the number of *relevant* hardest faults that
    /// contribute numerically to `J_N` (observation (1) of §4).
    Patterns {
        /// Minimal number of random patterns.
        n: f64,
        /// Number of relevant (hardest) faults.
        num_relevant: usize,
    },
    /// No finite test length exists: some fault has detection
    /// probability 0 under the given distribution.
    Infinite,
}

impl TestLength {
    /// The pattern count, or `f64::INFINITY`.
    pub fn patterns(&self) -> f64 {
        match *self {
            TestLength::Patterns { n, .. } => n,
            TestLength::Infinite => f64::INFINITY,
        }
    }

    /// The relevant-fault count (0 for infinite lengths).
    pub fn num_relevant(&self) -> usize {
        match *self {
            TestLength::Patterns { num_relevant, .. } => num_relevant,
            TestLength::Infinite => 0,
        }
    }
}

/// `SORT(F)`: indices of `dprobs` ordered by increasing detection
/// probability (hardest first), ties broken by index for determinism.
pub fn sort_by_difficulty(dprobs: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..dprobs.len()).collect();
    order.sort_by(|&a, &b| {
        dprobs[a]
            .partial_cmp(&dprobs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// `NORMALIZE`: the minimal `N` with `J_N(X) ≤ θ`, where
/// `θ = −ln(confidence target)`.
///
/// Uses exponential search followed by bisection on the monotone
/// `J_N`; the relevant-fault count is the number of faults whose
/// individual term still matters at the resulting `N` (the paper's
/// observation that `exp(−10·N·p_g)` drowns next to `exp(−N·p_g)`).
///
/// # Panics
///
/// Panics if `theta` is not strictly positive.
///
/// # Example
///
/// ```
/// use wrt_core::required_test_length;
/// // One fault with p = 0.01, 99.9% confidence:
/// let tl = required_test_length(&[0.01], 1e-3);
/// // N ≈ ln(1/θ)/p ≈ 691.
/// assert!((tl.patterns() - 691.0).abs() < 5.0);
/// ```
pub fn required_test_length(dprobs: &[f64], theta: f64) -> TestLength {
    assert!(theta > 0.0, "confidence threshold must be positive");
    if dprobs.is_empty() {
        return TestLength::Patterns {
            n: 0.0,
            num_relevant: 0,
        };
    }
    if dprobs.iter().any(|&p| p <= 0.0) {
        return TestLength::Infinite;
    }
    if objective_value(dprobs, 0.0) <= theta {
        // |F| ≤ θ already at N = 0 (degenerate thresholds).
        return TestLength::Patterns {
            n: 0.0,
            num_relevant: 0,
        };
    }

    // Exponential search for an upper bound.
    let mut hi = 1.0f64;
    while objective_value(dprobs, hi) > theta {
        hi *= 2.0;
        if hi > 1e18 {
            // Numerically indistinguishable from undetectable.
            return TestLength::Infinite;
        }
    }
    let mut lo = hi / 2.0;
    // Bisection to (relative) precision; N is conceptually an integer but
    // at 10^11 scales a relative tolerance is the honest answer.
    for _ in 0..200 {
        if hi - lo <= 1.0 || (hi - lo) / hi < 1e-12 {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if objective_value(dprobs, mid) > theta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let n = hi.ceil();

    // Relevant faults: individual contribution at N still above a drowned
    // threshold relative to θ.  A fault is relevant when its exponent is
    // within ln(10^6) of the hardest fault's, i.e.
    // `n·p ≤ n·hardest + ln(10^6)`.  That textbook form is computed here
    // as `n·(p − hardest) ≤ ln(10^6)`: mathematically identical, but the
    // difference keeps the product finite (each factor is bounded) where
    // `n·hardest` could overflow to `inf` for huge N and then poison the
    // comparison (`inf + ln(10^6) = inf`, and a non-finite p would turn
    // it into `inf − inf = NaN`, which compares false and silently drops
    // faults).  Non-finite excesses (a caller-supplied `inf`/NaN
    // probability) are explicitly irrelevant rather than
    // comparison-order-dependent.
    let h = hardest(dprobs);
    let drown_margin = (1e6f64).ln();
    let num_relevant = dprobs
        .iter()
        .filter(|&&p| {
            let excess = n * (p - h); // ≥ 0: h is the minimum
            excess.is_finite() && excess <= drown_margin
        })
        .count();
    TestLength::Patterns {
        n,
        num_relevant: num_relevant.max(1),
    }
}

fn hardest(dprobs: &[f64]) -> f64 {
    dprobs.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_closed_form() {
        // J_N = exp(-N p) = θ  =>  N = ln(1/θ)/p.
        for (p, theta) in [(0.01, 1e-3), (1e-6, 1e-3), (0.5, 0.05)] {
            let tl = required_test_length(&[p], theta);
            let expect = (1.0 / theta).ln() / p;
            let got = tl.patterns();
            assert!(
                (got - expect).abs() <= expect * 1e-6 + 2.0,
                "p={p}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn hardest_fault_dominates() {
        // Adding easy faults barely changes N.
        let hard_only = required_test_length(&[1e-5], 1e-3).patterns();
        let with_easy =
            required_test_length(&[1e-5, 0.3, 0.4, 0.25, 0.5], 1e-3).patterns();
        assert!((with_easy - hard_only).abs() / hard_only < 0.01);
    }

    #[test]
    fn ten_to_one_probability_ratio_drowns() {
        // The paper's example: p_f = 10 p_g makes f irrelevant.
        let tl = required_test_length(&[1e-6, 1e-5], 1e-3);
        assert_eq!(tl.num_relevant(), 1);
    }

    #[test]
    fn close_probabilities_are_all_relevant() {
        let tl = required_test_length(&[1e-6, 1.5e-6, 2e-6], 1e-3);
        assert_eq!(tl.num_relevant(), 3);
    }

    #[test]
    fn undetectable_fault_gives_infinite() {
        let tl = required_test_length(&[0.0, 0.5], 1e-3);
        assert_eq!(tl, TestLength::Infinite);
        assert_eq!(tl.patterns(), f64::INFINITY);
    }

    #[test]
    fn objective_at_result_meets_threshold() {
        let dprobs = [1e-4, 3e-4, 0.2, 0.01];
        let theta = 1e-3;
        let tl = required_test_length(&dprobs, theta);
        let n = tl.patterns();
        assert!(objective_value(&dprobs, n) <= theta);
        assert!(objective_value(&dprobs, n * 0.99 - 2.0) > theta);
    }

    #[test]
    fn sorting_is_deterministic_and_ascending() {
        let dprobs = [0.5, 1e-6, 0.25, 1e-6];
        let order = sort_by_difficulty(&dprobs);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn empty_list_needs_no_patterns() {
        let tl = required_test_length(&[], 1e-3);
        assert_eq!(tl.patterns(), 0.0);
    }

    #[test]
    fn paper_scale_lengths_are_representable() {
        // 2^-32 at 99.9 % needs ~3·10^10 patterns; must not saturate.
        let tl = required_test_length(&[2.0f64.powi(-32)], 1e-3);
        let n = tl.patterns();
        assert!(n > 1e10 && n < 1e12, "N = {n}");
    }

    #[test]
    fn degenerate_thresholds_stay_finite_and_consistent() {
        // Huge θ: zero patterns suffice; tiny θ at detectable faults
        // still resolves to a finite N and a well-defined relevant count.
        let dprobs = [0.3, 0.01];
        let huge = required_test_length(&dprobs, 1e9);
        assert_eq!(huge.patterns(), 0.0);
        assert_eq!(huge.num_relevant(), 0);
        let tiny = required_test_length(&dprobs, 1e-300);
        let n = tiny.patterns();
        assert!(n.is_finite() && n > 0.0, "N = {n}");
        assert!(tiny.num_relevant() >= 1);
        // A fault below the exponential-search range is honestly infinite.
        let hopeless = required_test_length(&[1e-17], 1e-300);
        assert_eq!(hopeless, TestLength::Infinite);
    }

    #[test]
    fn extreme_probability_ratios_never_yield_nan_relevance() {
        // Regression: the old cutoff computed `n·hardest + ln(10^6)`,
        // which mixes a potentially huge product with the offset; the
        // hardened filter compares `n·(p − hardest)` instead.  At an
        // extreme ratio the easy fault must drown, the hard fault must
        // stay, and both counts must be exact — not NaN-dependent.
        let tl = required_test_length(&[1e-10, 0.9], 1e-3);
        assert!(tl.patterns().is_finite());
        assert_eq!(tl.num_relevant(), 1);
        // Near-ties at the hard end all stay relevant.
        let tied = required_test_length(&[1e-10, 1.0000001e-10, 0.9], 1e-3);
        assert_eq!(tied.num_relevant(), 2);
    }

    #[test]
    fn non_finite_probabilities_are_irrelevant_not_poisonous() {
        // Caller-supplied garbage (an `inf` estimate) must not drag the
        // whole relevant count to 0-via-NaN: the finite faults keep
        // their classification and the `inf` one is simply irrelevant.
        let tl = required_test_length(&[0.01, f64::INFINITY], 1e-3);
        assert!(tl.patterns().is_finite());
        assert_eq!(tl.num_relevant(), 1);
    }

    #[test]
    fn relevance_filter_matches_legacy_form_on_normal_inputs() {
        // On well-behaved inputs the hardened filter agrees with the
        // legacy `n·p ≤ n·hardest + ln(10^6)` cutoff.
        for dprobs in [
            vec![1e-6, 1e-5, 3e-6, 0.5],
            vec![0.2, 0.21, 0.9],
            vec![1e-4; 7],
        ] {
            let tl = required_test_length(&dprobs, 1e-3);
            let n = tl.patterns();
            let h = dprobs.iter().copied().fold(f64::INFINITY, f64::min);
            let legacy = dprobs
                .iter()
                .filter(|&&p| n * p <= n * h + (1e6f64).ln())
                .count()
                .max(1);
            assert_eq!(tl.num_relevant(), legacy, "dprobs = {dprobs:?}");
        }
    }
}

//! The objective function `J_N` and the test confidence it approximates.

/// The confidence of a random test (formula 1/8): the probability that
/// *all* faults with detection probabilities `dprobs` are detected by `n`
/// independent patterns, assuming independent detection events:
///
/// ```text
/// a_N = Π_f (1 − (1 − p_f)^N)
/// ```
///
/// Computed in log space for numerical robustness; returns 0 when any
/// fault has detection probability 0.
///
/// # Example
///
/// ```
/// let a = wrt_core::confidence(&[0.5], 10.0);
/// assert!((a - (1.0 - 0.5f64.powi(10))).abs() < 1e-12);
/// ```
pub fn confidence(dprobs: &[f64], n: f64) -> f64 {
    log_confidence(dprobs, n).exp()
}

/// `ln` of [`confidence`] (−∞ when some fault is undetectable).
pub fn log_confidence(dprobs: &[f64], n: f64) -> f64 {
    dprobs
        .iter()
        .map(|&p| {
            if p <= 0.0 {
                f64::NEG_INFINITY
            } else if p >= 1.0 {
                0.0
            } else {
                // ln(1 - (1-p)^n) with (1-p)^n = exp(n ln(1-p)).
                let miss = (n * (1.0 - p).ln()).exp();
                (-miss).ln_1p()
            }
        })
        .sum()
}

/// The paper's objective (formula 9/10):
///
/// ```text
/// J_N(X) = Σ_f exp(−N · p_f(X))  ≈  −ln a_N(X)
/// ```
///
/// Minimizing `J_N` maximizes the confidence.  The approximation
/// `(1 − p)^N ≈ e^{−Np}` is tight for the small `p` that dominate the sum.
///
/// # Example
///
/// ```
/// let j = wrt_core::objective_value(&[0.1, 0.2], 10.0);
/// assert!((j - ((-1.0f64).exp() + (-2.0f64).exp())).abs() < 1e-12);
/// ```
pub fn objective_value(dprobs: &[f64], n: f64) -> f64 {
    dprobs.iter().map(|&p| (-n * p).exp()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_approximates_neg_log_confidence() {
        // The approximation is tight once N is past each fault's own
        // required length (every miss term e^{-Np} small).
        let dprobs = [1e-4, 5e-4, 2e-3];
        let n = 40_000.0;
        let j = objective_value(&dprobs, n);
        let neg_log_a = -log_confidence(&dprobs, n);
        assert!(
            (j - neg_log_a).abs() / neg_log_a < 0.02,
            "J = {j}, -ln a = {neg_log_a}"
        );
    }

    #[test]
    fn confidence_monotone_in_length() {
        let dprobs = [0.01, 0.05];
        assert!(confidence(&dprobs, 100.0) < confidence(&dprobs, 1000.0));
    }

    #[test]
    fn objective_monotone_decreasing_in_length() {
        let dprobs = [0.01, 0.05];
        assert!(objective_value(&dprobs, 100.0) > objective_value(&dprobs, 1000.0));
    }

    #[test]
    fn undetectable_fault_kills_confidence() {
        assert_eq!(confidence(&[0.0, 0.5], 1000.0), 0.0);
        assert_eq!(log_confidence(&[0.0], 10.0), f64::NEG_INFINITY);
    }

    #[test]
    fn certain_fault_contributes_nothing() {
        assert_eq!(confidence(&[1.0], 1.0), 1.0);
        let j = objective_value(&[1.0], 1000.0);
        assert!(j < 1e-300);
    }

    #[test]
    fn empty_fault_list_is_trivially_covered() {
        assert_eq!(confidence(&[], 1.0), 1.0);
        assert_eq!(objective_value(&[], 1.0), 0.0);
    }

    #[test]
    fn extreme_scales_do_not_overflow() {
        // 2^-32 detection probability, N = 5e11 (C7552's scale).
        let j = objective_value(&[2.0f64.powi(-32)], 4.9e11);
        assert!(j.is_finite());
        let a = confidence(&[2.0f64.powi(-32)], 4.9e11);
        assert!((0.0..=1.0).contains(&a));
    }
}

//! Weight quantization to a hardware-realizable grid.
//!
//! The paper's appendix lists the optimized probabilities of S1 and C7552
//! on a 0.05 grid (0.05, 0.1, …, 0.95): weighted-LFSR hardware realizes
//! only a small set of weights, so the continuous optimizer output is
//! snapped before use.  `wrt-bist` realizes the quantized weights with
//! AND/OR trees of LFSR taps.

/// Snaps each weight to the nearest multiple of `grid`, clamped to
/// `[grid, 1 − grid]` so no input becomes constant.
///
/// # Panics
///
/// Panics if `grid` is not in `(0, 0.5)`.
///
/// # Example
///
/// ```
/// let q = wrt_core::quantize_weights(&[0.5, 0.634, 0.012, 0.987], 0.05);
/// assert_eq!(q, vec![0.5, 0.65, 0.05, 0.95]);
/// ```
pub fn quantize_weights(weights: &[f64], grid: f64) -> Vec<f64> {
    assert!(grid > 0.0 && grid < 0.5, "grid must be in (0, 0.5)");
    let steps = (1.0 / grid).round();
    weights
        .iter()
        .map(|&w| (w * steps).round().clamp(1.0, steps - 1.0) / steps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snaps_to_grid() {
        let q = quantize_weights(&[0.47, 0.52, 0.76], 0.05);
        assert_eq!(q, vec![0.45, 0.5, 0.75]);
    }

    #[test]
    fn clamps_extremes_inside_open_cube() {
        let q = quantize_weights(&[0.0, 1.0], 0.05);
        assert_eq!(q, vec![0.05, 0.95]);
    }

    #[test]
    fn exact_grid_points_are_fixed() {
        let points: Vec<f64> = (1..20).map(|k| k as f64 * 0.05).collect();
        let q = quantize_weights(&points, 0.05);
        for (orig, snapped) in points.iter().zip(&q) {
            assert!((orig - snapped).abs() < 1e-9);
        }
    }

    #[test]
    fn coarser_grid() {
        let q = quantize_weights(&[0.3, 0.6], 0.25);
        assert_eq!(q, vec![0.25, 0.5]);
    }

    #[test]
    #[should_panic(expected = "grid must be in (0, 0.5)")]
    fn rejects_bad_grid() {
        let _ = quantize_weights(&[0.5], 0.7);
    }
}

//! Shared experiment plumbing for regenerating the paper's tables and
//! figures.  The binaries in `src/bin/` print one table each; this
//! library holds the paper's reference numbers and the common pipeline
//! (fault list preparation, estimation, optimization, simulation).
//!
//! Run everything with `--release`; the fault-simulation tables are
//! bit-parallel but still simulate thousands of patterns against
//! thousands of faults.

#![forbid(unsafe_code)]

pub mod paper;

use wrt_circuit::Circuit;
use wrt_core::{optimize, OptimizeConfig, OptimizeResult, TestLength};
use wrt_estimate::{constant_line_faults, CopEngine, DetectionProbabilityEngine};
use wrt_fault::FaultList;
use wrt_sim::{
    fault_coverage, fault_coverage_sharded, fault_coverage_sharded_opts, CoverageResult,
    SimOptions, SimStats, WeightedPatterns,
};

/// Upper bound on the exact-enumeration support used for redundancy
/// proofs during fault-list preparation.
pub const REDUNDANCY_SUPPORT_LIMIT: usize = 14;

/// Builds the experiment fault list for a circuit: checkpoint faults with
/// equivalence collapsing, minus faults proven redundant by the exact
/// constant-line argument — mirroring the paper's "all faults of F must
/// be detectable" and the PROTEST redundancy note under Table 2.
pub fn experiment_faults(circuit: &Circuit) -> FaultList {
    let checkpoints = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let redundant = constant_line_faults(circuit, &checkpoints, REDUNDANCY_SUPPORT_LIMIT);
    let keep: Vec<_> = checkpoints
        .iter()
        .zip(&redundant)
        .filter(|(_, &r)| !r)
        .map(|((_, f), _)| f)
        .collect();
    FaultList::from_faults(keep)
}

/// One circuit's conventional-random-test analysis (Table 1 row):
/// detection probabilities at `X = 0.5`, undetectable estimates dropped,
/// then `NORMALIZE`.
pub fn conventional_test_length(circuit: &Circuit, faults: &FaultList, theta: f64) -> TestLength {
    let mut engine = CopEngine::new();
    let probs = engine.estimate(circuit, faults, &vec![0.5; circuit.num_inputs()]);
    let detectable: Vec<f64> = probs.into_iter().filter(|&p| p > 0.0).collect();
    wrt_core::required_test_length(&detectable, theta)
}

/// Runs the optimizer with the default experiment configuration.
pub fn optimize_circuit(circuit: &Circuit, faults: &FaultList) -> OptimizeResult {
    let mut engine = CopEngine::new();
    optimize(circuit, faults, &mut engine, &experiment_config())
}

/// The optimizer configuration used across all experiments
/// (99.9 % confidence, the paper's setup).
pub fn experiment_config() -> OptimizeConfig {
    OptimizeConfig::default()
}

/// `θ` for the experiment confidence target.
pub fn experiment_theta() -> f64 {
    experiment_config().theta()
}

/// Simulates `patterns` weighted random patterns and reports coverage
/// (Tables 2 and 4; `weights = [0.5, …]` gives the conventional test).
pub fn simulate_coverage(
    circuit: &Circuit,
    faults: &FaultList,
    weights: &[f64],
    patterns: u64,
    seed: u64,
) -> CoverageResult {
    let source = WeightedPatterns::new(weights.to_vec(), seed);
    fault_coverage(circuit, faults, source, patterns, true)
}

/// Like [`simulate_coverage`] but fanned out over the sharded PPSFP
/// engine (`threads = 0` uses all cores).  Bit-identical results.
pub fn simulate_coverage_threaded(
    circuit: &Circuit,
    faults: &FaultList,
    weights: &[f64],
    patterns: u64,
    seed: u64,
    threads: usize,
) -> CoverageResult {
    let source = WeightedPatterns::new(weights.to_vec(), seed);
    fault_coverage_sharded(circuit, faults, source, patterns, true, threads)
}

/// [`simulate_coverage_threaded`] with a configurable PPSFP inner loop
/// ([`SimOptions`]: dense cone walk or event-driven superblocks),
/// additionally returning the machine-independent work counters the
/// `bench_sim` artifact records.  Coverage is bit-identical across all
/// option combinations.
pub fn simulate_coverage_opts(
    circuit: &Circuit,
    faults: &FaultList,
    weights: &[f64],
    patterns: u64,
    seed: u64,
    threads: usize,
    opts: SimOptions,
) -> (CoverageResult, SimStats) {
    let source = WeightedPatterns::new(weights.to_vec(), seed);
    fault_coverage_sharded_opts(circuit, faults, source, patterns, true, threads, opts)
}

/// Formats a pattern count the way the paper prints Table 1
/// (e.g. `5.6*10^8`).
pub fn fmt_sci(n: f64) -> String {
    if !n.is_finite() {
        return "inf".to_string();
    }
    if n == 0.0 {
        return "0".to_string();
    }
    let exp = n.abs().log10().floor();
    let mantissa = n / 10f64.powf(exp);
    format!("{mantissa:.1}*10^{exp}")
}

/// Formats a coverage fraction as a percentage.
pub fn fmt_pct(c: f64) -> String {
    format!("{:.1} %", c * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_sci_matches_paper_style() {
        assert_eq!(fmt_sci(5.6e8), "5.6*10^8");
        assert_eq!(fmt_sci(2.5e3), "2.5*10^3");
        assert_eq!(fmt_sci(f64::INFINITY), "inf");
        assert_eq!(fmt_sci(0.0), "0");
    }

    #[test]
    fn experiment_faults_are_nonempty_for_s1() {
        let c = wrt_workloads::s1();
        let faults = experiment_faults(&c);
        assert!(faults.len() > 100, "got {}", faults.len());
    }

    #[test]
    fn conventional_length_of_s1_is_astronomical() {
        // The AEQB path forces ~2^-24 detection probabilities: the
        // conventional test length must land within an order of magnitude
        // or two of the paper's 5.6*10^8.
        let c = wrt_workloads::s1();
        let faults = experiment_faults(&c);
        let tl = conventional_test_length(&c, &faults, experiment_theta());
        let n = tl.patterns();
        assert!(n > 1e7, "N = {n}");
        assert!(n < 1e11, "N = {n}");
    }

    #[test]
    fn optimization_of_s1_reduces_length_by_orders_of_magnitude() {
        let c = wrt_workloads::s1();
        let faults = experiment_faults(&c);
        let result = optimize_circuit(&c, &faults);
        assert!(
            result.improvement_factor() > 100.0,
            "initial {} final {}",
            result.initial_length,
            result.final_length
        );
    }
}

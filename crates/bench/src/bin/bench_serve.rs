//! Machine-readable serving benchmark: cold vs warm query throughput on
//! a resident `wrt serve` instance, plus ECO what-if cost vs cold
//! recompute.
//!
//! Writes `BENCH_serve.json` with three claims `bench_guard` re-checks
//! on every CI run:
//!
//! * **warm_over_cold** — the same `estimate` query against a primed
//!   registry (shared `Arc`'d circuit, fault list, COP baseline) vs a
//!   fully cold one (registry flushed before every query, so each pays
//!   netlist construction, fault-list derivation, and the two COP
//!   passes).  Warm must never be slower; in the full configuration at
//!   least two circuits must clear 3x.
//! * **eco_eval_reduction** — node evaluations a what-if ECO overlay
//!   spends vs the cold recompute it replaces (a machine-independent
//!   counter, not wall clock).
//! * **bit_identical** — every served payload equals direct in-process
//!   execution over the same registry, and the overlay's detection
//!   probabilities equal a cold COP run of the really-mutated circuit.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_serve`.
//!
//! ```text
//! bench_serve [--reps N] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 20 repetitions per phase, three registry circuits,
//! `BENCH_serve.json` in the current directory.  `--smoke` runs a
//! scaled-down version for CI.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};
use wrt_estimate::{CopEngine, DetectionProbabilityEngine, EcoMutation, SessionCop};
use wrt_serve::{client, execute, ExecContext, Registry};

struct Row {
    circuit: String,
    cold_qps: f64,
    warm_qps: f64,
    identical: bool,
}

impl Row {
    fn warm_over_cold(&self) -> f64 {
        self.warm_qps / self.cold_qps
    }

    fn to_json(&self) -> String {
        format!(
            "    {{ \"circuit\": \"{}\", \"cold_qps\": {:.3}, \"warm_qps\": {:.3}, \
             \"warm_over_cold\": {:.3}, \"bit_identical\": {} }}",
            self.circuit,
            self.cold_qps,
            self.warm_qps,
            self.warm_over_cold(),
            self.identical
        )
    }
}

fn strs(args: &[&str]) -> Vec<String> {
    args.iter().map(ToString::to_string).collect()
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The first two AND/OR-class gates, flipped — as both the `--set` spec
/// the protocol speaks and the [`EcoMutation`] list the engine takes.
fn flippable_mutations(circuit: &Circuit) -> (String, Vec<EcoMutation>) {
    let mut spec = Vec::new();
    let mut mutations = Vec::new();
    for (id, node) in circuit.iter() {
        let flipped = match node.kind() {
            GateKind::And => GateKind::Or,
            GateKind::Or => GateKind::And,
            GateKind::Nand => GateKind::Nor,
            GateKind::Nor => GateKind::Nand,
            _ => continue,
        };
        spec.push(format!("{}={}", node.name(), format!("{flipped:?}").to_uppercase()));
        mutations.push(EcoMutation { gate: id, kind: flipped });
        if mutations.len() == 2 {
            break;
        }
    }
    assert_eq!(mutations.len(), 2, "benchmark circuit has too few mutable gates");
    (spec.join(","), mutations)
}

/// Rebuilds `circuit` with the mutations really applied, preserving node
/// ids, so a cold COP run of the result is the ECO overlay's reference.
fn rebuild_mutated(circuit: &Circuit, mutations: &[EcoMutation]) -> Circuit {
    let mut b = CircuitBuilder::named(circuit.name());
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.num_nodes());
    for (id, node) in circuit.iter() {
        let kind = mutations
            .iter()
            .find(|m| m.gate == id)
            .map_or_else(|| node.kind(), |m| m.kind);
        let new_id = match kind {
            GateKind::Input => b.input(node.name()),
            GateKind::Const0 => b.const0(),
            GateKind::Const1 => b.const1(),
            k => {
                let fanin: Vec<NodeId> = node.fanin().iter().map(|&f| map[f.index()]).collect();
                b.gate(k, node.name(), &fanin).expect("legal rebuild")
            }
        };
        map.push(new_id);
    }
    for &o in circuit.outputs() {
        b.mark_output(map[o.index()]);
    }
    b.build().expect("mutated circuit rebuilds")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps: u32 = flag(&args, "--reps")
        .map(|v| v.parse().expect("--reps takes an integer"))
        .unwrap_or(if smoke { 5 } else { 20 });
    let out_path = flag(&args, "--out").unwrap_or("BENCH_serve.json").to_string();
    let circuits: &[&str] = if smoke {
        &["s1", "c880ish"]
    } else {
        &["c880ish", "c2670ish", "c5315ish"]
    };

    // One registry shared by the server and the in-process reference —
    // that sharing is what makes uid-bearing outputs comparable, and it
    // mirrors how batch CLI and served sessions share verb code.
    let registry = Arc::new(Registry::new());
    let handle =
        wrt_serve::spawn(Arc::clone(&registry), "127.0.0.1:0", None).expect("server spawns");
    let addr = handle.addr().to_string();
    let ctx = ExecContext::new(Arc::clone(&registry));

    println!("serve benchmark ({reps} reps per phase) on {addr}");
    let mut rows: Vec<Row> = Vec::new();
    for name in circuits {
        let query = strs(&["estimate", name, "--top", "3"]);
        // Cold: flush before every query, so each one rebuilds the
        // circuit, the fault list, and the COP baseline from nothing.
        let mut cold = Duration::ZERO;
        for _ in 0..reps {
            client::run(&addr, &strs(&["flush"])).expect("flush");
            let t = Instant::now();
            client::run(&addr, &query).expect("cold query");
            cold += t.elapsed();
        }
        // Warm: prime once, then every query hits the shared caches.
        client::run(&addr, &query).expect("prime");
        let t = Instant::now();
        for _ in 0..reps {
            client::run(&addr, &query).expect("warm query");
        }
        let warm = t.elapsed();
        let cold_qps = f64::from(reps) / cold.as_secs_f64();
        let warm_qps = f64::from(reps) / warm.as_secs_f64();
        // Served ≡ batch: the payloads come from the same verb functions
        // over the same registry, so equality must be exact.
        let mut identical = true;
        for argv in [
            query.clone(),
            strs(&["stats", name]),
            strs(&["analyze", name, "--json"]),
        ] {
            let direct = execute(&ctx, &argv).expect("direct execution");
            let served = client::run(&addr, &argv).expect("served execution");
            identical &= direct == served;
        }
        let row = Row {
            circuit: (*name).to_string(),
            cold_qps,
            warm_qps,
            identical,
        };
        println!(
            "  {:<10} cold {:>8.1} q/s  warm {:>9.1} q/s  warm/cold {:>6.1}x  identical {}",
            row.circuit,
            row.cold_qps,
            row.warm_qps,
            row.warm_over_cold(),
            row.identical
        );
        assert!(row.identical, "{name}: served payload diverged from direct execution");
        assert!(
            row.warm_over_cold() >= 1.0,
            "{name}: warm serving slower than cold ({:.2}x)",
            row.warm_over_cold()
        );
        rows.push(row);
    }
    if !smoke {
        let cleared = rows.iter().filter(|r| r.warm_over_cold() >= 3.0).count();
        assert!(
            cleared >= 2,
            "only {cleared} circuit(s) clear the 3x warm floor"
        );
    }

    // ECO what-if on the largest circuit: the overlay must answer with
    // far fewer node evals than a cold recompute, bit-identically to a
    // cold COP run of the really-mutated circuit.
    let eco_name = circuits.last().expect("at least one circuit");
    let entry = registry.resolve(eco_name).expect("workload resolves");
    let circuit = Arc::clone(entry.circuit());
    let faults = Arc::clone(entry.experiment_faults());
    let weights = vec![0.5; circuit.num_inputs()];
    let baseline = registry.baseline(&entry, &weights);
    let (spec, mutations) = flippable_mutations(&circuit);
    let mut session = SessionCop::new(Arc::clone(&baseline));
    let (dp, stats) = session.what_if(&mutations, &faults).expect("valid ECO");
    let mutated = rebuild_mutated(&circuit, &mutations);
    let mut engine = CopEngine::new();
    let reference = engine.estimate(&mutated, &faults, &weights);
    let dp_bits: Vec<u64> = dp.iter().map(|x| x.to_bits()).collect();
    let reference_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
    let eco_identical = dp_bits == reference_bits;
    // The served rendering equals direct execution of the same request.
    let eco_argv = strs(&["eco", eco_name, "--set", &spec]);
    let eco_direct = execute(&ctx, &eco_argv).expect("direct eco");
    let eco_served = client::run(&addr, &eco_argv).expect("served eco");
    let eco_identical = eco_identical && eco_direct == eco_served;
    println!(
        "  eco {:<6} cone {} node(s)  overlay {} vs cold {} evals ({:.1}x fewer)  identical {}",
        eco_name,
        stats.cone_nodes,
        stats.overlay_evals(),
        stats.cold_evals,
        stats.eval_reduction(),
        eco_identical
    );
    assert!(eco_identical, "{eco_name}: ECO overlay diverged from cold recompute");
    let floor = if smoke { 1.0 } else { 2.0 };
    assert!(
        stats.eval_reduction() >= floor,
        "{eco_name}: eval reduction {:.2} below the {floor} floor",
        stats.eval_reduction()
    );

    handle.trigger_shutdown();
    handle.wait();

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"serve_warm_cache\",\n  \"note\": \"cold_qps times one estimate query per registry flush (each query rebuilds the circuit, its collapsed redundancy-filtered fault list, and the COP baseline from nothing); warm_qps times the same query against the primed shared caches. Both run over real sockets against a resident server, so warm_over_cold is the testability-as-a-service claim: session-independent derived state amortizes across queries. Wall-clock and host-dependent; bench_guard enforces warm_over_cold >= 1 everywhere and >= 3 on two circuits in the full set. The eco section counts node evaluations (machine-independent): a what-if ECO answers from a pending-overlay cone walk instead of a cold recompute, bit-identical to really mutating the circuit and rerunning COP. bit_identical compares every served payload against direct in-process execution over the same registry.\",\n  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ],\n  \"eco\": {{\n    \"circuit\": \"{eco_name}\",\n    \"mutated_gates\": {},\n    \"cone_nodes\": {},\n    \"overlay_evals\": {},\n    \"cold_evals\": {},\n    \"eco_eval_reduction\": {:.3},\n    \"bit_identical\": {eco_identical}\n  }}\n}}\n",
        body.join(",\n"),
        mutations.len(),
        stats.cone_nodes,
        stats.overlay_evals(),
        stats.cold_evals,
        stats.eval_reduction(),
    );
    std::fs::write(&out_path, json).expect("artifact written");
    println!("wrote {out_path}");
}

//! Table 3: necessary test lengths for optimized random tests
//! (starred circuits).
//!
//! Run with `cargo run --release -p wrt-bench --bin table3`.

fn main() {
    println!("Table 3: necessary test lengths, optimized random test");
    println!();
    println!(
        "  {:<10} {:>14} {:>14} {:>14} {:>7}",
        "Circuit", "conventional", "optimized", "paper opt.", "sweeps"
    );
    for row in wrt_bench::paper::starred() {
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let result = wrt_bench::optimize_circuit(&circuit, &faults);
        println!(
            "  {:<10} {:>14} {:>14} {:>14} {:>7}",
            row.paper_name,
            wrt_bench::fmt_sci(result.initial_length),
            wrt_bench::fmt_sci(result.final_length),
            wrt_bench::fmt_sci(row.optimized_length.expect("starred")),
            result.sweeps.len(),
        );
    }
}

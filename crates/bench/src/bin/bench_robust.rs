//! Machine-readable robustness benchmark: recovery-scaffold overhead on
//! the unfailed path, plus an in-process chaos sweep.
//!
//! Writes `BENCH_robust.json` with two claims the guard re-checks on
//! every CI run:
//!
//! * **Overhead** — the robust entry points (budget check-ins, fail-point
//!   pass-throughs, panic-isolated shard scaffold) cost ≈ nothing when
//!   nothing fails: wall-clock vs the legacy sharded engine
//!   (`overhead_pct`, host-dependent) and bit-identical coverage
//!   (`bit_identical`, machine-independent).
//! * **Chaos** — a seeded fail-point sweep over every planted site: each
//!   injection must end in bit-identical recovery or a structured error.
//!   The `unrecovered` count is asserted zero here and again by
//!   `bench_guard` on the committed artifact.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_robust`.
//!
//! ```text
//! bench_robust [--patterns N] [--threads T] [--circuits a,b,...]
//!              [--seeds N] [--reps R] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 32768 patterns, 4 threads, best-of-15 interleaved timing
//! pairs, two large workload circuits, a 30-seed chaos sweep,
//! `BENCH_robust.json` in the current directory.  `--smoke` runs a
//! scaled-down version for CI.

use std::time::Instant;

use wrt_circuit::Circuit;
use wrt_estimate::{CopEngine, DegradingEngine, DetectionProbabilityEngine};
use wrt_fault::FaultList;
use wrt_robust::failpoint::{self, sites, FailAction};
use wrt_robust::{Budget, BudgetExceeded, Checkpoint, CheckpointError, RunOutcome};
use wrt_sim::{
    fault_coverage, fault_coverage_robust, fault_coverage_sharded_opts,
    fault_coverage_tiled_robust, SimOptions, TileOptions, WeightedPatterns,
};

const SEED: u64 = 0xC0DE;
/// Skip counts stay below the per-run pass count of the rarest site.
const MAX_SKIP: u64 = 3;

struct Row {
    circuit: String,
    faults: usize,
    patterns: u64,
    threads: usize,
    legacy_seconds: f64,
    robust_seconds: f64,
    identical: bool,
}

impl Row {
    fn overhead_pct(&self) -> f64 {
        (self.robust_seconds / self.legacy_seconds - 1.0) * 100.0
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"circuit\": \"{}\",\n      \"faults\": {},\n      \"patterns\": {},\n      \"threads\": {},\n      \"legacy_seconds\": {:.6},\n      \"robust_seconds\": {:.6},\n      \"overhead_pct\": {:.3},\n      \"bit_identical\": {}\n    }}",
            self.circuit,
            self.faults,
            self.patterns,
            self.threads,
            self.legacy_seconds,
            self.robust_seconds,
            self.overhead_pct(),
            self.identical,
        )
    }
}

fn overhead_row(circuit: &Circuit, patterns: u64, threads: usize, reps: usize) -> Row {
    let faults = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let source = || WeightedPatterns::equiprobable(circuit.num_inputs(), SEED);
    let opts = SimOptions::event(4);
    // Interleave the two timed runs so scheduler drift on a shared host
    // hits both sides equally; best-of-reps then converges each side to
    // its noise floor.
    let mut legacy_seconds = f64::INFINITY;
    let mut robust_seconds = f64::INFINITY;
    let mut legacy = None;
    let mut robust = None;
    for rep in 0..=reps {
        let start = Instant::now();
        let (l, _) =
            fault_coverage_sharded_opts(circuit, &faults, source(), patterns, true, threads, opts);
        let legacy_elapsed = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let r = fault_coverage_robust(
            circuit,
            &faults,
            source(),
            patterns,
            true,
            threads,
            opts,
            &Budget::unlimited(),
        );
        let robust_elapsed = start.elapsed().as_secs_f64();
        if rep > 0 {
            // Pair 0 is the warm-up.
            legacy_seconds = legacy_seconds.min(legacy_elapsed);
            robust_seconds = robust_seconds.min(robust_elapsed);
        }
        legacy = Some(l);
        robust = Some(r);
    }
    let legacy = legacy.expect("at least one pair ran");
    let robust = robust.expect("at least one pair ran");
    let identical = robust.is_complete() && {
        let rc = robust.value();
        rc.recovery.is_clean() && rc.result.detected_at() == legacy.detected_at()
    };
    Row {
        circuit: circuit.name().to_string(),
        faults: faults.len(),
        patterns,
        threads,
        legacy_seconds,
        robust_seconds,
        identical,
    }
}

/// One chaos injection's classification.
enum Outcome {
    /// The run completed and its result is bit-identical to the serial
    /// reference (or the arm's skip count outlived the workload).
    Recovered,
    /// The failure surfaced as a structured error / interruption whose
    /// partial state checked out.
    Structured,
    /// Anything else — result loss.  Must never happen.
    Unrecovered(String),
}

/// Runs one seeded injection against the site the plan picks; the
/// workloads are deliberately small (the chaos sweep measures outcomes,
/// not speed).
// The session must outlive the whole drill (the arm belongs to it), so
// early-drop tightening does not apply.
#[allow(clippy::significant_drop_tightening)]
fn chaos_drill(seed: u64, circuit: &Circuit, faults: &FaultList) -> (String, bool, Outcome) {
    let (site_index, skip) = failpoint::seeded_plan(seed, sites::ALL.len(), MAX_SKIP);
    let site = sites::ALL[site_index];
    let patterns = 256;
    let source = || WeightedPatterns::equiprobable(circuit.num_inputs(), SEED);
    let session = failpoint::session();
    let action = match site {
        // Worker-side sites get panics on even seeds to exercise panic
        // isolation; main-thread sites always use the structured action.
        sites::WORKER_SPAWN | sites::SHARD_MERGE if seed.is_multiple_of(2) => FailAction::Panic,
        _ => FailAction::Error,
    };
    session.arm(site, action, skip);
    let outcome = match site {
        sites::WORKER_SPAWN | sites::SHARD_MERGE => {
            let reference = fault_coverage(circuit, faults, source(), patterns, true);
            let robust = fault_coverage_robust(
                circuit,
                faults,
                source(),
                patterns,
                true,
                3,
                SimOptions::event(4),
                &Budget::unlimited(),
            );
            match robust {
                RunOutcome::Complete(rc)
                    if rc.recovery.unresolved.is_empty()
                        && rc.result.detected_at() == reference.detected_at() =>
                {
                    Outcome::Recovered
                }
                RunOutcome::Complete(_) => {
                    Outcome::Unrecovered("shard recovery diverged from serial".into())
                }
                RunOutcome::Interrupted { reason, .. } => {
                    Outcome::Unrecovered(format!("unexpected interruption: {reason:?}"))
                }
            }
        }
        sites::BUDGET_CHECK_IN => {
            let robust = fault_coverage_robust(
                circuit,
                faults,
                source(),
                patterns,
                true,
                2,
                SimOptions::dense(),
                &Budget::unlimited(),
            );
            match robust {
                RunOutcome::Interrupted {
                    partial,
                    reason: BudgetExceeded::Injected,
                    progress,
                } => {
                    let prefix = fault_coverage(circuit, faults, source(), progress.done, true);
                    if partial.result.detected_at() == prefix.detected_at() {
                        Outcome::Structured
                    } else {
                        Outcome::Unrecovered("injected partial is not the serial prefix".into())
                    }
                }
                RunOutcome::Interrupted { reason, .. } => {
                    Outcome::Unrecovered(format!("wrong interruption reason: {reason:?}"))
                }
                // Skip count outlived the stream's check-ins.
                RunOutcome::Complete(_) => Outcome::Recovered,
            }
        }
        sites::CHECKPOINT_WRITE => {
            let path = std::env::temp_dir().join(format!("wrt_bench_chaos_{seed}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let result = Checkpoint::new("chaos").write_atomic(&path);
            let fired = !session.fired().is_empty();
            let classified = match (fired, result) {
                (true, Err(CheckpointError::Io { .. })) if !path.exists() => Outcome::Structured,
                (false, Ok(())) => Outcome::Recovered,
                (fired, other) => {
                    Outcome::Unrecovered(format!("fired={fired}, write result {other:?}"))
                }
            };
            let _ = std::fs::remove_file(&path);
            classified
        }
        sites::ESTIMATE_ANOMALY => {
            let probs = vec![0.5; circuit.num_inputs()];
            let mut reference = CopEngine::new();
            let mut wrapped = DegradingEngine::new(CopEngine::new(), CopEngine::new());
            let mut ok = true;
            for _ in 0..4 {
                ok &= wrapped.estimate(circuit, faults, &probs)
                    == reference.estimate(circuit, faults, &probs);
            }
            if ok && wrapped.is_degraded() {
                Outcome::Recovered
            } else {
                Outcome::Unrecovered(format!(
                    "answers identical: {ok}, degraded: {}",
                    wrapped.is_degraded()
                ))
            }
        }
        sites::TILE_RUN => {
            let reference = fault_coverage(circuit, faults, source(), patterns, true);
            let robust = fault_coverage_tiled_robust(
                circuit,
                faults,
                source(),
                patterns,
                true,
                &TileOptions {
                    block_words: 1,
                    pattern_stripes: 2,
                    threads: 2,
                    ..TileOptions::default()
                },
                &Budget::unlimited(),
            );
            match robust {
                RunOutcome::Complete(rc)
                    if rc.recovery.unresolved.is_empty()
                        && rc.result.detected_at() == reference.detected_at() =>
                {
                    Outcome::Recovered
                }
                RunOutcome::Complete(_) => {
                    Outcome::Unrecovered("tile recovery diverged from serial".into())
                }
                RunOutcome::Interrupted { reason, .. } => {
                    Outcome::Unrecovered(format!("unexpected interruption: {reason:?}"))
                }
            }
        }
        sites::SERVE_ACCEPT | sites::SERVE_SESSION | sites::SERVE_ECO_APPLY => {
            // A resident server under injection: every request must still
            // get a framed response — the fired arm surfaces as an `err`
            // frame, never a dropped connection.
            let spec = circuit
                .iter()
                .find_map(|(_, n)| match n.kind() {
                    wrt_circuit::GateKind::And => Some(format!("{}=OR", n.name())),
                    wrt_circuit::GateKind::Nand => Some(format!("{}=NOR", n.name())),
                    _ => None,
                })
                .expect("chaos circuit has a flippable gate");
            let registry = std::sync::Arc::new(wrt_serve::Registry::new());
            match wrt_serve::spawn(registry, "127.0.0.1:0", None) {
                Err(why) => Outcome::Unrecovered(format!("server failed to spawn: {why}")),
                Ok(handle) => {
                    let addr = handle.addr().to_string();
                    let argv: Vec<String> = ["eco", circuit.name(), "--set", spec.as_str()]
                        .iter()
                        .map(ToString::to_string)
                        .collect();
                    let mut err_frames = 0u32;
                    let mut transport = None;
                    for _ in 0..4 {
                        match wrt_serve::client::request(&addr, &argv) {
                            Ok(Ok(_)) => {}
                            Ok(Err(_)) => err_frames += 1,
                            Err(why) => transport = Some(why),
                        }
                    }
                    handle.trigger_shutdown();
                    handle.wait();
                    let fired = !session.fired().is_empty();
                    match (transport, fired, err_frames) {
                        (Some(why), _, _) => {
                            Outcome::Unrecovered(format!("transport failure: {why}"))
                        }
                        (None, true, 1..) => Outcome::Structured,
                        (None, true, 0) => {
                            Outcome::Unrecovered("fired arm produced no err frame".into())
                        }
                        (None, false, _) => Outcome::Recovered,
                    }
                }
            }
        }
        other => unreachable!("unknown site {other}"),
    };
    let fired = !session.fired().is_empty();
    (site.to_string(), fired, outcome)
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let patterns: u64 = flag(&args, "--patterns")
        .map(|v| v.parse().expect("--patterns N"))
        .unwrap_or(if smoke { 512 } else { 32_768 });
    let threads: usize = flag(&args, "--threads")
        .map(|v| v.parse().expect("--threads T"))
        .unwrap_or(4);
    let seeds: u64 = flag(&args, "--seeds")
        .map(|v| v.parse().expect("--seeds N"))
        .unwrap_or(if smoke { 12 } else { 30 });
    let out = flag(&args, "--out")
        .unwrap_or("BENCH_robust.json")
        .to_string();
    let circuits: Vec<String> = flag(&args, "--circuits")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            if smoke {
                vec!["s1".into(), "c880ish".into()]
            } else {
                vec!["c2670ish".into(), "c7552ish".into()]
            }
        });
    let reps: usize = flag(&args, "--reps")
        .map(|v| v.parse().expect("--reps R"))
        .unwrap_or(if smoke { 2 } else { 15 });

    println!(
        "robust-path overhead ({patterns} patterns, {threads} threads) + chaos sweep ({seeds} seeds)"
    );
    let mut rows = Vec::new();
    for name in &circuits {
        let circuit = wrt_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let row = overhead_row(&circuit, patterns, threads, reps);
        println!(
            "  {:<10} legacy {:.4}s  robust {:.4}s  overhead {:+.2} %  identical {}",
            row.circuit,
            row.legacy_seconds,
            row.robust_seconds,
            row.overhead_pct(),
            row.identical,
        );
        assert!(row.identical, "{name}: robust path diverged from legacy");
        rows.push(row);
    }

    // Chaos sweep on a small circuit: outcome classification, not timing.
    let chaos_circuit = wrt_workloads::s1();
    let chaos_faults =
        FaultList::checkpoints(&chaos_circuit).collapse_equivalent(&chaos_circuit);
    let (mut fired, mut recovered, mut structured) = (0u64, 0u64, 0u64);
    let mut unrecovered: Vec<String> = Vec::new();
    // Injected panics are caught by the shard scaffold; silence the
    // default hook so the sweep's output is the classification, not
    // backtraces of failures that recovered as designed.
    std::panic::set_hook(Box::new(|_| {}));
    for seed in 0..seeds {
        let (site, did_fire, outcome) = chaos_drill(seed, &chaos_circuit, &chaos_faults);
        fired += u64::from(did_fire);
        match outcome {
            Outcome::Recovered => recovered += 1,
            Outcome::Structured => structured += 1,
            Outcome::Unrecovered(why) => unrecovered.push(format!("seed {seed} ({site}): {why}")),
        }
    }
    let _ = std::panic::take_hook();
    println!(
        "  chaos: {seeds} seeds, {fired} fired, {recovered} recovered bit-identically, \
         {structured} structured errors, {} unrecovered",
        unrecovered.len()
    );
    assert!(
        unrecovered.is_empty(),
        "chaos sweep lost results: {unrecovered:?}"
    );

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"robust_overhead_and_chaos\",\n  \"note\": \"overhead_pct compares the budgeted, panic-isolated robust entry point (unlimited budget, nothing armed) against the legacy sharded engine on the identical workload; wall-clock and host-dependent, expected within noise of zero (the disabled fail-point fast path is one relaxed atomic load, and budget check-ins happen per chunk). bit_identical is the machine-independent claim: the robust path's coverage equals the legacy engine's exactly. The chaos section is a seeded fail-point sweep over every planted site (worker spawn, shard merge, checkpoint write, budget check-in, estimate anomaly, tile run, serve accept/session/eco-apply; panics on worker-side sites, structured failures elsewhere): every injection must end in bit-identical recovery or a structured error. unrecovered counts silent result loss and must be zero; bench_guard re-checks it on the committed artifact.\",\n  \"patterns\": {},\n  \"threads\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ],\n  \"chaos\": {{\n    \"seeds\": {},\n    \"fired\": {},\n    \"recovered_bit_identical\": {},\n    \"structured_errors\": {},\n    \"unrecovered\": {}\n  }}\n}}\n",
        patterns,
        threads,
        smoke,
        body.join(",\n"),
        seeds,
        fired,
        recovered,
        structured,
        unrecovered.len(),
    );
    std::fs::write(&out, json).expect("write BENCH_robust.json");
    println!("wrote {out}");
}

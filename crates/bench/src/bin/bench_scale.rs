//! Scale benchmark: memory and throughput of the core data structures as
//! circuit size grows from 10^4 toward 10^6 gates.
//!
//! Writes `BENCH_scale.json`.  The headline metric is **bytes/gate** of
//! the flat-memory [`Circuit`] (from [`Circuit::memory_footprint`], the
//! workspace's analytic allocation accounting — `#![forbid(unsafe_code)]`
//! precludes a global-allocator hook), which must stay flat or decrease
//! with size: any superlinear term in the storage layer shows up as a
//! rising curve and fails the `bench_guard` rule.  Alongside it the
//! artifact tracks wall-clock throughputs that expose superlinear *time*
//! terms: netlist generation, `.bench` parse + levelize, full-pass COP
//! evaluations/sec, and event-driven fault-simulation patterns/sec.
//!
//! Each row also re-checks the workspace's core invariant at scale:
//! `IncrementalCop` must agree bit-for-bit with the stateless `CopEngine`
//! on a probe fault list (`bit_identical`).
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_scale`.
//!
//! ```text
//! bench_scale [--sizes n1,n2,...] [--seed S] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: sizes 10k/50k/200k/1M gates, seed 42, `BENCH_scale.json` in
//! the current directory.  `--smoke` caps the sweep at 10^5 gates for CI.

use std::time::Instant;

use wrt_circuit::Circuit;
use wrt_estimate::{
    observabilities_cop, signal_probabilities_cop, CopEngine, DetectionProbabilityEngine,
    IncrementalCop,
};
use wrt_fault::FaultList;
use wrt_sim::{fault_coverage_opts, SimOptions, WeightedPatterns};

const SEED: u64 = 42;
const SIM_PATTERNS: u64 = 256;
const SIM_FAULTS: usize = 64;

struct Row {
    target: usize,
    seed: u64,
    gates: usize,
    nodes: usize,
    edges: usize,
    inputs: usize,
    outputs: usize,
    depth: u32,
    bytes_total: usize,
    bytes_per_gate: f64,
    bytes_kinds: usize,
    bytes_fanin_csr: usize,
    bytes_fanout_csr: usize,
    bytes_names: usize,
    bytes_levels: usize,
    bytes_interface: usize,
    build_seconds: f64,
    bench_bytes: usize,
    parse_levelize_seconds: f64,
    parse_gates_per_sec: f64,
    cop_seconds: f64,
    cop_evals_per_sec: f64,
    sim_seconds: f64,
    sim_patterns_per_sec: f64,
    bit_identical: bool,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"target_gates\": {},\n      \"seed\": {},\n      \"gates\": {},\n      \"nodes\": {},\n      \"edges\": {},\n      \"inputs\": {},\n      \"outputs\": {},\n      \"depth\": {},\n      \"bytes_total\": {},\n      \"bytes_per_gate\": {:.2},\n      \"bytes_kinds\": {},\n      \"bytes_fanin_csr\": {},\n      \"bytes_fanout_csr\": {},\n      \"bytes_names\": {},\n      \"bytes_levels\": {},\n      \"bytes_interface\": {},\n      \"build_seconds\": {:.6},\n      \"bench_bytes\": {},\n      \"parse_levelize_seconds\": {:.6},\n      \"parse_gates_per_sec\": {:.0},\n      \"cop_seconds\": {:.6},\n      \"cop_evals_per_sec\": {:.0},\n      \"sim_patterns\": {},\n      \"sim_faults\": {},\n      \"sim_seconds\": {:.6},\n      \"sim_patterns_per_sec\": {:.1},\n      \"bit_identical\": {}\n    }}",
            self.target,
            self.seed,
            self.gates,
            self.nodes,
            self.edges,
            self.inputs,
            self.outputs,
            self.depth,
            self.bytes_total,
            self.bytes_per_gate,
            self.bytes_kinds,
            self.bytes_fanin_csr,
            self.bytes_fanout_csr,
            self.bytes_names,
            self.bytes_levels,
            self.bytes_interface,
            self.build_seconds,
            self.bench_bytes,
            self.parse_levelize_seconds,
            self.parse_gates_per_sec,
            self.cop_seconds,
            self.cop_evals_per_sec,
            SIM_PATTERNS,
            SIM_FAULTS.min(self.inputs * 2),
            self.sim_seconds,
            self.sim_patterns_per_sec,
            self.bit_identical,
        )
    }
}

/// One COP full pass (signal probabilities forward + observabilities
/// backward) — the unit the optimizer's inner loop repeats.
fn cop_full_pass(circuit: &Circuit, weights: &[f64]) -> f64 {
    let p = signal_probabilities_cop(circuit, weights);
    let (obs, pin_obs) = observabilities_cop(circuit, &p);
    // Fold the results so the optimizer cannot be dead-code-eliminated.
    obs.last().copied().unwrap_or(0.0) + pin_obs.last().copied().unwrap_or(0.0)
}

fn bench_size(target: usize, seed: u64) -> Row {
    let start = Instant::now();
    let circuit = wrt_workloads::tiled(target, seed);
    let build_seconds = start.elapsed().as_secs_f64();

    let m = circuit.memory_footprint();
    let weights = vec![0.5f64; circuit.num_inputs()];

    // `.bench` round trip: parse + levelize wall clock.
    let text = wrt_circuit::to_bench(&circuit);
    let start = Instant::now();
    let reparsed =
        wrt_circuit::parse_bench_named(&text, circuit.name()).expect("tiled netlist reparses");
    let parse_levelize_seconds = start.elapsed().as_secs_f64();
    assert_eq!(reparsed.num_gates(), circuit.num_gates());

    // COP throughput: forward + backward pass = 2 node evaluations/node.
    let start = Instant::now();
    let sink = cop_full_pass(&circuit, &weights);
    let cop_seconds = start.elapsed().as_secs_f64();
    assert!(sink.is_finite());
    let cop_evals_per_sec = 2.0 * circuit.num_nodes() as f64 / cop_seconds.max(1e-12);

    // Bit identity at scale: the incremental engine against the
    // stateless one, on a probe fault list.
    let probe: FaultList = FaultList::primary_inputs(&circuit)
        .iter()
        .take(SIM_FAULTS)
        .map(|(_, f)| f)
        .collect();
    let full = CopEngine::new().estimate(&circuit, &probe, &weights);
    let incremental = IncrementalCop::new().estimate(&circuit, &probe, &weights);
    let bit_identical = full == incremental;

    // Event-driven fault simulation throughput on the probe faults.
    let source = WeightedPatterns::equiprobable(circuit.num_inputs(), seed);
    let start = Instant::now();
    let (result, _stats) = fault_coverage_opts(
        &circuit,
        &probe,
        source,
        SIM_PATTERNS,
        true,
        SimOptions::event(4),
    );
    let sim_seconds = start.elapsed().as_secs_f64();
    assert!(result.num_detected() <= probe.len());

    Row {
        target,
        seed,
        gates: circuit.num_gates(),
        nodes: circuit.num_nodes(),
        edges: circuit.num_edges(),
        inputs: circuit.num_inputs(),
        outputs: circuit.num_outputs(),
        depth: circuit.levels().depth(),
        bytes_total: m.total(),
        bytes_per_gate: m.bytes_per_gate(circuit.num_gates()),
        bytes_kinds: m.kinds,
        bytes_fanin_csr: m.fanin_csr,
        bytes_fanout_csr: m.fanout_csr,
        bytes_names: m.names,
        bytes_levels: m.levels,
        bytes_interface: m.interface,
        build_seconds,
        bench_bytes: text.len(),
        parse_levelize_seconds,
        parse_gates_per_sec: circuit.num_gates() as f64 / parse_levelize_seconds.max(1e-12),
        cop_seconds,
        cop_evals_per_sec,
        sim_seconds,
        sim_patterns_per_sec: SIM_PATTERNS as f64 / sim_seconds.max(1e-12),
        bit_identical,
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = flag(&args, "--seed")
        .map(|v| v.parse().expect("--seed S"))
        .unwrap_or(SEED);
    let out = flag(&args, "--out").unwrap_or("BENCH_scale.json").to_string();
    let sizes: Vec<usize> = flag(&args, "--sizes")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sizes n1,n2,..."))
                .collect()
        })
        .unwrap_or_else(|| {
            if smoke {
                vec![10_000, 100_000]
            } else {
                vec![10_000, 50_000, 200_000, 1_000_000]
            }
        });

    println!("scale sweep over {sizes:?} gates (tiled generator, seed {seed})");
    let mut rows = Vec::new();
    for &target in &sizes {
        let row = bench_size(target, seed);
        println!(
            "  {:>9} gates  {:>6.1} B/gate  build {:>6.2}s  parse {:>6.2}s  \
             cop {:>10.0} evals/s  sim {:>7.1} pat/s  identical {}",
            row.gates,
            row.bytes_per_gate,
            row.build_seconds,
            row.parse_levelize_seconds,
            row.cop_evals_per_sec,
            row.sim_patterns_per_sec,
            row.bit_identical,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"scale_bytes_per_gate_and_throughput\",\n  \"note\": \"Rows sweep the tiled synthetic generator (wrt_workloads::tiled, deterministic by target_gates+seed) from 10^4 toward 10^6 gates. bytes_per_gate comes from Circuit::memory_footprint(), the exact capacity-based accounting of every arena of the flat circuit core (kinds, fanin/fanout CSR, name arena + sorted index, level CSR, interface arrays); the workspace forbids unsafe code, so this analytic shim stands in for a global-allocator hook. The bench_guard rule requires bytes_per_gate flat-or-decreasing across rows (rows are ordered by increasing size). Throughputs expose superlinear time terms: parse_levelize_seconds is a full .bench parse of the written netlist including levelization; cop_evals_per_sec is one full COP forward+backward pass (2 node evaluations per node); sim_patterns_per_sec is event-driven PPSFP over a fixed probe fault list. bit_identical re-checks IncrementalCop against the stateless CopEngine at every size. Wall-clock fields are host-dependent; per-gate and per-eval rates are comparable across rows on one host.\",\n  \"seed\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        seed,
        smoke,
        body.join(",\n"),
    );
    std::fs::write(&out, json).expect("write BENCH_scale.json");
    println!("wrote {out}");
}

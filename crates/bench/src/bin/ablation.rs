//! Ablation of the two additions our OPTIMIZE makes on top of the
//! paper's §4 procedure: symmetry-breaking start jitter and coordinate
//! under-relaxation (damping).  EXPERIMENTS.md's "known divergences"
//! entry 4 documents why they exist; this binary shows what happens
//! without them.
//!
//! Run with `cargo run --release -p wrt-bench --bin ablation`.

use wrt_core::OptimizeConfig;
use wrt_estimate::CopEngine;

fn run(name: &str, config: &OptimizeConfig) -> (f64, f64) {
    let circuit = wrt_workloads::by_name(name).expect("registered");
    let faults = wrt_bench::experiment_faults(&circuit);
    let mut engine = CopEngine::new();
    let result = wrt_core::optimize(&circuit, &faults, &mut engine, config);
    (result.initial_length, result.final_length)
}

fn main() {
    println!("Optimizer ablation: start jitter and damping");
    println!();
    println!(
        "  {:<10} {:>14} {:>14} {:>14} {:>14}",
        "Circuit", "initial", "default", "no jitter", "no damping"
    );
    let default = wrt_bench::experiment_config();
    let no_jitter = OptimizeConfig {
        jitter: 0.0,
        ..default.clone()
    };
    let no_damping = OptimizeConfig {
        damping: 1.0,
        ..default.clone()
    };
    for row in wrt_bench::paper::starred() {
        let (initial, with_both) = run(row.name, &default);
        let (_, without_jitter) = run(row.name, &no_jitter);
        let (_, without_damping) = run(row.name, &no_damping);
        println!(
            "  {:<10} {:>14} {:>14} {:>14} {:>14}",
            row.paper_name,
            wrt_bench::fmt_sci(initial),
            wrt_bench::fmt_sci(with_both),
            wrt_bench::fmt_sci(without_jitter),
            wrt_bench::fmt_sci(without_damping),
        );
    }
    println!();
    println!("damping is load-bearing: without it C7552's coordinate descent");
    println!("zigzags and stalls orders of magnitude short.  Jitter is");
    println!("insurance for *exactly* symmetric circuits (pure equality");
    println!("comparators stall at the 0.5 saddle without it, cf. the unit");
    println!("test in wrt-core); on these workloads, whose side logic already");
    println!("breaks symmetry, it costs a small factor.");
}

//! The introduction's side claim: random tests also catch faults outside
//! the single-stuck-at model — multiple faults in particular.
//!
//! For each starred circuit, draw random double and triple stuck-at
//! faults and measure how many the *optimized* weighted random test
//! detects within the paper's pattern budget, compared to the single
//! stuck-at coverage.
//!
//! Run with `cargo run --release -p wrt-bench --bin multiple`.

use wrt_sim::{multiple_fault_coverage, random_multiples, WeightedPatterns};

fn main() {
    println!("Multiple-fault coverage of optimized random patterns");
    println!();
    println!(
        "  {:<10} {:>9} {:>10} {:>10} {:>10}",
        "Circuit", "patterns", "singles", "doubles", "triples"
    );
    for row in wrt_bench::paper::starred() {
        // Keep the heavy full-pass simulation affordable: sample counts
        // are modest and the budget is capped.
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let budget = row.sim_patterns.expect("starred").min(4_000);
        let optimized = wrt_bench::optimize_circuit(&circuit, &faults);
        let weights = wrt_core::quantize_weights(&optimized.weights, 0.05);

        let singles =
            wrt_bench::simulate_coverage(&circuit, &faults, &weights, budget, 0xD0)
                .coverage();
        let base: Vec<_> = faults.iter().map(|(_, f)| f).collect();
        let mut multi_cov = Vec::new();
        for multiplicity in [2usize, 3] {
            let multiples = random_multiples(&base, multiplicity, 60, 0xFEED);
            let coverage = multiple_fault_coverage(
                &circuit,
                &multiples,
                WeightedPatterns::new(weights.clone(), 0xD1),
                budget,
            );
            multi_cov.push(coverage);
        }
        println!(
            "  {:<10} {:>9} {:>9.1} % {:>9.1} % {:>9.1} %",
            row.paper_name,
            budget,
            singles * 100.0,
            multi_cov[0] * 100.0,
            multi_cov[1] * 100.0
        );
    }
    println!();
    println!("multiple faults are detected at least as well as singles —");
    println!("the paper's introduction claim about non-modeled faults.");
}

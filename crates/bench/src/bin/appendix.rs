//! Appendix: optimized input probabilities, quantized to the 0.05 grid,
//! for S1 and the C7552 analogue — the same artifact the paper prints so
//! "a suspicious reader may verify" the coverage claims.
//!
//! Run with `cargo run --release -p wrt-bench --bin appendix`.

fn main() {
    for name in ["s1", "c7552ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let result = wrt_bench::optimize_circuit(&circuit, &faults);
        let quantized = wrt_core::quantize_weights(&result.weights, 0.05);

        println!("Optimized input probabilities for the circuit {name}");
        println!();
        // Group consecutive inputs with equal probability, paper style.
        let names: Vec<&str> = circuit
            .inputs()
            .iter()
            .map(|&i| circuit.node(i).name())
            .collect();
        let mut run_start = 0;
        for i in 1..=quantized.len() {
            if i == quantized.len() || (quantized[i] - quantized[run_start]).abs() > 1e-9 {
                let label = if i - run_start == 1 {
                    names[run_start].to_string()
                } else {
                    format!("{}-{}", names[run_start], names[i - 1])
                };
                println!("  {label:<12} {:.2}", quantized[run_start]);
                run_start = i;
            }
        }
        println!();
    }
}

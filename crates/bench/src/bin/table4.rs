//! Table 4: fault coverage by simulation of optimized random patterns
//! (starred circuits, weights quantized to the appendix's 0.05 grid).
//!
//! Run with `cargo run --release -p wrt-bench --bin table4`.

fn main() {
    println!("Table 4: fault coverage, optimized random patterns (0.05 grid)");
    println!();
    println!(
        "  {:<10} {:>9} {:>12} {:>10}",
        "Circuit", "patterns", "measured", "paper"
    );
    for row in wrt_bench::paper::starred() {
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let patterns = row.sim_patterns.expect("starred rows simulate");
        let optimized = wrt_bench::optimize_circuit(&circuit, &faults);
        let weights = wrt_core::quantize_weights(&optimized.weights, 0.05);
        let result =
            wrt_bench::simulate_coverage(&circuit, &faults, &weights, patterns, 0xBEEF);
        println!(
            "  {:<10} {:>9} {:>12} {:>9.1} %",
            row.paper_name,
            patterns,
            wrt_bench::fmt_pct(result.coverage()),
            row.optimized_coverage.expect("starred"),
        );
    }
}

//! Machine-readable optimizer benchmark: full COP vs incremental COP vs
//! the batched pending-overlay COP.
//!
//! Runs the PROTEST-style optimizer three times per circuit — once with
//! the full-recompute [`CopEngine`], once with the per-move
//! cone-restricted [`IncrementalCop`] (PR 3 behavior, `--commit-batch 1`)
//! and once with the batched pending-overlay engine (`--commit-batch
//! K`) — and writes `BENCH_optimize.json` (circuit, inputs, sweeps,
//! engine calls, node evaluations per engine, pending-overlay
//! materialization/frontier stats, wall time, bit-identity of the
//! resulting descents), so the optimizer hot path's trajectory is
//! tracked in a machine-readable artifact from PR to PR, alongside
//! `BENCH_sim.json` for the fault-simulation path.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_optimize`.
//!
//! ```text
//! bench_optimize [--circuits a,b,...] [--sweeps N] [--commit-batch K]
//!                [--out PATH] [--smoke]
//! ```
//!
//! Defaults: the four largest workload circuits (including the
//! wide-cone c5315ish and the globally connected c6288ish multiplier —
//! the two circuits the pending overlay exists for), the standard
//! experiment config, batch 4, `BENCH_optimize.json` in the current
//! directory.  `--smoke` shrinks everything (one small circuit, few
//! sweeps) for CI.

use std::time::Instant;

use wrt_bench::experiment_faults;
use wrt_circuit::Circuit;
use wrt_core::{optimize, OptimizeConfig, OptimizeResult};
use wrt_estimate::{CopEngine, IncrementalCop, IncrementalStats};

struct Row {
    circuit: String,
    inputs: usize,
    gates: usize,
    nodes: usize,
    faults: usize,
    sweeps: usize,
    engine_calls: usize,
    full_node_evals: u64,
    incremental_node_evals: u64,
    incremental_forward_evals: u64,
    incremental_backward_evals: u64,
    pending_node_evals: u64,
    pending_stats: IncrementalStats,
    commit_batch: usize,
    full_seconds: f64,
    incremental_seconds: f64,
    pending_seconds: f64,
    improvement_factor: f64,
    bit_identical: bool,
}

impl Row {
    /// Node-evaluation reduction of the per-move incremental engine vs
    /// full recompute (the machine-independent measure of the
    /// O(circuit) → O(cone) win).
    fn eval_reduction(&self) -> f64 {
        self.full_node_evals as f64 / self.incremental_node_evals as f64
    }

    /// Node-evaluation reduction of the batched pending-overlay engine
    /// vs the per-move incremental engine (the PR 5 lever: deferred
    /// commits sharing one materialization pass).
    fn pending_eval_reduction(&self) -> f64 {
        self.incremental_node_evals as f64 / self.pending_node_evals as f64
    }

    fn speedup(&self) -> f64 {
        self.full_seconds / self.incremental_seconds
    }

    fn pending_speedup(&self) -> f64 {
        self.incremental_seconds / self.pending_seconds
    }

    fn avg_union_frontier(&self) -> f64 {
        self.pending_stats.union_frontier_sum as f64
            / (self.pending_stats.materializations.max(1)) as f64
    }

    fn evals_per_sweep(&self, evals: u64) -> f64 {
        evals as f64 / (self.sweeps.max(1)) as f64
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"circuit\": \"{}\",\n      \"inputs\": {},\n      \"gates\": {},\n      \"nodes\": {},\n      \"faults\": {},\n      \"sweeps\": {},\n      \"engine_calls\": {},\n      \"full_node_evals\": {},\n      \"incremental_node_evals\": {},\n      \"incremental_forward_evals\": {},\n      \"incremental_backward_evals\": {},\n      \"full_node_evals_per_sweep\": {:.1},\n      \"incremental_node_evals_per_sweep\": {:.1},\n      \"eval_reduction\": {:.2},\n      \"pending_overlay\": {{\n        \"commit_batch\": {},\n        \"node_evals\": {},\n        \"forward_evals\": {},\n        \"backward_evals\": {},\n        \"pending_moves\": {},\n        \"cache_hits\": {},\n        \"materializations\": {},\n        \"union_frontier_avg\": {:.1},\n        \"union_frontier_peak\": {},\n        \"eval_reduction_vs_incremental\": {:.2},\n        \"eval_reduction_vs_full\": {:.2},\n        \"seconds\": {:.6},\n        \"speedup_vs_incremental\": {:.3}\n      }},\n      \"full_seconds\": {:.6},\n      \"incremental_seconds\": {:.6},\n      \"speedup\": {:.3},\n      \"improvement_factor\": {:.3},\n      \"bit_identical\": {}\n    }}",
            self.circuit,
            self.inputs,
            self.gates,
            self.nodes,
            self.faults,
            self.sweeps,
            self.engine_calls,
            self.full_node_evals,
            self.incremental_node_evals,
            self.incremental_forward_evals,
            self.incremental_backward_evals,
            self.evals_per_sweep(self.full_node_evals),
            self.evals_per_sweep(self.incremental_node_evals),
            self.eval_reduction(),
            self.commit_batch,
            self.pending_node_evals,
            self.pending_stats.forward_evaluations,
            self.pending_stats.backward_evaluations,
            self.pending_stats.pending_moves,
            self.pending_stats.pending_cache_hits,
            self.pending_stats.materializations,
            self.avg_union_frontier(),
            self.pending_stats.union_frontier_peak,
            self.pending_eval_reduction(),
            self.full_node_evals as f64 / self.pending_node_evals as f64,
            self.pending_seconds,
            self.pending_speedup(),
            self.full_seconds,
            self.incremental_seconds,
            self.speedup(),
            self.improvement_factor,
            self.bit_identical,
        )
    }
}

/// Bit-identity of two optimizer runs: same weights, lengths and history.
fn identical(a: &OptimizeResult, b: &OptimizeResult) -> bool {
    a.weights == b.weights
        && a.final_length.to_bits() == b.final_length.to_bits()
        && a.initial_length.to_bits() == b.initial_length.to_bits()
        && a.sweeps == b.sweeps
        && a.engine_calls == b.engine_calls
}

fn bench_circuit(circuit: &Circuit, config: &OptimizeConfig, commit_batch: usize) -> Row {
    let faults = experiment_faults(circuit);

    let mut full_engine = CopEngine::new();
    let start = Instant::now();
    let full = optimize(circuit, &faults, &mut full_engine, config);
    let full_seconds = start.elapsed().as_secs_f64();
    // Every CopEngine estimate is one forward plus one backward pass over
    // the whole netlist; `engine_calls` counts estimates (a pair = 2).
    let full_node_evals = full.engine_calls as u64 * 2 * circuit.num_nodes() as u64;

    let mut incremental_engine = IncrementalCop::new();
    let start = Instant::now();
    let incremental = optimize(circuit, &faults, &mut incremental_engine, config);
    let incremental_seconds = start.elapsed().as_secs_f64();
    let stats = incremental_engine.stats();

    let mut pending_engine = IncrementalCop::new().with_commit_batch(commit_batch);
    let start = Instant::now();
    let pending = optimize(circuit, &faults, &mut pending_engine, config);
    let pending_seconds = start.elapsed().as_secs_f64();
    let pending_stats = pending_engine.stats();

    Row {
        circuit: circuit.name().to_string(),
        inputs: circuit.num_inputs(),
        gates: circuit.num_gates(),
        nodes: circuit.num_nodes(),
        faults: faults.len(),
        sweeps: full.sweeps.len(),
        engine_calls: full.engine_calls,
        full_node_evals,
        incremental_node_evals: stats.node_evaluations,
        incremental_forward_evals: stats.forward_evaluations,
        incremental_backward_evals: stats.backward_evaluations,
        pending_node_evals: pending_stats.node_evaluations,
        pending_stats,
        commit_batch,
        full_seconds,
        incremental_seconds,
        pending_seconds,
        improvement_factor: full.improvement_factor(),
        bit_identical: identical(&full, &incremental) && identical(&full, &pending),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag(&args, "--out")
        .unwrap_or("BENCH_optimize.json")
        .to_string();
    let circuits: Vec<String> = flag(&args, "--circuits")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            if smoke {
                vec!["s1".into()]
            } else {
                vec![
                    "c2670ish".into(),
                    "c5315ish".into(),
                    "c6288ish".into(),
                    "c7552ish".into(),
                ]
            }
        });
    let mut config = OptimizeConfig::default();
    if smoke {
        config.max_sweeps = 4;
    }
    if let Some(sweeps) = flag(&args, "--sweeps") {
        config.max_sweeps = sweeps.parse().expect("--sweeps N");
    }
    let commit_batch: usize = flag(&args, "--commit-batch")
        .map(|v| v.parse().expect("--commit-batch K"))
        .unwrap_or(4);

    println!(
        "optimizer PREPARE hot path: full COP vs incremental COP vs batched \
         pending-overlay COP (max {} sweeps, batch {commit_batch})",
        config.max_sweeps
    );
    let mut rows = Vec::new();
    for name in &circuits {
        let circuit = wrt_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let row = bench_circuit(&circuit, &config, commit_batch);
        println!(
            "  {:<10} {:>4} inputs {:>5} nodes  evals {:>12} -> {:>10} ({:>5.1}x) -> {:>10} \
             ({:>4.2}x vs inc)  mat {:>4} avg frontier {:>6.0}  identical {}",
            row.circuit,
            row.inputs,
            row.nodes,
            row.full_node_evals,
            row.incremental_node_evals,
            row.eval_reduction(),
            row.pending_node_evals,
            row.pending_eval_reduction(),
            row.pending_stats.materializations,
            row.avg_union_frontier(),
            row.bit_identical,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"optimize_full_vs_incremental_vs_pending_cop\",\n  \"note\": \"eval_reduction is the machine-independent metric: COP node evaluations per optimizer run, full recompute vs cone-restricted per-move incremental (bit-identical descents). pending_overlay tracks the batched engine: coordinate moves are deferred (free) into a union-of-cones frontier and resolved in one shared materialization pass per batch, so its eval_reduction_vs_incremental isolates the batching win — largest on the wide-cone c5315ish and the globally connected c6288ish multiplier, the two circuits whose per-move commits (or stateless fallbacks) used to bound the PR 3 engine. cache_hits counts forward recomputations skipped by the cross-query pending value cache (union-frontier values reused across query epochs, invalidated cone-grained per deferred move) — verdict: the extra stamp layer pays, cutting pending forward evals 15.5% and total pending evals 7% on the acceptance circuit c5315ish. Read alongside BENCH_sim.json, which tracks the fault-simulation (Monte-Carlo engine) side of the same hot path.\",\n  \"max_sweeps\": {},\n  \"commit_batch\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        config.max_sweeps,
        commit_batch,
        smoke,
        body.join(",\n"),
    );
    std::fs::write(&out, json).expect("write BENCH_optimize.json");
    println!("wrote {out}");

    let all_identical = rows.iter().all(|r| r.bit_identical);
    assert!(
        all_identical,
        "an incremental descent diverged from the full engine"
    );
    if commit_batch > 1 {
        let pending_always_reduces = rows
            .iter()
            .all(|r| r.pending_node_evals < r.incremental_node_evals);
        assert!(
            pending_always_reduces,
            "the pending overlay must strictly reduce node evaluations vs per-move commits"
        );
    } else {
        // `--commit-batch 0|1` runs the per-move engine twice: a useful
        // baseline sanity check, whose work must match exactly.
        assert!(
            rows.iter()
                .all(|r| r.pending_node_evals == r.incremental_node_evals),
            "commit batch {commit_batch} must reproduce the per-move engine's work exactly"
        );
    }
}

//! Table 2: fault coverage by simulation of conventional random patterns
//! (starred circuits, the paper's pattern counts).
//!
//! Run with `cargo run --release -p wrt-bench --bin table2`.

fn main() {
    println!("Table 2: fault coverage, conventional random patterns (p = 0.5)");
    println!();
    println!(
        "  {:<10} {:>9} {:>12} {:>10}",
        "Circuit", "patterns", "measured", "paper"
    );
    for row in wrt_bench::paper::starred() {
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let patterns = row.sim_patterns.expect("starred rows simulate");
        let result = wrt_bench::simulate_coverage(
            &circuit,
            &faults,
            &vec![0.5; circuit.num_inputs()],
            patterns,
            0xC0DE,
        );
        println!(
            "  {:<10} {:>9} {:>12} {:>9.1} %",
            row.paper_name,
            patterns,
            wrt_bench::fmt_pct(result.coverage()),
            row.conventional_coverage.expect("starred"),
        );
    }
}

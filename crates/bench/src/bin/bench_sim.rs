//! Machine-readable PPSFP throughput benchmark: serial vs sharded.
//!
//! Writes `BENCH_sim.json` (circuit, fault count, patterns/sec for the
//! serial and sharded engines, thread count, speedup, and a bit-identity
//! check), so the perf trajectory of the fault simulator is tracked in a
//! machine-readable artifact from PR to PR.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_sim`.
//!
//! ```text
//! bench_sim [--patterns N] [--threads T] [--circuits a,b,...] [--out PATH]
//! ```
//!
//! Defaults: 2048 patterns, 4 threads, the two largest workload circuits,
//! `BENCH_sim.json` in the current directory.

use std::time::Instant;

use wrt_circuit::Circuit;
use wrt_fault::FaultList;
use wrt_sim::{available_threads, fault_coverage, fault_coverage_sharded, WeightedPatterns};

const SEED: u64 = 0xC0DE;

struct Row {
    circuit: String,
    inputs: usize,
    gates: usize,
    faults: usize,
    patterns: u64,
    threads: usize,
    serial_seconds: f64,
    sharded_seconds: f64,
    identical: bool,
}

impl Row {
    fn serial_pps(&self) -> f64 {
        self.patterns as f64 / self.serial_seconds
    }

    fn sharded_pps(&self) -> f64 {
        self.patterns as f64 / self.sharded_seconds
    }

    fn speedup(&self) -> f64 {
        self.serial_seconds / self.sharded_seconds
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"circuit\": \"{}\",\n      \"inputs\": {},\n      \"gates\": {},\n      \"faults\": {},\n      \"patterns\": {},\n      \"threads\": {},\n      \"serial_seconds\": {:.6},\n      \"sharded_seconds\": {:.6},\n      \"serial_patterns_per_sec\": {:.1},\n      \"sharded_patterns_per_sec\": {:.1},\n      \"speedup\": {:.3},\n      \"bit_identical\": {}\n    }}",
            self.circuit,
            self.inputs,
            self.gates,
            self.faults,
            self.patterns,
            self.threads,
            self.serial_seconds,
            self.sharded_seconds,
            self.serial_pps(),
            self.sharded_pps(),
            self.speedup(),
            self.identical,
        )
    }
}

/// Best-of-`reps` wall-clock seconds for `f` (one warm-up run).
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn bench_circuit(circuit: &Circuit, patterns: u64, threads: usize) -> Row {
    let faults = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let source = || WeightedPatterns::equiprobable(circuit.num_inputs(), SEED);
    let (serial_seconds, serial) =
        time_best(2, || fault_coverage(circuit, &faults, source(), patterns, true));
    let (sharded_seconds, sharded) = time_best(2, || {
        fault_coverage_sharded(circuit, &faults, source(), patterns, true, threads)
    });
    Row {
        circuit: circuit.name().to_string(),
        inputs: circuit.num_inputs(),
        gates: circuit.num_gates(),
        faults: faults.len(),
        patterns,
        threads,
        serial_seconds,
        sharded_seconds,
        identical: serial.detected_at() == sharded.detected_at(),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let patterns: u64 = flag(&args, "--patterns")
        .map(|v| v.parse().expect("--patterns N"))
        .unwrap_or(2048);
    let threads: usize = flag(&args, "--threads")
        .map(|v| v.parse().expect("--threads T"))
        .unwrap_or(4);
    let out = flag(&args, "--out").unwrap_or("BENCH_sim.json").to_string();
    let circuits: Vec<String> = flag(&args, "--circuits")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["c5315ish".into(), "c6288ish".into(), "c7552ish".into()]);

    println!(
        "PPSFP serial vs sharded ({patterns} patterns, {threads} threads, \
         {} cores available)",
        available_threads()
    );
    let mut rows = Vec::new();
    for name in &circuits {
        let circuit = wrt_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let row = bench_circuit(&circuit, patterns, threads);
        println!(
            "  {:<10} {:>6} faults  serial {:>10.1} pat/s  sharded {:>10.1} pat/s  \
             speedup {:.2}x  identical {}",
            row.circuit,
            row.faults,
            row.serial_pps(),
            row.sharded_pps(),
            row.speedup(),
            row.identical,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"ppsfp_serial_vs_sharded\",\n  \"patterns\": {},\n  \"threads\": {},\n  \"available_parallelism\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        patterns,
        threads,
        available_threads(),
        body.join(",\n"),
    );
    std::fs::write(&out, json).expect("write BENCH_sim.json");
    println!("wrote {out}");
}

//! Machine-readable PPSFP benchmark: dense cone walk vs event-driven
//! sparse propagation over multi-word superblocks.
//!
//! Writes `BENCH_sim.json`.  The headline metric is **machine-independent**:
//! gate evaluations per detected fault, dense vs event (`eval_reduction`).
//! That headline combines two effects — sparse scheduling (only nodes the
//! fault effect reaches are evaluated, stopping when the frontier dies)
//! and superblock amortization (one `[u64; W]` evaluation covers `W`
//! dense blocks' worth of patterns) — so the artifact also records an
//! event run at `W = 1` (`sparsity_reduction`) to separate the two, the
//! frontier die-out rate, and a bit-identity check of all engines'
//! coverage results.  Wall-clock fields depend on the host and are
//! reported alongside.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_sim`.
//!
//! ```text
//! bench_sim [--patterns N] [--block-words W] [--threads T]
//!           [--circuits a,b,...] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 2048 patterns, `W = 4` (256 patterns per event pass), 4
//! threads for the sharded-event row, the four large workload circuits,
//! `BENCH_sim.json` in the current directory.  `--smoke` runs a
//! scaled-down version for CI (small circuits, few patterns).

use std::time::Instant;

use wrt_circuit::Circuit;
use wrt_fault::FaultList;
use wrt_sim::{available_threads, fault_coverage_opts, SimOptions, SimStats, WeightedPatterns};

const SEED: u64 = 0xC0DE;

struct Row {
    circuit: String,
    inputs: usize,
    gates: usize,
    faults: usize,
    detected: usize,
    patterns: u64,
    block_words: usize,
    threads: usize,
    dense_seconds: f64,
    event_seconds: f64,
    event_sharded_seconds: f64,
    dense_stats: SimStats,
    event_stats: SimStats,
    /// Event engine at `W = 1`: same block granularity as dense, so the
    /// eval ratio against it isolates the pure scheduling-sparsity win.
    event_w1_stats: SimStats,
    identical: bool,
}

impl Row {
    fn dense_evals_per_detected(&self) -> f64 {
        self.dense_stats.node_evals as f64 / self.detected.max(1) as f64
    }

    fn event_evals_per_detected(&self) -> f64 {
        self.event_stats.node_evals as f64 / self.detected.max(1) as f64
    }

    /// The machine-independent headline: dense ÷ event gate evaluations.
    /// Combines scheduling sparsity with superblock amortization; see
    /// [`Row::sparsity_reduction`] for the sparsity share alone.
    fn eval_reduction(&self) -> f64 {
        self.dense_stats.node_evals as f64 / self.event_stats.node_evals.max(1) as f64
    }

    /// Dense ÷ event-at-`W = 1` gate evaluations: both engines work in
    /// 64-pattern blocks here, so this is the pure event-scheduling win
    /// (nodes the fault effect never reaches are never evaluated).
    fn sparsity_reduction(&self) -> f64 {
        self.dense_stats.node_evals as f64 / self.event_w1_stats.node_evals.max(1) as f64
    }

    /// Scheduled (event, at the benchmarked `W`) vs cone (dense, `W = 1`)
    /// node evaluations — the inverse of `eval_reduction`.  Note the two
    /// sides run at different block granularities, so this folds the
    /// 1/`W` pass-count amortization into the per-cone reach; the
    /// equal-granularity reach fraction is `1 / sparsity_reduction`.
    fn scheduled_vs_cone_ratio(&self) -> f64 {
        self.event_stats.node_evals as f64 / self.dense_stats.node_evals.max(1) as f64
    }

    fn wall_speedup(&self) -> f64 {
        self.dense_seconds / self.event_seconds
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"circuit\": \"{}\",\n      \"inputs\": {},\n      \"gates\": {},\n      \"faults\": {},\n      \"detected_faults\": {},\n      \"patterns\": {},\n      \"block_words\": {},\n      \"dense_seconds\": {:.6},\n      \"event_seconds\": {:.6},\n      \"wall_speedup\": {:.3},\n      \"dense_node_evals\": {},\n      \"event_node_evals\": {},\n      \"event_w1_node_evals\": {},\n      \"dense_evals_per_detected\": {:.1},\n      \"event_evals_per_detected\": {:.1},\n      \"eval_reduction\": {:.3},\n      \"sparsity_reduction\": {:.3},\n      \"scheduled_vs_cone_ratio\": {:.4},\n      \"frontier_dieout_rate\": {:.4},\n      \"unexcited_rate\": {:.4},\n      \"threads\": {},\n      \"event_sharded_seconds\": {:.6},\n      \"bit_identical\": {}\n    }}",
            self.circuit,
            self.inputs,
            self.gates,
            self.faults,
            self.detected,
            self.patterns,
            self.block_words,
            self.dense_seconds,
            self.event_seconds,
            self.wall_speedup(),
            self.dense_stats.node_evals,
            self.event_stats.node_evals,
            self.event_w1_stats.node_evals,
            self.dense_evals_per_detected(),
            self.event_evals_per_detected(),
            self.eval_reduction(),
            self.sparsity_reduction(),
            self.scheduled_vs_cone_ratio(),
            self.event_stats.frontier_dieout_rate(),
            self.event_stats.unexcited as f64 / self.event_stats.fault_blocks.max(1) as f64,
            self.threads,
            self.event_sharded_seconds,
            self.identical,
        )
    }
}

/// Best-of-`reps` wall-clock seconds for `f` (one warm-up run).
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn bench_circuit(circuit: &Circuit, patterns: u64, block_words: usize, threads: usize) -> Row {
    let faults = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let source = || WeightedPatterns::equiprobable(circuit.num_inputs(), SEED);
    let (dense_seconds, (dense, dense_stats)) = time_best(2, || {
        fault_coverage_opts(circuit, &faults, source(), patterns, true, SimOptions::dense())
    });
    let event_opts = SimOptions::event(block_words);
    let (event_seconds, (event, event_stats)) = time_best(2, || {
        fault_coverage_opts(circuit, &faults, source(), patterns, true, event_opts)
    });
    // One untimed event pass at W = 1: same block granularity as dense,
    // isolating the scheduling-sparsity share of the eval reduction.
    let (event_w1, event_w1_stats) =
        fault_coverage_opts(circuit, &faults, source(), patterns, true, SimOptions::event(1));
    let (event_sharded_seconds, (event_sharded, _)) = time_best(2, || {
        wrt_sim::fault_coverage_sharded_opts(
            circuit,
            &faults,
            source(),
            patterns,
            true,
            threads,
            event_opts,
        )
    });
    Row {
        circuit: circuit.name().to_string(),
        inputs: circuit.num_inputs(),
        gates: circuit.num_gates(),
        faults: faults.len(),
        detected: dense.num_detected(),
        patterns,
        block_words,
        threads,
        dense_seconds,
        event_seconds,
        event_sharded_seconds,
        dense_stats,
        event_stats,
        event_w1_stats,
        identical: dense.detected_at() == event.detected_at()
            && dense.detected_at() == event_w1.detected_at()
            && dense.detected_at() == event_sharded.detected_at(),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let patterns: u64 = flag(&args, "--patterns")
        .map(|v| v.parse().expect("--patterns N"))
        .unwrap_or(if smoke { 512 } else { 2048 });
    let block_words: usize = flag(&args, "--block-words")
        .map(|v| v.parse().expect("--block-words W"))
        .unwrap_or(4);
    let threads: usize = flag(&args, "--threads")
        .map(|v| v.parse().expect("--threads T"))
        .unwrap_or(4);
    let out = flag(&args, "--out").unwrap_or("BENCH_sim.json").to_string();
    let circuits: Vec<String> = flag(&args, "--circuits")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            if smoke {
                vec!["s1".into(), "c880ish".into()]
            } else {
                vec![
                    "c2670ish".into(),
                    "c5315ish".into(),
                    "c6288ish".into(),
                    "c7552ish".into(),
                ]
            }
        });

    println!(
        "PPSFP dense vs event-driven ({patterns} patterns, W = {block_words}, \
         {threads} threads for the sharded row, {} cores available)",
        available_threads()
    );
    let mut rows = Vec::new();
    for name in &circuits {
        let circuit = wrt_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let row = bench_circuit(&circuit, patterns, block_words, threads);
        println!(
            "  {:<10} {:>6} faults  evals/detected: dense {:>9.1} event {:>8.1} \
             ({:.2}x fewer; {:.2}x from sparsity)  die-out {:>5.1} %  wall {:.2}x  identical {}",
            row.circuit,
            row.faults,
            row.dense_evals_per_detected(),
            row.event_evals_per_detected(),
            row.eval_reduction(),
            row.sparsity_reduction(),
            row.event_stats.frontier_dieout_rate() * 100.0,
            row.wall_speedup(),
            row.identical,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"ppsfp_dense_vs_event\",\n  \"note\": \"eval_reduction is the machine-independent headline: gate evaluations per detected fault, dense cone walk (64-pattern blocks) vs event-driven propagation at block_words-word superblocks, over the identical pattern stream. It combines two effects: scheduling sparsity (only nodes the fault effect reaches are evaluated, stopping when the frontier drains - frontier_dieout_rate of excited passes died before a PO) and superblock amortization (one [u64; W] evaluation covers W dense blocks; each event eval does W words of lane work). sparsity_reduction (dense vs event at W = 1, equal granularity) isolates the sparsity share; scheduled_vs_cone_ratio = event/dense evals at the benchmarked W folds both effects. bit_identical asserts dense, event-W1, event, and sharded-event coverage agree exactly. Wall-clock fields are host-dependent; event_sharded_seconds uses `threads` workers and is fan-out overhead on a 1-core container.\",\n  \"patterns\": {},\n  \"block_words\": {},\n  \"threads\": {},\n  \"available_parallelism\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        patterns,
        block_words,
        threads,
        available_threads(),
        smoke,
        body.join(",\n"),
    );
    std::fs::write(&out, json).expect("write BENCH_sim.json");
    println!("wrote {out}");
}

//! Machine-readable PPSFP benchmark: dense cone walk vs event-driven
//! sparse propagation over multi-word superblocks vs the 2D tiled
//! engine (fault shards × pattern stripes with dense multi-fault
//! batching).
//!
//! Writes `BENCH_sim.json`.  The headline metrics are
//! **machine-independent**: gate evaluations per detected fault, dense
//! vs event (`eval_reduction`) and dense vs the 2D tiled engine
//! (`eval_reduction_2d`).  The 1D headline combines two effects — sparse
//! scheduling (only nodes the fault effect reaches are evaluated,
//! stopping when the frontier dies) and superblock amortization (one
//! `[u64; W]` evaluation covers `W` dense blocks' worth of patterns) —
//! so the artifact also records an event run at `W = 1`
//! (`sparsity_reduction`) to separate the two, the frontier die-out
//! rate, and a bit-identity check of all engines' coverage results.
//! Wall-clock fields depend on the host and are reported alongside.
//!
//! Circuits too large for the dense engine's per-cone storage report a
//! **derived** dense baseline instead of a measured one: a profiled
//! event run records how many 64-pattern blocks each fault stayed
//! excited and undetected, and the dense cost is exactly
//! `Σ excited_blocks(f) × (cone(f) − 1)` — the dense engine's own
//! accounting identity — with the wall-clock fields `null`.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_sim`.
//!
//! ```text
//! bench_sim [--patterns N] [--block-words W] [--threads T]
//!           [--circuits a,b,...] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 2048 patterns, `W = 4` (256 patterns per event pass), 4
//! threads for the sharded-event and tiled rows, the four large workload
//! circuits plus the 120k-gate `tiled_120000_7` scale circuit,
//! `BENCH_sim.json` in the current directory.  `--smoke` runs a
//! scaled-down version for CI (small circuits, few patterns) — the 2D
//! tiled row is exercised in both modes.

use std::collections::HashMap;
use std::time::Instant;

use wrt_circuit::{transitive_fanout, Circuit};
use wrt_fault::FaultList;
use wrt_sim::{
    available_threads, fault_coverage_opts, fault_coverage_tiled, superblock_split, BatchMode,
    EventSimulator, FaultWorklist, PatternSource, SimOptions, SimStats, SuperBlock, TileOptions,
    TileStats, WeightedPatterns,
};

const SEED: u64 = 0xC0DE;

/// Above this node count the dense engine's per-cone storage (and its
/// wall-clock) is prohibitive; the dense baseline is derived instead.
const DENSE_DERIVE_NODES: usize = 20_000;

struct Row {
    circuit: String,
    inputs: usize,
    gates: usize,
    faults: usize,
    detected: usize,
    patterns: u64,
    block_words: usize,
    threads: usize,
    /// `None` when the dense baseline is derived, not measured.
    dense_seconds: Option<f64>,
    event_seconds: f64,
    event_sharded_seconds: f64,
    tiled_seconds: f64,
    /// Measured or derived dense gate evals (see `dense_baseline`).
    dense_node_evals: u64,
    dense_baseline: &'static str,
    event_stats: SimStats,
    /// Event engine at `W = 1`: same block granularity as dense, so the
    /// eval ratio against it isolates the pure scheduling-sparsity win.
    event_w1_stats: SimStats,
    tiled_stats: TileStats,
    identical: bool,
}

impl Row {
    fn dense_evals_per_detected(&self) -> f64 {
        self.dense_node_evals as f64 / self.detected.max(1) as f64
    }

    fn event_evals_per_detected(&self) -> f64 {
        self.event_stats.node_evals as f64 / self.detected.max(1) as f64
    }

    /// The machine-independent 1D headline: dense ÷ event gate
    /// evaluations.  Combines scheduling sparsity with superblock
    /// amortization; see [`Row::sparsity_reduction`] for the sparsity
    /// share alone.
    fn eval_reduction(&self) -> f64 {
        self.dense_node_evals as f64 / self.event_stats.node_evals.max(1) as f64
    }

    /// The 2D headline: dense ÷ tiled-engine gate evaluations, the tiled
    /// side counting everything it spends — event axis, dense batch
    /// passes, classification probe, and cross-stripe re-probing of
    /// already-detected faults.
    fn eval_reduction_2d(&self) -> f64 {
        self.dense_node_evals as f64 / self.tiled_stats.sim.node_evals.max(1) as f64
    }

    /// Dense ÷ event-at-`W = 1` gate evaluations: both engines work in
    /// 64-pattern blocks here, so this is the pure event-scheduling win
    /// (nodes the fault effect never reaches are never evaluated).
    fn sparsity_reduction(&self) -> f64 {
        self.dense_node_evals as f64 / self.event_w1_stats.node_evals.max(1) as f64
    }

    /// Scheduled (event, at the benchmarked `W`) vs cone (dense, `W = 1`)
    /// node evaluations — the inverse of `eval_reduction`.  Note the two
    /// sides run at different block granularities, so this folds the
    /// 1/`W` pass-count amortization into the per-cone reach; the
    /// equal-granularity reach fraction is `1 / sparsity_reduction`.
    fn scheduled_vs_cone_ratio(&self) -> f64 {
        self.event_stats.node_evals as f64 / self.dense_node_evals.max(1) as f64
    }

    fn to_json(&self) -> String {
        let (dense_seconds, wall_speedup) = match self.dense_seconds {
            Some(s) => (format!("{s:.6}"), format!("{:.3}", s / self.event_seconds)),
            None => ("null".into(), "null".into()),
        };
        let t = &self.tiled_stats;
        format!(
            "    {{\n      \"circuit\": \"{}\",\n      \"inputs\": {},\n      \"gates\": {},\n      \"faults\": {},\n      \"detected_faults\": {},\n      \"patterns\": {},\n      \"block_words\": {},\n      \"dense_baseline\": \"{}\",\n      \"dense_seconds\": {},\n      \"event_seconds\": {:.6},\n      \"wall_speedup\": {},\n      \"dense_node_evals\": {},\n      \"event_node_evals\": {},\n      \"event_w1_node_evals\": {},\n      \"dense_evals_per_detected\": {:.1},\n      \"event_evals_per_detected\": {:.1},\n      \"eval_reduction\": {:.3},\n      \"sparsity_reduction\": {:.3},\n      \"scheduled_vs_cone_ratio\": {:.4},\n      \"frontier_dieout_rate\": {:.4},\n      \"unexcited_rate\": {:.4},\n      \"threads\": {},\n      \"event_sharded_seconds\": {:.6},\n      \"tiled_seconds\": {:.6},\n      \"tiled_node_evals\": {},\n      \"tiled_event_axis_node_evals\": {},\n      \"tiled_batch_node_evals\": {},\n      \"tiled_probe_node_evals\": {},\n      \"eval_reduction_2d\": {:.3},\n      \"tiled_block_words\": {},\n      \"pattern_stripes\": {},\n      \"fault_shards\": {},\n      \"tiles\": {},\n      \"tile_steals\": {},\n      \"batches\": {},\n      \"batch_dense_faults\": {},\n      \"bit_identical\": {}\n    }}",
            self.circuit,
            self.inputs,
            self.gates,
            self.faults,
            self.detected,
            self.patterns,
            self.block_words,
            self.dense_baseline,
            dense_seconds,
            self.event_seconds,
            wall_speedup,
            self.dense_node_evals,
            self.event_stats.node_evals,
            self.event_w1_stats.node_evals,
            self.dense_evals_per_detected(),
            self.event_evals_per_detected(),
            self.eval_reduction(),
            self.sparsity_reduction(),
            self.scheduled_vs_cone_ratio(),
            self.event_stats.frontier_dieout_rate(),
            self.event_stats.unexcited as f64 / self.event_stats.fault_blocks.max(1) as f64,
            self.threads,
            self.event_sharded_seconds,
            self.tiled_seconds,
            t.sim.node_evals,
            t.event_node_evals,
            t.batch_node_evals,
            t.probe_node_evals,
            self.eval_reduction_2d(),
            t.block_words,
            t.stripes,
            t.shards,
            t.tiles,
            t.steals,
            t.batches,
            t.batch_dense_faults,
            self.identical,
        )
    }
}

/// Best-of-`reps` wall-clock seconds for `f` after one warm-up run;
/// with `reps == 0` the warm-up itself is the (single) timed run.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let mut result = f(); // warm-up
    let mut best = start.elapsed().as_secs_f64();
    for i in 0..reps {
        let start = Instant::now();
        result = f();
        let secs = start.elapsed().as_secs_f64();
        best = if i == 0 { secs } else { best.min(secs) };
    }
    (best, result)
}

/// Derives the dense engine's exact `node_evals` without running (or even
/// constructing) it: a profiled event run with fault dropping records how
/// many 64-pattern blocks each fault stayed excited (clipped at its
/// detecting block, matching dense dropping), and the dense engine pays
/// exactly `cone(f) − 1` evals per excited block.  Cone sizes come from
/// one fanout traversal per *distinct* effect root — no per-fault cone
/// storage.
fn derived_dense_node_evals(circuit: &Circuit, faults: &FaultList, patterns: u64) -> u64 {
    let mut sim = EventSimulator::<4>::new(circuit, faults);
    sim.enable_eval_profile();
    let mut worklist = FaultWorklist::full(faults.len());
    let mut source = WeightedPatterns::equiprobable(circuit.num_inputs(), SEED);
    let mut sb = SuperBlock::<4>::empty(circuit.num_inputs());
    let mut remaining = patterns;
    let mut blocks = Vec::new();
    while remaining > 0 {
        let block = source.next_block(remaining.min(64) as u32);
        remaining -= u64::from(block.len);
        blocks.push(block);
    }
    let mut b = 0;
    while b < blocks.len() && !worklist.is_empty() {
        let take = superblock_split(&blocks[b..], 4);
        sb.refill_from_blocks(&blocks[b..b + take]);
        sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, true, |_, _| {});
        b += take;
    }
    let profile = sim.take_eval_profile().expect("profile enabled");
    let mut cone_len: HashMap<u32, u64> = HashMap::new();
    faults
        .iter()
        .map(|(_, f)| f.site.effect_root())
        .zip(&profile.excited_blocks)
        .map(|(root, &excited)| {
            let len = *cone_len
                .entry(root.index() as u32)
                .or_insert_with(|| transitive_fanout(circuit, &[root]).len() as u64);
            excited * (len - 1)
        })
        .sum()
}

fn bench_circuit(circuit: &Circuit, patterns: u64, block_words: usize, threads: usize) -> Row {
    let faults = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let source = || WeightedPatterns::equiprobable(circuit.num_inputs(), SEED);
    let event_opts = SimOptions::event(block_words);
    let derive_dense = circuit.num_nodes() > DENSE_DERIVE_NODES;
    // Big derived-baseline rows (the 10^5-gate scale circuit) get one
    // timed run per engine instead of warm-up + best-of-2: their
    // single-run wall clock is minutes, their eval counts (the numbers
    // that matter) are deterministic either way, and best-of-N would
    // triple an already-long artifact regeneration.
    let reps = if derive_dense { 0 } else { 2 };
    let (event_seconds, (event, event_stats)) = time_best(reps, || {
        fault_coverage_opts(circuit, &faults, source(), patterns, true, event_opts)
    });
    let (dense_seconds, dense_node_evals, dense_identical) = if derive_dense {
        (
            None,
            derived_dense_node_evals(circuit, &faults, patterns),
            true,
        )
    } else {
        let (secs, (dense, dense_stats)) = time_best(2, || {
            fault_coverage_opts(circuit, &faults, source(), patterns, true, SimOptions::dense())
        });
        (
            Some(secs),
            dense_stats.node_evals,
            dense.detected_at() == event.detected_at(),
        )
    };
    // One untimed event pass at W = 1: same block granularity as dense,
    // isolating the scheduling-sparsity share of the eval reduction.
    let (event_w1, event_w1_stats) =
        fault_coverage_opts(circuit, &faults, source(), patterns, true, SimOptions::event(1));
    let (event_sharded_seconds, (event_sharded, _)) = time_best(reps, || {
        wrt_sim::fault_coverage_sharded_opts(
            circuit,
            &faults,
            source(),
            patterns,
            true,
            threads,
            event_opts,
        )
    });
    // The 2D tiled engine: auto width/stripes, shards = threads, batch
    // classification on.
    let tiled_opts = TileOptions {
        threads,
        batch: BatchMode::Auto,
        ..TileOptions::default()
    };
    let (tiled_seconds, (tiled, tiled_stats)) = time_best(reps, || {
        fault_coverage_tiled(circuit, &faults, source(), patterns, true, &tiled_opts)
    });
    Row {
        circuit: circuit.name().to_string(),
        inputs: circuit.num_inputs(),
        gates: circuit.num_gates(),
        faults: faults.len(),
        detected: event.num_detected(),
        patterns,
        block_words,
        threads,
        dense_seconds,
        event_seconds,
        event_sharded_seconds,
        tiled_seconds,
        dense_node_evals,
        dense_baseline: if derive_dense { "derived" } else { "measured" },
        event_stats,
        event_w1_stats,
        tiled_stats,
        identical: dense_identical
            && event.detected_at() == event_w1.detected_at()
            && event.detected_at() == event_sharded.detected_at()
            && event.detected_at() == tiled.detected_at(),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let patterns: u64 = flag(&args, "--patterns")
        .map(|v| v.parse().expect("--patterns N"))
        .unwrap_or(if smoke { 512 } else { 2048 });
    let block_words: usize = flag(&args, "--block-words")
        .map(|v| v.parse().expect("--block-words W"))
        .unwrap_or(4);
    let threads: usize = flag(&args, "--threads")
        .map(|v| v.parse().expect("--threads T"))
        .unwrap_or(4);
    let out = flag(&args, "--out").unwrap_or("BENCH_sim.json").to_string();
    let circuits: Vec<String> = flag(&args, "--circuits")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            if smoke {
                vec!["s1".into(), "c880ish".into()]
            } else {
                vec![
                    "c2670ish".into(),
                    "c5315ish".into(),
                    "c6288ish".into(),
                    "c7552ish".into(),
                    "tiled_120000_7".into(),
                ]
            }
        });

    println!(
        "PPSFP dense vs event vs 2D tiled ({patterns} patterns, W = {block_words}, \
         {threads} threads for the sharded/tiled rows, {} cores available)",
        available_threads()
    );
    let mut rows = Vec::new();
    for name in &circuits {
        let circuit = wrt_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let row = bench_circuit(&circuit, patterns, block_words, threads);
        println!(
            "  {:<14} {:>6} faults  evals/detected: dense {:>9.1}{} event {:>8.1} \
             ({:.2}x fewer; 2D {:.2}x; {:.2}x from sparsity)  batched {}  identical {}",
            row.circuit,
            row.faults,
            row.dense_evals_per_detected(),
            if row.dense_seconds.is_none() { "*" } else { " " },
            row.event_evals_per_detected(),
            row.eval_reduction(),
            row.eval_reduction_2d(),
            row.sparsity_reduction(),
            row.tiled_stats.batch_dense_faults,
            row.identical,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"ppsfp_dense_vs_event\",\n  \"note\": \"eval_reduction is the machine-independent 1D headline: gate evaluations per detected fault, dense cone walk (64-pattern blocks) vs event-driven propagation at block_words-word superblocks, over the identical pattern stream. It combines two effects: scheduling sparsity (only nodes the fault effect reaches are evaluated, stopping when the frontier drains - frontier_dieout_rate of excited passes died before a PO) and superblock amortization (one [u64; W] evaluation covers W dense blocks; each event eval does W words of lane work). sparsity_reduction (dense vs event at W = 1, equal granularity) isolates the sparsity share; scheduled_vs_cone_ratio = event/dense evals at the benchmarked W folds both effects. eval_reduction_2d is the 2D headline: dense vs the tiled engine's total spend (tiled_node_evals = tiled_event_axis + tiled_batch + tiled_probe node evals), at its auto-resolved tiled_block_words, pattern_stripes and fault_shards. batch_dense_faults faults were peeled into `batches` shared dense multi-fault passes. tile_steals counts tiles run by a non-home worker and is the one scheduling-dependent (nondeterministic) field. dense_baseline is `measured`, or `derived` on circuits too large for the dense engine, where dense_node_evals = sum over faults of excited_undetected_blocks x (cone size - 1) - the dense engine's own accounting identity, computed from a profiled event run - and dense wall-clock fields are null. bit_identical asserts dense (when measured), event-W1, event, sharded-event, and 2D tiled coverage agree exactly. Wall-clock fields are host-dependent; on a 1-core container the sharded and tiled rows measure fan-out overhead, not speedup - the machine-independent eval counts are the comparison that transfers.\",\n  \"patterns\": {},\n  \"block_words\": {},\n  \"threads\": {},\n  \"available_parallelism\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        patterns,
        block_words,
        threads,
        available_threads(),
        smoke,
        body.join(",\n"),
    );
    std::fs::write(&out, json).expect("write BENCH_sim.json");
    println!("wrote {out}");
}

//! §5.3's economics claim: "for all circuits by the input probabilities
//! that could be found, an optimized random self test needs less than
//! 1 sec. test time."
//!
//! For every starred circuit, convert the conventional and optimized
//! test lengths into on-chip test time assuming the primary inputs form
//! one scan chain clocked at 10 MHz.
//!
//! Run with `cargo run --release -p wrt-bench --bin testtime`.

use wrt_bist::TestAccess;

fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 86_400.0 {
        format!("{:.1} days", s / 86_400.0)
    } else if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1000.0)
    }
}

fn main() {
    let clock = 10e6;
    println!("Self-test time at 10 MHz, one scan chain over the primary inputs");
    println!();
    println!(
        "  {:<10} {:>7} {:>16} {:>16} {:>8}",
        "Circuit", "chain", "conventional", "optimized", "< 1 s?"
    );
    for row in wrt_bench::paper::starred() {
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let theta = wrt_bench::experiment_theta();
        let conventional =
            wrt_bench::conventional_test_length(&circuit, &faults, theta).patterns();
        let optimized = wrt_bench::optimize_circuit(&circuit, &faults).final_length;
        let access = TestAccess::ScanChain {
            chain_length: circuit.num_inputs(),
        };
        let t_conv = access.test_time(conventional, clock);
        let t_opt = access.test_time(optimized, clock);
        println!(
            "  {:<10} {:>7} {:>16} {:>16} {:>8}",
            row.paper_name,
            circuit.num_inputs(),
            fmt_duration(t_conv),
            fmt_duration(t_opt),
            if t_opt <= std::time::Duration::from_secs(1) {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!();
    println!("the paper's §5.3 claim holds when every optimized time is below 1 s.");
}

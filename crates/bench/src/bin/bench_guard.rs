//! Benchmark-artifact guard: validates `BENCH_sim.json`,
//! `BENCH_optimize.json`, `BENCH_analyze.json`, `BENCH_robust.json`,
//! `BENCH_scale.json` and `BENCH_serve.json` so the committed artifacts
//! cannot silently go stale or corrupt.
//!
//! The bench binaries assert their own invariants at generation time,
//! but the *committed* artifacts are edited, rebased and merged like any
//! other file — this guard re-checks them on every CI run:
//!
//! * every `"bit_identical"` field must be `true`;
//! * every numeric field must parse as a **finite** `f64` — a recorded
//!   `NaN`/`inf` ratio (e.g. a zero-denominator eval reduction) fails
//!   the build instead of shipping as a quietly meaningless number;
//! * each file must contain at least one `bit_identical` field and one
//!   numeric field, so an emptied/truncated artifact cannot pass by
//!   vacuity;
//! * wherever an artifact records a `guided_backtracks` /
//!   `unguided_backtracks` pair, guided must not exceed unguided — a
//!   committed artifact claiming SCOAP guidance made PODEM *worse* on
//!   the tracked set is a regression, not a measurement;
//! * every `"unrecovered"` field (the chaos sweep's silent-result-loss
//!   counter in `BENCH_robust.json`) must be exactly `0` — an artifact
//!   recording an unrecovered fail-point injection fails the build;
//! * in the simulation artifact (recognized by its `eval_reduction_2d`
//!   fields — only `bench_sim` emits them), every `"eval_reduction"` and
//!   `"eval_reduction_2d"` must be at least `1.0` — an engine doing
//!   *more* gate evaluations than the dense baseline on any circuit is
//!   a regression, not a trade-off — and on the `c6288ish` multiplier
//!   row (the least sparse circuit, the paper's hardest case) both must
//!   exceed `1.3`; a non-smoke artifact (`"smoke": false`) must
//!   contain a `c6288ish` row at all, so the floor cannot be dodged by
//!   deleting the row — the CI smoke configuration runs a reduced
//!   circuit set and is exempt from row presence only.  Other
//!   artifacts reuse the `eval_reduction` key for different metrics
//!   (e.g. COP evals per optimizer run) with their own scales, so the
//!   floors deliberately do not apply there;
//! * in the serving artifact (recognized by its `warm_over_cold`
//!   fields — only `bench_serve` emits them), every `"warm_over_cold"`
//!   ratio must be at least `1.0` — a resident server answering primed
//!   queries *slower* than cold ones means the shared engine cache is
//!   broken — and a non-smoke artifact must have at least two rows at
//!   `3.0` or better, the paper-style amortization headline; the
//!   `"eco_eval_reduction"` field (overlay evals vs cold recompute, a
//!   machine-independent counter) must be at least `2.0` non-smoke and
//!   `1.0` in the smoke configuration;
//! * `"bytes_per_gate"` values (the scale sweep's memory headline in
//!   `BENCH_scale.json`, rows ordered by increasing circuit size) must
//!   stay flat or decrease — each row may exceed its predecessor by at
//!   most 5% (name strings grow a digit at larger sizes); a rising curve
//!   means a superlinear term crept into the flat circuit core.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_guard --
//! [FILE ...]`; with no arguments it checks the two default artifacts in
//! the current directory.  Exits non-zero with one line per violation.
//!
//! The scanner is a minimal JSON key/value walker (the workspace has no
//! JSON dependency by design): it tokenizes `"key": value` pairs,
//! ignores strings and structural characters, and classifies every bare
//! value token.  That is sufficient — and strict — for the flat
//! numeric/boolean schema the bench writers emit: any bare token that is
//! neither a finite number nor `true`/`false`/`null` (so `NaN`,
//! `Infinity`, `-inf`, or plain corruption) is a violation.

use std::process::ExitCode;

/// One `"key": <bare value>` occurrence found in the artifact.
struct BareValue {
    key: String,
    value: String,
    line: usize,
    /// The most recent `"circuit": "<name>"` string value seen before
    /// this token — the benchmark row this value belongs to (rows lead
    /// with their circuit name).  Empty outside any row.
    circuit: String,
}

/// Extracts every key whose value is a bare (unquoted) token.  String
/// values are skipped (they are prose notes or names); nested
/// objects/arrays recurse naturally because only `"key": token` pairs
/// are matched.
fn bare_values(text: &str) -> Vec<BareValue> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut current_key: Option<String> = None;
    let mut current_circuit = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'"' => {
                // Scan a string literal (the schema emits no escapes,
                // but skip over backslash pairs defensively).
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let literal = text.get(start..j).unwrap_or("").to_string();
                i = (j + 1).min(bytes.len());
                // A string followed by ':' is a key; otherwise it is a
                // string value and closes any open key.
                let mut k = i;
                while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\t') {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b':' {
                    current_key = Some(literal);
                    i = k + 1;
                } else {
                    if current_key.as_deref() == Some("circuit") {
                        current_circuit = literal;
                    }
                    current_key = None;
                }
            }
            b'{' | b'}' | b'[' | b']' | b',' | b':' | b' ' | b'\t' | b'\r' => {
                i += 1;
            }
            _ => {
                // A bare token: number, boolean, null, or corruption.
                let start = i;
                while i < bytes.len()
                    && !matches!(
                        bytes[i],
                        b',' | b'}' | b']' | b'\n' | b' ' | b'\t' | b'\r'
                    )
                {
                    i += 1;
                }
                let token = text[start..i].to_string();
                // Keyless bare tokens (array elements, or structural
                // corruption) are validated too, under a placeholder
                // key — nothing slips past the guard unclassified.
                let key = current_key
                    .take()
                    .unwrap_or_else(|| "(array element)".to_string());
                out.push(BareValue {
                    key,
                    value: token,
                    line,
                    circuit: current_circuit.clone(),
                });
            }
        }
    }
    out
}

/// Validates one artifact; returns human-readable violations.
fn check_artifact(path: &str, text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let values = bare_values(text);
    let mut bit_identical_fields = 0usize;
    let mut numeric_fields = 0usize;
    let mut guided: Vec<(f64, usize)> = Vec::new();
    let mut unguided: Vec<(f64, usize)> = Vec::new();
    let mut bytes_per_gate: Vec<(f64, usize)> = Vec::new();
    // The simulation artifact is the one with 2D-tiled headline fields;
    // the eval-reduction floors below apply only to it (other artifacts
    // reuse the `eval_reduction` key for differently-scaled metrics).
    let is_sim_artifact = values.iter().any(|v| v.key == "eval_reduction_2d");
    // The serving artifact leads with warm-over-cold ratios; only
    // `bench_serve` emits that key.
    let is_serve_artifact = values.iter().any(|v| v.key == "warm_over_cold");
    let is_smoke = values
        .iter()
        .any(|v| v.key == "smoke" && v.value == "true");
    let mut saw_c6288_row = false;
    let mut warm_headline_rows = 0usize;
    for v in &values {
        // Simulation eval-reduction floors: both the 1D event headline
        // and the 2D tiled headline must beat the dense baseline on
        // every circuit, and clear 1.3x on the c6288ish multiplier.
        if is_sim_artifact && (v.key == "eval_reduction" || v.key == "eval_reduction_2d") {
            let hard_row = v.circuit.starts_with("c6288");
            saw_c6288_row |= hard_row;
            if let Ok(x) = v.value.parse::<f64>() {
                if x < 1.0 {
                    violations.push(format!(
                        "{path}:{}: \"{}\" is {x} on {} — engine evaluates more gates than dense",
                        v.line, v.key, v.circuit
                    ));
                } else if hard_row && x <= 1.3 {
                    violations.push(format!(
                        "{path}:{}: \"{}\" is {x} on {} — below the 1.3 multiplier floor",
                        v.line, v.key, v.circuit
                    ));
                }
            }
        }
        // Serving floors: warm must never lose to cold, and the ECO
        // overlay must beat the cold recompute it replaces.
        if v.key == "warm_over_cold" {
            if let Ok(x) = v.value.parse::<f64>() {
                if x < 1.0 {
                    violations.push(format!(
                        "{path}:{}: \"warm_over_cold\" is {x} on {} — warm served queries slower than cold",
                        v.line, v.circuit
                    ));
                } else if x >= 3.0 {
                    warm_headline_rows += 1;
                }
            }
        }
        if v.key == "eco_eval_reduction" {
            let floor = if is_smoke { 1.0 } else { 2.0 };
            if let Ok(x) = v.value.parse::<f64>() {
                if x < floor {
                    violations.push(format!(
                        "{path}:{}: \"eco_eval_reduction\" is {x} on {} — below the {floor} overlay floor",
                        v.line, v.circuit
                    ));
                }
            }
        }
        if v.key == "bytes_per_gate" {
            if let Ok(x) = v.value.parse::<f64>() {
                bytes_per_gate.push((x, v.line));
            }
        }
        if v.key == "guided_backtracks" || v.key == "unguided_backtracks" {
            if let Ok(x) = v.value.parse::<f64>() {
                if v.key == "guided_backtracks" {
                    guided.push((x, v.line));
                } else {
                    unguided.push((x, v.line));
                }
            }
        }
        if v.key == "bit_identical" {
            bit_identical_fields += 1;
            if v.value != "true" {
                violations.push(format!(
                    "{path}:{}: \"bit_identical\" is `{}` — a recorded engine divergence",
                    v.line, v.value
                ));
            }
            continue;
        }
        if v.key == "unrecovered" && v.value.parse::<f64>() != Ok(0.0) {
            violations.push(format!(
                "{path}:{}: \"unrecovered\" is `{}` — a recorded unrecovered fail-point injection",
                v.line, v.value
            ));
            continue;
        }
        match v.value.as_str() {
            "true" | "false" | "null" => {}
            token => match token.parse::<f64>() {
                Ok(x) if x.is_finite() => numeric_fields += 1,
                _ => violations.push(format!(
                    "{path}:{}: \"{}\" is `{token}` — not a finite number",
                    v.line, v.key
                )),
            },
        }
    }
    if is_serve_artifact && !is_smoke && warm_headline_rows < 2 {
        violations.push(format!(
            "{path}: only {warm_headline_rows} circuit(s) reach warm_over_cold >= 3 — the amortization headline needs two"
        ));
    }
    if is_sim_artifact && !is_smoke && !saw_c6288_row {
        violations.push(format!(
            "{path}: has eval_reduction_2d fields but no c6288ish row — multiplier floor dodged"
        ));
    }
    if bit_identical_fields == 0 {
        violations.push(format!(
            "{path}: no \"bit_identical\" field at all — truncated or wrong artifact"
        ));
    }
    if numeric_fields == 0 {
        violations.push(format!("{path}: no numeric fields — empty artifact"));
    }
    // Guidance pairing: rows emit the two keys together and in order, so
    // the i-th guided value belongs to the i-th unguided one.
    if guided.len() == unguided.len() {
        for (&(g, line), &(u, _)) in guided.iter().zip(&unguided) {
            if g > u {
                violations.push(format!(
                    "{path}:{line}: guided_backtracks {g} exceeds unguided_backtracks {u} — guidance regression"
                ));
            }
        }
    } else {
        violations.push(format!(
            "{path}: {} guided_backtracks vs {} unguided_backtracks fields — unpaired rows",
            guided.len(),
            unguided.len()
        ));
    }
    // Scale-sweep memory curve: rows are ordered by increasing circuit
    // size, so each bytes/gate value may exceed its predecessor by at
    // most 5% (names gain a digit as instance counts grow); more than
    // that means a superlinear memory term.
    for pair in bytes_per_gate.windows(2) {
        let ((prev, _), (next, line)) = (pair[0], pair[1]);
        if next > prev * 1.05 {
            violations.push(format!(
                "{path}:{line}: bytes_per_gate rose {prev} -> {next} (>5%) — superlinear memory term"
            ));
        }
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<String> = if args.is_empty() {
        vec![
            "BENCH_sim.json".into(),
            "BENCH_optimize.json".into(),
            "BENCH_analyze.json".into(),
            "BENCH_robust.json".into(),
            "BENCH_scale.json".into(),
            "BENCH_serve.json".into(),
        ]
    } else {
        args
    };
    let mut violations = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => violations.extend(check_artifact(path, &text)),
            Err(e) => violations.push(format!("{path}: unreadable: {e}")),
        }
    }
    if violations.is_empty() {
        println!("bench artifacts OK: {}", files.join(", "));
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_guard: {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_artifact_passes() {
        let text = "{\n  \"note\": \"prose with NaN inside a string\",\n  \"results\": [\n    { \"eval_reduction\": 3.25, \"bit_identical\": true }\n  ]\n}\n";
        assert!(check_artifact("x.json", text).is_empty());
    }

    #[test]
    fn false_bit_identity_is_flagged() {
        let text = "{ \"eval_reduction\": 1.0, \"bit_identical\": false }";
        let v = check_artifact("x.json", text);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit_identical"));
    }

    #[test]
    fn nan_and_inf_ratios_are_flagged() {
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            let text =
                format!("{{ \"speedup\": {bad}, \"bit_identical\": true, \"x\": 1.0 }}");
            let v = check_artifact("x.json", &text);
            assert_eq!(v.len(), 1, "token {bad}: {v:?}");
            assert!(v[0].contains("speedup"), "token {bad}");
        }
    }

    #[test]
    fn keyless_tokens_inside_arrays_are_still_validated() {
        let text = "{ \"xs\": [1.0, NaN, 2.0], \"bit_identical\": true }";
        let v = check_artifact("x.json", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("NaN"));
    }

    #[test]
    fn empty_or_gutted_artifacts_cannot_pass_by_vacuity() {
        let v = check_artifact("x.json", "{}");
        assert_eq!(v.len(), 2);
        let v = check_artifact("x.json", "{ \"bit_identical\": true }");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("numeric"));
    }

    #[test]
    fn guidance_regressions_are_flagged() {
        let ok = "{ \"guided_backtracks\": 32, \"unguided_backtracks\": 50, \"bit_identical\": true }";
        assert!(check_artifact("x.json", ok).is_empty());
        let tie = "{ \"guided_backtracks\": 16, \"unguided_backtracks\": 16, \"bit_identical\": true }";
        assert!(check_artifact("x.json", tie).is_empty());
        let bad = "{ \"guided_backtracks\": 51, \"unguided_backtracks\": 50, \"bit_identical\": true }";
        let v = check_artifact("x.json", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("guidance regression"));
    }

    #[test]
    fn unpaired_guidance_rows_are_flagged() {
        let text = "{ \"guided_backtracks\": 32, \"bit_identical\": true, \"x\": 1.0 }";
        let v = check_artifact("x.json", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("unpaired"));
    }

    #[test]
    fn unrecovered_injections_are_flagged() {
        let ok = "{ \"unrecovered\": 0, \"bit_identical\": true, \"x\": 1.0 }";
        assert!(check_artifact("x.json", ok).is_empty());
        for bad in ["1", "3.0", "NaN"] {
            let text = format!(
                "{{ \"unrecovered\": {bad}, \"bit_identical\": true, \"x\": 1.0 }}"
            );
            let v = check_artifact("x.json", &text);
            assert_eq!(v.len(), 1, "value {bad}: {v:?}");
            assert!(v[0].contains("unrecovered"), "value {bad}");
        }
    }

    #[test]
    fn sub_unity_eval_reductions_are_flagged() {
        for key in ["eval_reduction", "eval_reduction_2d"] {
            let text = format!(
                "{{ \"results\": [ {{ \"circuit\": \"s1\", \"{key}\": 0.97, \"bit_identical\": true }}, {{ \"circuit\": \"c6288ish\", \"eval_reduction\": 1.9, \"eval_reduction_2d\": 1.9, \"bit_identical\": true }} ] }}"
            );
            let v = check_artifact("x.json", &text);
            assert_eq!(v.len(), 1, "key {key}: {v:?}");
            assert!(v[0].contains("more gates than dense"), "key {key}");
            assert!(v[0].contains("s1"), "key {key}");
        }
    }

    #[test]
    fn c6288ish_multiplier_floor_is_enforced() {
        // 1.2 is fine on an ordinary circuit but below the 1.3 floor on
        // the multiplier row, for both the 1D and the 2D headline.
        let ok = "{ \"results\": [ { \"circuit\": \"c880ish\", \"eval_reduction\": 1.2, \"bit_identical\": true }, { \"circuit\": \"c6288ish\", \"eval_reduction\": 1.89, \"eval_reduction_2d\": 1.35, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", ok).is_empty());
        let bad = "{ \"results\": [ { \"circuit\": \"c6288ish\", \"eval_reduction\": 1.89, \"eval_reduction_2d\": 1.2, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("1.3 multiplier floor"));
        assert!(v[0].contains("eval_reduction_2d"));
    }

    #[test]
    fn deleting_the_c6288ish_row_cannot_dodge_the_floor() {
        let text = "{ \"smoke\": false, \"results\": [ { \"circuit\": \"s1\", \"eval_reduction\": 6.0, \"eval_reduction_2d\": 9.0, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no c6288ish row"));
    }

    #[test]
    fn smoke_artifacts_need_no_c6288ish_row_but_keep_the_floors() {
        // The CI smoke set (s1, c880ish) has no multiplier row; row
        // presence is waived, the >= 1.0 floor is not.
        let ok = "{ \"smoke\": true, \"results\": [ { \"circuit\": \"c880ish\", \"eval_reduction\": 1.1, \"eval_reduction_2d\": 1.1, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", ok).is_empty());
        let bad = "{ \"smoke\": true, \"results\": [ { \"circuit\": \"c880ish\", \"eval_reduction\": 1.1, \"eval_reduction_2d\": 0.9, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("more gates than dense"));
    }

    #[test]
    fn null_dense_fields_on_derived_rows_pass() {
        // The 120k-gate scale row derives its dense baseline and emits
        // null wall-clock fields; the guard must accept them.
        let text = "{ \"results\": [ { \"circuit\": \"tiled_120000_7\", \"dense_seconds\": null, \"wall_speedup\": null, \"eval_reduction\": 4.2, \"eval_reduction_2d\": 5.0, \"bit_identical\": true }, { \"circuit\": \"c6288ish\", \"eval_reduction\": 1.9, \"eval_reduction_2d\": 1.4, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", text).is_empty());
    }

    #[test]
    fn flat_or_decreasing_bytes_per_gate_passes() {
        let text = "{ \"rows\": [ { \"bytes_per_gate\": 54.1, \"bit_identical\": true }, { \"bytes_per_gate\": 54.0, \"bit_identical\": true }, { \"bytes_per_gate\": 53.5, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", text).is_empty());
    }

    #[test]
    fn small_bytes_per_gate_creep_within_tolerance_passes() {
        // 53.5 -> 54.8 over the sweep is ~2.4% total, well under the
        // 5% per-step bound (names gaining a digit).
        let text = "{ \"rows\": [ { \"bytes_per_gate\": 53.5, \"bit_identical\": true }, { \"bytes_per_gate\": 54.8, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", text).is_empty());
    }

    #[test]
    fn superlinear_bytes_per_gate_growth_is_flagged() {
        let text = "{ \"rows\": [ { \"bytes_per_gate\": 54.0, \"bit_identical\": true }, { \"bytes_per_gate\": 60.0, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("superlinear memory term"));
    }

    #[test]
    fn warm_over_cold_floors_are_enforced() {
        // A full-run serving artifact needs two headline rows at 3x and
        // no row below 1x.
        let ok = "{ \"smoke\": false, \"results\": [ { \"circuit\": \"c880ish\", \"warm_over_cold\": 9.0, \"bit_identical\": true }, { \"circuit\": \"c2670ish\", \"warm_over_cold\": 3.5, \"bit_identical\": true }, { \"circuit\": \"c5315ish\", \"warm_over_cold\": 1.4, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", ok).is_empty());
        let slow = "{ \"smoke\": false, \"results\": [ { \"circuit\": \"c880ish\", \"warm_over_cold\": 0.8, \"bit_identical\": true }, { \"circuit\": \"c2670ish\", \"warm_over_cold\": 3.5, \"bit_identical\": true }, { \"circuit\": \"c5315ish\", \"warm_over_cold\": 4.0, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", slow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("slower than cold"));
        assert!(v[0].contains("c880ish"));
        let thin = "{ \"smoke\": false, \"results\": [ { \"circuit\": \"c880ish\", \"warm_over_cold\": 9.0, \"bit_identical\": true }, { \"circuit\": \"c2670ish\", \"warm_over_cold\": 1.5, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", thin);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("amortization headline"));
    }

    #[test]
    fn smoke_serve_artifacts_skip_the_headline_but_keep_the_floor() {
        // The CI smoke run uses tiny circuits: the 3x headline is
        // waived, warm >= cold is not.
        let ok = "{ \"smoke\": true, \"results\": [ { \"circuit\": \"s1\", \"warm_over_cold\": 1.2, \"bit_identical\": true } ] }";
        assert!(check_artifact("x.json", ok).is_empty());
        let bad = "{ \"smoke\": true, \"results\": [ { \"circuit\": \"s1\", \"warm_over_cold\": 0.9, \"bit_identical\": true } ] }";
        let v = check_artifact("x.json", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("slower than cold"));
    }

    #[test]
    fn eco_eval_reduction_floor_scales_with_smoke() {
        let full = "{ \"smoke\": false, \"results\": [ { \"circuit\": \"a\", \"warm_over_cold\": 4.0, \"bit_identical\": true }, { \"circuit\": \"b\", \"warm_over_cold\": 4.0, \"bit_identical\": true } ], \"eco\": { \"circuit\": \"b\", \"eco_eval_reduction\": 1.5, \"bit_identical\": true } }";
        let v = check_artifact("x.json", full);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("overlay floor"));
        // The same 1.5 passes in the smoke configuration (floor 1.0).
        let smoke = full.replace("\"smoke\": false", "\"smoke\": true");
        assert!(check_artifact("x.json", &smoke).is_empty());
        let negative = smoke.replace("1.5", "0.5");
        let v = check_artifact("x.json", &negative);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("overlay floor"));
    }

    #[test]
    fn committed_artifacts_are_clean() {
        // The repository's own artifacts must satisfy the guard; the
        // test runs from the crate directory, so walk up to the root.
        for name in [
            "BENCH_sim.json",
            "BENCH_optimize.json",
            "BENCH_analyze.json",
            "BENCH_robust.json",
            "BENCH_scale.json",
            "BENCH_serve.json",
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let v = check_artifact(name, &text);
            assert!(v.is_empty(), "{name}: {v:?}");
        }
    }
}

//! Machine-readable static-analysis benchmark: analysis cost, lint
//! results, SCOAP↔COP rank agreement, and what SCOAP backtrace guidance
//! buys PODEM.
//!
//! For each circuit the run records: wall time of the full simulation-free
//! analysis pass (SCOAP + census + lints), the lint finding count (the
//! registry must be clean), the Spearman rank correlation between SCOAP
//! fault costs and COP log-difficulty at equiprobable inputs, and a
//! per-fault PODEM comparison — SCOAP-guided versus unguided backtrace —
//! on the collapsed checkpoint fault list.  Guidance must never change a
//! fault's conclusion (`bit_identical`), only the backtrack spend.
//!
//! Run with `cargo run --release -p wrt-bench --bin bench_analyze`.
//!
//! ```text
//! bench_analyze [--circuits a,b,...] [--backtracks B] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: the six registry circuits on which the guided/unguided
//! comparison completes without aborts (SCOAP guidance is not a universal
//! win — on the comparator s1 and on c432ish the netlist's first-fanin
//! order happens to beat the cost model, and s2's saturated costs make
//! the comparison meaningless — so those stay out of the tracked set;
//! `--circuits` runs any of them on demand).  `--smoke` shrinks the run
//! to c880ish for CI.

use std::time::Instant;

use wrt_analyze::{analyze, Scoap};
use wrt_atpg::{AtpgOutcome, Podem};
use wrt_circuit::Circuit;
use wrt_estimate::{spearman, CopEngine, DetectionProbabilityEngine};
use wrt_fault::FaultList;

struct Row {
    circuit: String,
    nodes: usize,
    inputs: usize,
    faults: usize,
    analysis_seconds: f64,
    lint_findings: usize,
    scoap_undetectable: usize,
    reconvergent_stems: usize,
    scoap_cop_spearman: f64,
    guided_backtracks: usize,
    unguided_backtracks: usize,
    guided_aborted: usize,
    unguided_aborted: usize,
    guided_seconds: f64,
    unguided_seconds: f64,
    bit_identical: bool,
}

impl Row {
    /// Unguided-over-guided backtrack ratio (≥ 1 when guidance helps;
    /// 1.0 when both searches are conflict-free).
    fn backtrack_reduction(&self) -> f64 {
        if self.guided_backtracks == 0 && self.unguided_backtracks == 0 {
            return 1.0;
        }
        self.unguided_backtracks as f64 / (self.guided_backtracks.max(1)) as f64
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"circuit\": \"{}\",\n      \"nodes\": {},\n      \"inputs\": {},\n      \"faults\": {},\n      \"analysis_seconds\": {:.6},\n      \"lint_findings\": {},\n      \"scoap_undetectable\": {},\n      \"reconvergent_stems\": {},\n      \"scoap_cop_spearman\": {:.4},\n      \"guided_backtracks\": {},\n      \"unguided_backtracks\": {},\n      \"guided_aborted\": {},\n      \"unguided_aborted\": {},\n      \"guided_seconds\": {:.6},\n      \"unguided_seconds\": {:.6},\n      \"backtrack_reduction\": {:.3},\n      \"bit_identical\": {}\n    }}",
            self.circuit,
            self.nodes,
            self.inputs,
            self.faults,
            self.analysis_seconds,
            self.lint_findings,
            self.scoap_undetectable,
            self.reconvergent_stems,
            self.scoap_cop_spearman,
            self.guided_backtracks,
            self.unguided_backtracks,
            self.guided_aborted,
            self.unguided_aborted,
            self.guided_seconds,
            self.unguided_seconds,
            self.backtrack_reduction(),
            self.bit_identical,
        )
    }
}

fn bench_circuit(circuit: &Circuit, backtrack_limit: usize) -> Row {
    // Static analysis pass: SCOAP + census + lints + fault summary.
    let start = Instant::now();
    let report = analyze(circuit);
    let analysis_seconds = start.elapsed().as_secs_f64();

    // Rank agreement: SCOAP integer cost vs COP log-difficulty.
    let faults = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let scoap = Scoap::compute(circuit);
    let costs: Vec<f64> = faults
        .as_slice()
        .iter()
        .map(|&f| scoap.fault_cost(circuit, f) as f64)
        .collect();
    let mut engine = CopEngine::new();
    let probs = engine.estimate(circuit, &faults, &vec![0.5; circuit.num_inputs()]);
    let difficulty: Vec<f64> = probs
        .iter()
        .map(|&p| if p > 0.0 { -p.ln() } else { f64::MAX })
        .collect();
    let scoap_cop_spearman = spearman(&costs, &difficulty);

    // PODEM per fault, no dropping: the same fault list under both
    // guidance models, so backtrack totals compare like for like.
    let guided = Podem::with_backtrace_costs(circuit, &scoap).with_backtrack_limit(backtrack_limit);
    let unguided = Podem::unguided(circuit).with_backtrack_limit(backtrack_limit);
    let class = |o: &AtpgOutcome| match o {
        AtpgOutcome::Test(_) => 0u8,
        AtpgOutcome::Redundant => 1,
        AtpgOutcome::Aborted => 2,
    };
    let mut guided_backtracks = 0;
    let mut guided_aborted = 0;
    let mut guided_classes = Vec::with_capacity(faults.len());
    let start = Instant::now();
    for (_, fault) in faults.iter() {
        let (outcome, backtracks) = guided.generate_counted(fault);
        guided_backtracks += backtracks;
        guided_aborted += usize::from(class(&outcome) == 2);
        guided_classes.push(class(&outcome));
    }
    let guided_seconds = start.elapsed().as_secs_f64();
    let mut unguided_backtracks = 0;
    let mut unguided_aborted = 0;
    let mut bit_identical = true;
    let start = Instant::now();
    for ((_, fault), &gc) in faults.iter().zip(&guided_classes) {
        let (outcome, backtracks) = unguided.generate_counted(fault);
        unguided_backtracks += backtracks;
        unguided_aborted += usize::from(class(&outcome) == 2);
        bit_identical &= class(&outcome) == gc;
    }
    let unguided_seconds = start.elapsed().as_secs_f64();

    Row {
        circuit: circuit.name().to_string(),
        nodes: circuit.num_nodes(),
        inputs: circuit.num_inputs(),
        faults: faults.len(),
        analysis_seconds,
        lint_findings: report.findings.len(),
        scoap_undetectable: report.scoap.undetectable,
        reconvergent_stems: report.census.reconvergent_stems,
        scoap_cop_spearman,
        guided_backtracks,
        unguided_backtracks,
        guided_aborted,
        unguided_aborted,
        guided_seconds,
        unguided_seconds,
        bit_identical,
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag(&args, "--out")
        .unwrap_or("BENCH_analyze.json")
        .to_string();
    let circuits: Vec<String> = flag(&args, "--circuits")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            if smoke {
                vec!["c880ish".into()]
            } else {
                vec![
                    "c499ish".into(),
                    "c880ish".into(),
                    "c2670ish".into(),
                    "c3540ish".into(),
                    "c5315ish".into(),
                    "c7552ish".into(),
                ]
            }
        });
    let backtrack_limit: usize = flag(&args, "--backtracks")
        .map(|v| v.parse().expect("--backtracks B"))
        .unwrap_or(10_000);

    println!(
        "static analysis and SCOAP-guided PODEM vs unguided (backtrack limit {backtrack_limit})"
    );
    let mut rows = Vec::new();
    for name in &circuits {
        let circuit = wrt_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let row = bench_circuit(&circuit, backtrack_limit);
        println!(
            "  {:<10} {:>5} faults  analysis {:>7.1} ms  lints {}  spearman {:+.3}  backtracks {:>6} guided vs {:>6} unguided ({:.2}x)  identical {}",
            row.circuit,
            row.faults,
            row.analysis_seconds * 1e3,
            row.lint_findings,
            row.scoap_cop_spearman,
            row.guided_backtracks,
            row.unguided_backtracks,
            row.backtrack_reduction(),
            row.bit_identical,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"static_analysis_and_guided_podem\",\n  \"note\": \"analysis_seconds is one full simulation-free pass (SCOAP controllability/observability, FFR/reconvergence census, structural lints). scoap_cop_spearman rank-correlates SCOAP fault cost against COP log-difficulty at equiprobable inputs: the models share no arithmetic, so agreement is a cross-check of both. guided/unguided_backtracks run PODEM per fault over the same collapsed checkpoint list with SCOAP-cost versus first-fanin backtrace; bit_identical asserts guidance never changed a detected/redundant/aborted conclusion. The tracked set is the six registry circuits where the comparison completes abort-free; SCOAP guidance is deliberately not claimed as universal (s1 and c432ish favor netlist order, s2 saturates the cost model).\",\n  \"backtrack_limit\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        backtrack_limit,
        smoke,
        body.join(",\n"),
    );
    std::fs::write(&out, json).expect("write BENCH_analyze.json");
    println!("wrote {out}");

    assert!(
        rows.iter().all(|r| r.bit_identical),
        "guidance changed a PODEM conclusion"
    );
    assert!(
        rows.iter().all(|r| r.lint_findings == 0),
        "a registry circuit has lint findings"
    );
    assert!(
        rows.iter()
            .all(|r| r.guided_backtracks <= r.unguided_backtracks),
        "SCOAP guidance must not cost backtracks on the tracked set"
    );
    if !smoke {
        let strict_wins = rows
            .iter()
            .filter(|r| r.guided_backtracks < r.unguided_backtracks)
            .count();
        assert!(
            strict_wins >= 2,
            "SCOAP guidance must strictly reduce backtracks on at least two circuits (got {strict_wins})"
        );
    }
}

//! Estimator-accuracy study: each heuristic ANALYSIS engine against the
//! exact BDD engine on circuits where exactness is still tractable.
//!
//! This quantifies the estimation error the optimizer lives with — the
//! caveat behind the paper's reliance on PROTEST estimates.
//!
//! Run with `cargo run --release -p wrt-bench --bin accuracy`.

use wrt_estimate::{
    BddEngine, CopEngine, DetectionProbabilityEngine, HybridEngine, MonteCarloEngine,
    StafanEngine,
};
use wrt_fault::FaultList;

fn main() {
    println!("Estimator accuracy vs. exact BDD probabilities");
    println!();
    for name in ["c432ish", "c880ish", "c499ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::primary_inputs(&circuit);
        let probs = vec![0.5; circuit.num_inputs()];
        let exact = BddEngine::new(4_000_000).estimate(&circuit, &faults, &probs);

        println!(
            "{name} ({} primary-input faults):",
            faults.len()
        );
        let mut engines: Vec<Box<dyn DetectionProbabilityEngine>> = vec![
            Box::new(CopEngine::new()),
            Box::new(HybridEngine::new(14)),
            Box::new(StafanEngine::new(16_384, 7)),
            Box::new(MonteCarloEngine::new(16_384, 7)),
        ];
        for engine in engines.iter_mut() {
            let estimate = engine.estimate(&circuit, &faults, &probs);
            let mut max_err = 0.0f64;
            let mut sum_err = 0.0f64;
            for (e, x) in exact.iter().zip(&estimate) {
                let err = (e - x).abs();
                max_err = max_err.max(err);
                sum_err += err;
            }
            println!(
                "  {:<20} mean |err| {:.4}   max |err| {:.4}",
                engine.name(),
                sum_err / exact.len() as f64,
                max_err
            );
        }
        println!();
    }
}

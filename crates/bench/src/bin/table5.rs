//! Table 5: CPU time for optimizing input probabilities.
//!
//! The paper reports seconds on a 2.5 MIPS SIEMENS 7561; absolute numbers
//! are incomparable, the point is the *relative ordering* S1 < S2 <
//! C2670 < C7552 (cost grows with circuit and input count) and that the
//! optimization is tractable.
//!
//! Run with `cargo run --release -p wrt-bench --bin table5`.

use std::time::Instant;

fn main() {
    println!("Table 5: CPU time for optimizing input probabilities");
    println!();
    println!(
        "  {:<10} {:>12} {:>14} {:>17}",
        "Circuit", "measured", "engine calls", "paper (2.5 MIPS)"
    );
    for row in wrt_bench::paper::starred() {
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let start = Instant::now();
        let result = wrt_bench::optimize_circuit(&circuit, &faults);
        let elapsed = start.elapsed();
        println!(
            "  {:<10} {:>12.1?} {:>14} {:>15.0} s",
            row.paper_name,
            elapsed,
            result.engine_calls,
            row.cpu_seconds.expect("starred"),
        );
    }
}

//! Fig. 2: fault coverage vs. pattern count for S1, conventional vs.
//! optimized random patterns.
//!
//! Prints the two curves as aligned columns plus a crude ASCII plot.
//! Run with `cargo run --release -p wrt-bench --bin fig2`.

fn main() {
    let circuit = wrt_workloads::s1();
    let faults = wrt_bench::experiment_faults(&circuit);
    let patterns = 12_000;

    let conventional = wrt_bench::simulate_coverage(
        &circuit,
        &faults,
        &vec![0.5; circuit.num_inputs()],
        patterns,
        7,
    );
    let optimized_weights = {
        let result = wrt_bench::optimize_circuit(&circuit, &faults);
        wrt_core::quantize_weights(&result.weights, 0.05)
    };
    let optimized =
        wrt_bench::simulate_coverage(&circuit, &faults, &optimized_weights, patterns, 9);

    let samples: Vec<u64> = vec![
        10, 20, 50, 100, 200, 500, 1000, 2000, 4000, 6000, 8000, 10_000, 12_000,
    ];
    let conv_curve = conventional.curve(&samples);
    let opt_curve = optimized.curve(&samples);

    println!("Fig. 2: fault coverage vs. pattern count (S1)");
    println!();
    println!(
        "  {:>9} {:>14} {:>14}",
        "patterns", "conventional", "optimized"
    );
    for (&(n, c), &(_, o)) in conv_curve.points.iter().zip(&opt_curve.points) {
        println!("  {:>9} {:>13.1} % {:>13.1} %", n, c * 100.0, o * 100.0);
    }
    println!();
    // ASCII plot: o = optimized, x = conventional, 50..100 % vertical.
    println!("  100%|");
    for tick in 0..10 {
        let level = 1.0 - 0.05 * f64::from(tick + 1);
        let mut line = String::new();
        for (&(_, c), &(_, o)) in conv_curve.points.iter().zip(&opt_curve.points) {
            let band = |v: f64| v >= level && v < level + 0.05;
            line.push_str(match (band(c), band(o)) {
                (true, true) => "  * ",
                (true, false) => "  x ",
                (false, true) => "  o ",
                (false, false) => "    ",
            });
        }
        println!("      |{line}");
    }
    println!("   50%+{}", "-".repeat(4 * conv_curve.points.len()));
    println!("       10   20   50  100  200  500   1k   2k   4k   6k   8k  10k  12k");
    println!();
    println!("  o = optimized random patterns, x = conventional, * = both");
    if opt_curve.dominates(&conv_curve) {
        println!("  The optimized curve dominates the conventional one (as in the paper).");
    } else {
        println!("  WARNING: the optimized curve does not dominate everywhere.");
    }
}

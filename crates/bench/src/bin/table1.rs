//! Table 1: necessary test lengths for a conventional random test
//! (equiprobable inputs), all twelve circuits.
//!
//! Run with `cargo run --release -p wrt-bench --bin table1`.

fn main() {
    let theta = wrt_bench::experiment_theta();
    println!("Table 1: necessary test lengths, conventional random test (p = 0.5)");
    println!();
    println!(
        "  {:<4}{:<10} {:>14} {:>14} {:>8}",
        "", "Circuit", "measured N", "paper N", "faults"
    );
    for row in &wrt_bench::paper::ROWS {
        let circuit = wrt_workloads::by_name(row.name).expect("registered");
        let faults = wrt_bench::experiment_faults(&circuit);
        let tl = wrt_bench::conventional_test_length(&circuit, &faults, theta);
        let star = if row.starred { "*" } else { "" };
        println!(
            "  {:<4}{:<10} {:>14} {:>14} {:>8}",
            star,
            row.paper_name,
            wrt_bench::fmt_sci(tl.patterns()),
            wrt_bench::fmt_sci(row.conventional_length),
            faults.len()
        );
    }
    println!();
    println!("(*) random-pattern resistant circuits optimized in Tables 2-5.");
    println!("Confidence target: 99.9 % (theta = {theta:.2e}).");
}

//! The paper's published numbers, for side-by-side comparison.
//!
//! Absolute agreement is not expected — the ISCAS-85 circuits are
//! re-implementations of the same functional classes (DESIGN.md §3) and
//! the estimation engines differ — but the *shape* must hold: which
//! circuits are random-pattern resistant, by how many orders of
//! magnitude optimization shrinks their test length, and where coverage
//! lands at the paper's pattern counts.

/// One row of Table 1 (and, for the starred circuits, Tables 2–5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Workload registry name of our re-implementation.
    pub name: &'static str,
    /// The paper's circuit name.
    pub paper_name: &'static str,
    /// Table 1: conventional random test length.
    pub conventional_length: f64,
    /// Starred in the paper (random-pattern resistant).
    pub starred: bool,
    /// Table 2: pattern count simulated conventionally (starred only).
    pub sim_patterns: Option<u64>,
    /// Table 2: fault coverage of conventional patterns, percent.
    pub conventional_coverage: Option<f64>,
    /// Table 3: optimized random test length (starred only).
    pub optimized_length: Option<f64>,
    /// Table 4: fault coverage of optimized patterns, percent
    /// (at 12000/12000/4000/4000 patterns).
    pub optimized_coverage: Option<f64>,
    /// Table 5: optimization CPU seconds on a 2.5 MIPS SIEMENS 7561.
    pub cpu_seconds: Option<f64>,
}

/// All twelve rows, in the paper's order.
pub const ROWS: [PaperRow; 12] = [
    PaperRow {
        name: "s1",
        paper_name: "S1",
        conventional_length: 5.6e8,
        starred: true,
        sim_patterns: Some(12_000),
        conventional_coverage: Some(80.7),
        optimized_length: Some(3.5e4),
        optimized_coverage: Some(99.7),
        cpu_seconds: Some(300.0),
    },
    PaperRow {
        name: "s2",
        paper_name: "S2",
        conventional_length: 2.0e11,
        starred: true,
        sim_patterns: Some(12_000),
        conventional_coverage: Some(77.2),
        optimized_length: Some(4.0e4),
        optimized_coverage: Some(99.7),
        cpu_seconds: Some(600.0),
    },
    PaperRow {
        name: "c432ish",
        paper_name: "C432",
        conventional_length: 2.5e3,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c499ish",
        paper_name: "C499",
        conventional_length: 1.9e3,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c880ish",
        paper_name: "C880",
        conventional_length: 3.7e4,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c1355ish",
        paper_name: "C1355",
        conventional_length: 2.2e6,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c1908ish",
        paper_name: "C1908",
        conventional_length: 6.2e4,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c2670ish",
        paper_name: "C2670",
        conventional_length: 1.1e7,
        starred: true,
        sim_patterns: Some(4_000),
        conventional_coverage: Some(88.0),
        optimized_length: Some(6.9e4),
        optimized_coverage: Some(99.7),
        cpu_seconds: Some(1200.0),
    },
    PaperRow {
        name: "c3540ish",
        paper_name: "C3540",
        conventional_length: 2.3e6,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c5315ish",
        paper_name: "C5315",
        conventional_length: 5.3e4,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c6288ish",
        paper_name: "C6288",
        conventional_length: 1.9e3,
        starred: false,
        sim_patterns: None,
        conventional_coverage: None,
        optimized_length: None,
        optimized_coverage: None,
        cpu_seconds: None,
    },
    PaperRow {
        name: "c7552ish",
        paper_name: "C7552",
        conventional_length: 4.9e11,
        starred: true,
        sim_patterns: Some(4_096),
        conventional_coverage: Some(93.9),
        optimized_length: Some(1.2e5),
        optimized_coverage: Some(98.9),
        cpu_seconds: Some(2000.0),
    },
];

/// The starred rows (Tables 2–5).
pub fn starred() -> impl Iterator<Item = &'static PaperRow> {
    ROWS.iter().filter(|r| r.starred)
}

/// Looks a row up by registry name.
pub fn row(name: &str) -> Option<&'static PaperRow> {
    ROWS.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_registry() {
        for name in wrt_workloads::WORKLOAD_NAMES {
            assert!(row(name).is_some(), "missing paper row for {name}");
        }
        assert_eq!(starred().count(), 4);
    }

    #[test]
    fn starred_rows_have_all_tables() {
        for r in starred() {
            assert!(r.sim_patterns.is_some());
            assert!(r.conventional_coverage.is_some());
            assert!(r.optimized_length.is_some());
            assert!(r.optimized_coverage.is_some());
            assert!(r.cpu_seconds.is_some());
        }
    }
}

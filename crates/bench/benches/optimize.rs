//! Optimizer benchmarks and ablations of the design choices DESIGN.md
//! calls out: the relevant-fault restriction (paper §4 observation 1) and
//! the 1-D Newton minimizer vs. a derivative-free golden-section search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wrt_core::{minimize_coordinate, optimize, CoordinateProblem, OptimizeConfig};
use wrt_estimate::{CopEngine, IncrementalCop};
use wrt_fault::FaultList;

fn optimize_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    for name in ["s1", "c2670ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
        group.bench_function(BenchmarkId::new("default", name), |b| {
            b.iter(|| {
                let mut engine = CopEngine::new();
                black_box(optimize(
                    &circuit,
                    &faults,
                    &mut engine,
                    &OptimizeConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

/// The PREPARE hot path: full COP recompute per coordinate vs the
/// incremental cone-restricted engine (bit-identical descents; the whole
/// difference is work per single-coordinate query).
fn full_vs_incremental_cop(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_engine");
    group.sample_size(10);
    for name in ["s1", "c2670ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
        let config = OptimizeConfig {
            max_sweeps: 6,
            ..OptimizeConfig::default()
        };
        group.bench_function(BenchmarkId::new("full_cop", name), |b| {
            b.iter(|| {
                let mut engine = CopEngine::new();
                black_box(optimize(&circuit, &faults, &mut engine, &config))
            });
        });
        group.bench_function(BenchmarkId::new("incremental_cop", name), |b| {
            b.iter(|| {
                let mut engine = IncrementalCop::new();
                black_box(optimize(&circuit, &faults, &mut engine, &config))
            });
        });
    }
    group.finish();
}

/// Ablation: restricting PREPARE to the `nf` hardest faults vs. carrying
/// the whole fault list through every engine call.
fn relevant_subset_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("relevant_subset");
    group.sample_size(10);
    let circuit = wrt_workloads::s1();
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    for (label, slack) in [("hardest_nf", 16usize), ("all_faults", usize::MAX)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut engine = CopEngine::new();
                let config = OptimizeConfig {
                    relevant_slack: slack,
                    max_sweeps: 6,
                    ..OptimizeConfig::default()
                };
                black_box(optimize(&circuit, &faults, &mut engine, &config))
            });
        });
    }
    group.finish();
}

/// Ablation: Newton (formula 15) vs. golden-section search for the 1-D
/// convex subproblem.
fn newton_vs_golden(c: &mut Criterion) {
    let problem = CoordinateProblem::new(
        vec![2e-4, 8e-3, 0.02, 1e-5, 3e-4, 0.015],
        vec![6e-3, 1e-3, 0.05, 2e-5, 9e-4, 0.001],
        5000.0,
    );
    c.bench_function("minimize/newton", |b| {
        b.iter(|| black_box(minimize_coordinate(&problem, 0.5, 0.02, 0.98)));
    });
    c.bench_function("minimize/golden_section", |b| {
        b.iter(|| {
            let (mut a, mut z) = (0.02f64, 0.98f64);
            let phi = (5f64.sqrt() - 1.0) / 2.0;
            for _ in 0..60 {
                let x1 = z - phi * (z - a);
                let x2 = a + phi * (z - a);
                if problem.objective(x1) < problem.objective(x2) {
                    z = x2;
                } else {
                    a = x1;
                }
            }
            black_box(0.5 * (a + z))
        });
    });
}

criterion_group!(
    benches,
    optimize_circuits,
    full_vs_incremental_cop,
    relevant_subset_ablation,
    newton_vs_golden
);
criterion_main!(benches);

//! Cost comparison of the detection-probability engines (the ANALYSIS
//! step): analytic COP vs. STAFAN counting vs. Monte-Carlo PPSFP vs.
//! exact enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wrt_estimate::{
    BddEngine, CopEngine, DetectionProbabilityEngine, ExactEngine, MonteCarloEngine, StafanEngine,
};
use wrt_fault::FaultList;

fn engines_on_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    for name in ["c432ish", "c880ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
        let probs = vec![0.5; circuit.num_inputs()];
        group.bench_function(BenchmarkId::new("cop", name), |b| {
            b.iter(|| {
                let mut engine = CopEngine::new();
                black_box(engine.estimate(&circuit, &faults, &probs))
            });
        });
        group.bench_function(BenchmarkId::new("stafan_4k", name), |b| {
            b.iter(|| {
                let mut engine = StafanEngine::new(4096, 1);
                black_box(engine.estimate(&circuit, &faults, &probs))
            });
        });
        group.bench_function(BenchmarkId::new("monte_carlo_4k", name), |b| {
            b.iter(|| {
                let mut engine = MonteCarloEngine::new(4096, 1);
                black_box(engine.estimate(&circuit, &faults, &probs))
            });
        });
    }
    group.finish();
}

fn bdd_exact_on_c432(c: &mut Criterion) {
    let circuit = wrt_workloads::by_name("c432ish").expect("registered");
    let faults = FaultList::primary_inputs(&circuit);
    let probs = vec![0.5; circuit.num_inputs()];
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("bdd_exact/c432ish_pi_faults", |b| {
        b.iter(|| {
            let mut engine = BddEngine::new(2_000_000);
            black_box(engine.estimate(&circuit, &faults, &probs))
        });
    });
    group.finish();
}

fn exact_engine_small(c: &mut Criterion) {
    // Exact enumeration is exponential; bench it on its intended scale.
    let circuit = wrt_circuit::parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n\
         OUTPUT(y)\nm = NAND(a, b)\nn = NOR(c, d)\nx = XOR(m, n)\ny = AND(x, e, f)\n",
    )
    .expect("valid");
    let faults = FaultList::full(&circuit);
    let probs = vec![0.5; 6];
    c.bench_function("analysis/exact_6in", |b| {
        b.iter(|| {
            let mut engine = ExactEngine::new(8);
            black_box(engine.estimate(&circuit, &faults, &probs))
        });
    });
}

criterion_group!(benches, engines_on_workloads, exact_engine_small, bdd_exact_on_c432);
criterion_main!(benches);

//! Simulation throughput benchmarks: bit-parallel logic simulation and
//! PPSFP fault simulation, with the fault-dropping ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wrt_fault::FaultList;
use wrt_sim::{
    fault_coverage, fault_coverage_opts, fault_coverage_sharded, LogicSim, PatternSource,
    SimOptions, WeightedPatterns,
};

fn logic_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_sim");
    for name in ["c880ish", "c6288ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let blocks = 16u64;
        group.throughput(Throughput::Elements(blocks * 64 * circuit.num_gates() as u64));
        group.bench_function(BenchmarkId::new("blocks16", name), |b| {
            b.iter(|| {
                let mut sim = LogicSim::new(&circuit);
                let mut source = WeightedPatterns::equiprobable(circuit.num_inputs(), 3);
                for _ in 0..blocks {
                    let block = source.next_block(64);
                    sim.run(black_box(&block.words));
                }
                black_box(sim.output_words())
            });
        });
    }
    group.finish();
}

fn fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    group.sample_size(10);
    for name in ["s1", "c2670ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
        let patterns = 1024u64;
        group.throughput(Throughput::Elements(patterns * faults.len() as u64));
        for drop in [true, false] {
            let label = if drop { "dropping" } else { "no_drop" };
            group.bench_function(BenchmarkId::new(label, name), |b| {
                b.iter(|| {
                    let source = WeightedPatterns::equiprobable(circuit.num_inputs(), 7);
                    black_box(fault_coverage(&circuit, &faults, source, patterns, drop))
                });
            });
        }
    }
    group.finish();
}

/// Serial vs sharded PPSFP on the largest workload circuits: the fault
/// list is split into cone-locality-aware shards, one worker thread each
/// (results are bit-identical; only the wall clock changes).
fn sharded_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_fault_sim");
    group.sample_size(10);
    for name in ["c2670ish", "c7552ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
        let patterns = 1024u64;
        group.throughput(Throughput::Elements(patterns * faults.len() as u64));
        group.bench_function(BenchmarkId::new("serial", name), |b| {
            b.iter(|| {
                let source = WeightedPatterns::equiprobable(circuit.num_inputs(), 7);
                black_box(fault_coverage(&circuit, &faults, source, patterns, true))
            });
        });
        for threads in [2usize, 4, 8] {
            group.bench_function(BenchmarkId::new(format!("sharded{threads}"), name), |b| {
                b.iter(|| {
                    let source = WeightedPatterns::equiprobable(circuit.num_inputs(), 7);
                    black_box(fault_coverage_sharded(
                        &circuit, &faults, source, patterns, true, threads,
                    ))
                });
            });
        }
    }
    group.finish();
}

/// Dense cone walk vs event-driven sparse propagation at each superblock
/// width (results are bit-identical; only the wall clock changes).
fn event_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_fault_sim");
    group.sample_size(10);
    for name in ["c2670ish", "c7552ish"] {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
        let patterns = 1024u64;
        group.throughput(Throughput::Elements(patterns * faults.len() as u64));
        group.bench_function(BenchmarkId::new("dense", name), |b| {
            b.iter(|| {
                let source = WeightedPatterns::equiprobable(circuit.num_inputs(), 7);
                black_box(fault_coverage_opts(
                    &circuit,
                    &faults,
                    source,
                    patterns,
                    true,
                    SimOptions::dense(),
                ))
            });
        });
        for words in [1usize, 4, 8] {
            group.bench_function(BenchmarkId::new(format!("event_w{words}"), name), |b| {
                b.iter(|| {
                    let source = WeightedPatterns::equiprobable(circuit.num_inputs(), 7);
                    black_box(fault_coverage_opts(
                        &circuit,
                        &faults,
                        source,
                        patterns,
                        true,
                        SimOptions::event(words),
                    ))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, logic_sim, fault_sim, sharded_fault_sim, event_fault_sim);
criterion_main!(benches);

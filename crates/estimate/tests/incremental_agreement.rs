//! Property test: [`IncrementalCop`] is bit-identical to the full
//! recompute [`CopEngine`] across random circuits, random weight vectors
//! (including the 0.0/1.0 boundary points PREPARE uses), and random
//! sequences of single-coordinate perturbations and commits — in every
//! engine mode: per-move commits (guard on and off) and the batched
//! pending overlay with randomized batch sizes and forced
//! materialization points.

use proptest::prelude::*;
use wrt_circuit::{Circuit, CircuitBuilder, GateKind};
use wrt_estimate::{CopEngine, DetectionProbabilityEngine, IncrementalCop};
use wrt_fault::FaultList;

const NUM_INPUTS: usize = 5;

/// A small random circuit over [`NUM_INPUTS`] inputs with two outputs:
/// a mix of gate kinds over randomly picked (possibly reconvergent,
/// possibly dead) fanins.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ]);
    proptest::collection::vec(
        (kinds, proptest::collection::vec(0usize..100, 1..4)),
        NUM_INPUTS..24,
    )
    .prop_map(|specs| {
        let mut b = CircuitBuilder::named("rand");
        let mut ids = Vec::new();
        for i in 0..NUM_INPUTS {
            ids.push(b.input(format!("i{i}")));
        }
        for (kind, picks) in specs {
            let fanin: Vec<_> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                vec![ids[picks[0] % ids.len()]]
            } else {
                picks.iter().map(|&p| ids[p % ids.len()]).collect()
            };
            ids.push(b.gate_auto(kind, &fanin).expect("valid"));
        }
        b.mark_output(*ids.last().expect("nonempty"));
        b.mark_output(ids[NUM_INPUTS]);
        b.build().expect("valid circuit")
    })
}

/// Weights drawn from a palette that includes the exact boundary points
/// `0.0` and `1.0` (PREPARE's perturbation targets) alongside interior
/// values, so pruning on exact f64 equality gets exercised at the edges.
fn arb_weight() -> impl Strategy<Value = f64> {
    (0usize..6, 0.0f64..1.0).prop_map(|(pick, uniform)| match pick {
        0 => 0.0,
        1 => 1.0,
        2 => 0.5,
        3 => 0.25,
        _ => uniform,
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn incremental_cop_matches_full_cop_bit_for_bit(
        circuit in arb_circuit(),
        start in proptest::collection::vec(arb_weight(), NUM_INPUTS),
        walk in proptest::collection::vec((0usize..NUM_INPUTS, arb_weight()), 1..12),
        batch in 2usize..9,
        flush_mask in 0u32..256,
    ) {
        let faults = FaultList::full(&circuit);
        let mut full = CopEngine::new();
        // Every engine mode must agree with the reference: the default
        // per-move mode (global-cone guard on, so small dense circuits
        // mostly take the stateless path), the forced incremental
        // overlay path, and two batched pending-overlay configurations —
        // a randomized batch size and a batch larger than the whole walk
        // (materialization then happens only at frontier-budget or
        // ANALYSIS points, or where `flush_mask` forces one).
        let mut engines = [
            IncrementalCop::new(),
            IncrementalCop::new().with_global_cone_guard(false),
            IncrementalCop::new().with_commit_batch(batch),
            IncrementalCop::new().with_commit_batch(64),
        ];
        let mut weights = start;

        // Baseline estimate.
        let reference = full.estimate(&circuit, &faults, &weights);
        for incremental in engines.iter_mut() {
            let inc = incremental.estimate(&circuit, &faults, &weights);
            prop_assert_eq!(bits(&inc), bits(&reference));
        }

        // A simulated optimizer walk: PREPARE both boundary points of a
        // coordinate, then move that coordinate (the per-move engines
        // commit a cone-restricted baseline update; the batched engines
        // defer the move into the pending overlay).
        for (step, (coordinate, next_value)) in walk.into_iter().enumerate() {
            let (f0, f1) = full.estimate_coordinate_pair(&circuit, &faults, &weights, coordinate);
            for incremental in engines.iter_mut() {
                let (i0, i1) = incremental
                    .estimate_coordinate_pair(&circuit, &faults, &weights, coordinate);
                prop_assert_eq!(bits(&i0), bits(&f0), "coordinate {} at 0", coordinate);
                prop_assert_eq!(bits(&i1), bits(&f1), "coordinate {} at 1", coordinate);
            }
            weights[coordinate] = next_value;
            // Forced materialization points: resolve the large-batch
            // engine's pending layer at walk steps picked by the mask.
            if flush_mask & (1 << (step % 8)) != 0 {
                engines[3].flush_pending(&circuit);
                prop_assert_eq!(engines[3].pending_len(), 0);
            }
        }

        // Final ANALYSIS-style full query at the walked-to vector
        // (materializes whatever is still pending in the batched engines).
        let reference = full.estimate(&circuit, &faults, &weights);
        for incremental in engines.iter_mut() {
            let inc = incremental.estimate(&circuit, &faults, &weights);
            prop_assert_eq!(bits(&inc), bits(&reference));
            prop_assert_eq!(incremental.pending_len(), 0);
        }

        // The guard-off engine must have gone through the incremental
        // path: its single-coordinate walk never triggers more than the
        // initial rebuild (plus the one a multi-coordinate jump from the
        // starting vector may cost) — not one rebuild per call.
        prop_assert!(engines[1].stats().full_rebuilds <= 2);
        // The batched engines defer instead of per-move committing.
        prop_assert_eq!(engines[2].stats().incremental_commits, 0);
        prop_assert_eq!(engines[3].stats().incremental_commits, 0);
        prop_assert_eq!(engines[2].stats().stateless_estimates, 0);
    }
}

//! Redundancy identification via exact constant-line proofs.
//!
//! The paper (§1, remark under Table 2): "an estimation with the exact
//! value 0 or 1 of a signal probability by PROTEST is a proof (not an
//! estimation!) of redundancy".  A line whose exact signal probability is
//! 0 under an interior input distribution (`0 < x_i < 1`) is *always* 0,
//! so its stuck-at-0 fault can never be excited and is redundant — and
//! symmetrically for probability 1 / stuck-at-1.
//!
//! This module implements that proof for every fault whose line has a
//! small enough input support to enumerate exactly.  It is sound but
//! incomplete: "not in all cases a fixed signal value can be detected this
//! way, and therefore there may be redundancies left" (ibid.).

use wrt_circuit::{Circuit, GateKind};
use wrt_fault::{FaultList, FaultSite};

use crate::exact::exact_signal_probability;

/// Marks faults proven redundant because their line is constant.
///
/// Returns one flag per fault (`true` = proven redundant).  Lines whose
/// input support exceeds `max_support` are left unproven (`false`).
///
/// # Panics
///
/// Panics only on internal invariant violations.
pub fn constant_line_faults(
    circuit: &Circuit,
    faults: &FaultList,
    max_support: usize,
) -> Vec<bool> {
    // Interior distribution: any 0 < x < 1 works; 0.5 gives the best
    // numerical head-room.
    let probs = vec![0.5f64; circuit.num_inputs()];
    // Cache per-driver results: many faults share a line.
    let mut cache: Vec<Option<Option<f64>>> = vec![None; circuit.num_nodes()];
    faults
        .iter()
        .map(|(_, fault)| {
            let driver = match fault.site {
                FaultSite::Output(n) => n,
                FaultSite::InputPin { gate, pin } => circuit.node(gate).fanin()[pin],
            };
            // Constants are trivially constant.
            match circuit.node(driver).kind() {
                GateKind::Const0 => return !fault.stuck_value,
                GateKind::Const1 => return fault.stuck_value,
                _ => {}
            }
            let entry = cache[driver.index()].get_or_insert_with(|| {
                exact_signal_probability(circuit, driver, &probs, max_support)
            });
            match *entry {
                // A constant line makes the matching-polarity fault
                // redundant: always-0 proves s-a-0, always-1 proves s-a-1.
                Some(p) => (p == 0.0 && !fault.stuck_value) || (p == 1.0 && fault.stuck_value),
                None => false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;
    use wrt_fault::Fault;

    #[test]
    fn tautology_line_proves_sa1_redundant() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![
            Fault::output(y, true),  // redundant: y is always 1
            Fault::output(y, false), // detectable
        ]);
        let flags = constant_line_faults(&c, &faults, 16);
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn contradiction_line_proves_sa0_redundant() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\nz = AND(a, n)\ny = OR(z, b)\n")
            .unwrap();
        let z = c.node_id("z").unwrap();
        let faults = FaultList::from_faults(vec![
            Fault::output(z, false), // line always 0: s-a-0 redundant
            Fault::output(z, true),
        ]);
        let flags = constant_line_faults(&c, &faults, 16);
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn irredundant_circuit_has_no_proofs() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let faults = FaultList::full(&c);
        let flags = constant_line_faults(&c, &faults, 16);
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn oversized_support_is_left_unproven() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![Fault::output(y, true)]);
        let flags = constant_line_faults(&c, &faults, 0);
        assert_eq!(flags, vec![false]);
    }

    #[test]
    fn pin_faults_use_their_driver_line() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nn = NOT(a)\nk = AND(a, n)\ny = OR(k, b)\nz = XOR(k, b)\n",
        )
        .unwrap();
        let y = c.node_id("y").unwrap();
        // Pin 0 of y is driven by the constant-0 line k.
        let faults = FaultList::from_faults(vec![
            Fault::input_pin(y, 0, false),
            Fault::input_pin(y, 0, true),
        ]);
        let flags = constant_line_faults(&c, &faults, 16);
        assert_eq!(flags, vec![true, false]);
    }
}

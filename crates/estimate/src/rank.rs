//! Rank statistics: Spearman correlation between difficulty orderings.
//!
//! Used to cross-check the *static* SCOAP fault-difficulty ranking against
//! the *probabilistic* COP detectability ranking: the two models disagree
//! in magnitude by construction (integer costs vs probabilities), so
//! agreement is meaningful only by rank.

/// Spearman rank correlation between two paired samples.
///
/// Ties receive fractional (average) ranks, so heavily tied inputs — e.g.
/// SCOAP costs saturated at a ceiling — are handled without bias.  Returns
/// a value in `[-1, 1]`; degenerate inputs (fewer than two points, or a
/// side with zero rank variance) return `0.0` rather than NaN, keeping
/// downstream JSON artifacts finite.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use wrt_estimate::spearman;
///
/// // Perfectly anti-monotone: cost up, probability down.
/// let cost = [1.0, 2.0, 3.0, 4.0];
/// let prob = [0.9, 0.5, 0.3, 0.1];
/// assert!((spearman(&cost, &prob) + 1.0).abs() < 1e-12);
/// ```
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = fractional_ranks(a);
    let rb = fractional_ranks(b);
    pearson(&ra, &rb)
}

/// Fractional ranks (1-based; ties share the average of their positions).
fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        #[allow(clippy::cast_precision_loss)]
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation; `0.0` when either side has zero variance.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_agreement_is_one() {
        let a = [1.0, 2.0, 5.0, 9.0];
        let b = [10.0, 20.0, 21.0, 400.0]; // different scale, same order
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_inversion_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_average_ranks() {
        let r = fractional_ranks(&[5.0, 1.0, 5.0, 7.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5, 4.0]);
    }

    #[test]
    fn degenerate_inputs_return_zero_not_nan() {
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        // Constant side: zero variance.
        assert_eq!(spearman(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn independent_of_monotone_transforms() {
        let a = [0.1, 0.4, 0.2, 0.9, 0.5];
        let squashed: Vec<f64> = a.iter().map(|v: &f64| v.powi(3)).collect();
        assert!((spearman(&a, &squashed) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn result_is_always_finite_and_clamped() {
        let a = [1.0, 2.0, 2.0, 2.0, 9.0];
        let b = [4.0, 4.0, 4.0, 1.0, 0.5];
        let r = spearman(&a, &b);
        assert!(r.is_finite());
        assert!((-1.0..=1.0).contains(&r));
    }
}

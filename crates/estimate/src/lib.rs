//! Signal- and detection-probability estimation for combinational circuits.
//!
//! The paper's procedure is built "on the assumption that there is a tool
//! available computing or estimating fault detection probabilities
//! efficiently" (§1) — PROTEST \[Wu85\] in the original, with the remark that
//! PREDICT or STAFAN "will presumably work as well".  This crate provides
//! that tool layer with several interchangeable engines:
//!
//! * [`CopEngine`] — analytic controllability/observability propagation
//!   (COP-style, the default: fast, handles detection probabilities as
//!   small as `2^-64` that no sampling method can see);
//! * [`IncrementalCop`] — the same model with an incremental,
//!   cone-restricted evaluation strategy (bit-identical estimates) that
//!   answers the optimizer's single-coordinate PREPARE queries in
//!   O(fanout cone) instead of O(circuit); its batched pending-overlay
//!   mode ([`IncrementalCop::with_commit_batch`]) additionally defers
//!   coordinate commits and resolves them in shared materialization
//!   passes, which is what keeps wide- and global-cone circuits fast;
//! * [`StafanEngine`] — STAFAN-style statistical counting on a fault-free
//!   bit-parallel sample \[AgJa84\];
//! * [`MonteCarloEngine`] — direct PPSFP fault-simulation sampling;
//! * [`ExactEngine`] — exhaustive weighted enumeration (small circuits,
//!   ground truth for tests);
//! * [`BddEngine`] — exact symbolic computation via reduced ordered BDDs
//!   (the Parker–McCluskey exact problem \[McPa75\], practical up to
//!   medium circuits);
//! * [`CuttingBounds`] — guaranteed lower/upper signal-probability bounds
//!   via the cutting algorithm \[BDS84\].
//!
//! plus exact redundancy identification ([`constant_line_faults`]) in the
//! spirit of PROTEST's "exact value 0 or 1 … is a proof of redundancy".
//!
//! # Example
//!
//! ```
//! use wrt_circuit::parse_bench;
//! use wrt_fault::FaultList;
//! use wrt_estimate::{CopEngine, DetectionProbabilityEngine};
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let faults = FaultList::primary_inputs(&c);
//! let probs = CopEngine::new().estimate(&c, &faults, &[0.5, 0.5]);
//! assert_eq!(probs.len(), faults.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod bdd;
mod cop;
mod cutting;
mod degrade;
mod engine;
mod exact;
mod hybrid;
mod incremental;
mod rank;
mod redundancy;
mod shared;
mod stafan;

pub use bdd::{exact_signal_probabilities_bdd, BddEngine, BddManager, BddOverflow};
pub use cop::{observabilities_cop, signal_probabilities_cop};
pub use hybrid::HybridEngine;
pub use cutting::{signal_probability_bounds, CuttingBounds, ProbabilityInterval};
pub use degrade::DegradingEngine;
pub use engine::{
    CopEngine, DetectionProbabilityEngine, ExactEngine, MonteCarloEngine, StafanEngine,
};
pub use exact::{exact_detection_probability, exact_signal_probability};
pub use incremental::{IncrementalCop, IncrementalStats};
pub use rank::spearman;
pub use redundancy::constant_line_faults;
pub use shared::{CopBaseline, EcoMutation, EcoStats, SessionCop};
pub use stafan::StafanCounts;

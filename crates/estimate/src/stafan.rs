//! STAFAN-style statistical testability counting \[AgJa84\].
//!
//! STAFAN ("statistical fault analysis") estimates controllabilities and
//! observabilities by *counting* signal values and one-level sensitization
//! events during fault-free simulation — no fault simulation needed.  Our
//! implementation counts on bit-parallel blocks from an arbitrary weighted
//! pattern source, then combines the counts into per-fault detection
//! probability estimates.

use wrt_circuit::{Circuit, GateKind, NodeId};
use wrt_fault::{Fault, FaultList, FaultSite};
use wrt_sim::{LogicSim, PatternSource};

/// Controllability/observability statistics counted from a fault-free
/// simulation run.
#[derive(Debug, Clone)]
pub struct StafanCounts {
    num_patterns: u64,
    /// Count of patterns where the node was 1.
    ones: Vec<u64>,
    /// Fanin-CSR pin offsets copied from the circuit, so the pin-indexed
    /// accessors keep their `(gate, pin)` signatures without holding a
    /// circuit borrow: pin `p` of gate `g` is edge `pin_offsets[g] + p`.
    pin_offsets: Vec<u32>,
    /// Edge-indexed (see [`Self::pin_offsets`]): count of patterns where
    /// the pin was one-level sensitized (a change at the pin would flip
    /// the gate).
    sensitized: Vec<u64>,
    /// Estimated probability that a change at the node reaches a primary
    /// output (reverse-propagated).
    observability: Vec<f64>,
    /// Edge-indexed estimated branch observability.
    pin_observability: Vec<f64>,
}

impl StafanCounts {
    /// Simulates `num_patterns` patterns from `source` and accumulates all
    /// counts.
    ///
    /// `num_patterns == 0` is a defined degenerate case: no block is
    /// drawn and every counted rate — controllabilities, sensitizations,
    /// and therefore all detection probabilities — is exactly `0.0`
    /// ("no evidence"), never NaN.  The rate accessors divide through
    /// [`counted_rate`], which guards the zero-sample division that used
    /// to produce `0/0 = NaN` here and let `clamp` silently forward it.
    ///
    /// # Panics
    ///
    /// Panics if the source width does not match the circuit, or if the
    /// source returns an empty block (a `PatternSource` contract
    /// violation that would otherwise loop forever).
    pub fn count(
        circuit: &Circuit,
        source: &mut dyn PatternSource,
        num_patterns: u64,
    ) -> Self {
        assert_eq!(source.num_inputs(), circuit.num_inputs());
        let n = circuit.num_nodes();
        let mut ones = vec![0u64; n];
        let pin_offsets: Vec<u32> = circuit
            .ids()
            .map(|id| circuit.fanin_offset(id) as u32)
            .collect();
        let mut sensitized = vec![0u64; circuit.num_edges()];
        let mut sim = LogicSim::new(circuit);
        let mut done = 0u64;
        while done < num_patterns {
            let limit = (num_patterns - done).min(64) as u32;
            let block = source.next_block(limit);
            assert!(block.len > 0, "pattern source returned an empty block");
            let mask = block.mask();
            sim.run(&block.words);
            for (id, node) in circuit.iter() {
                ones[id.index()] += u64::from((sim.value(id) & mask).count_ones());
                let fanin = node.fanin();
                let base = circuit.fanin_offset(id);
                for pin in 0..fanin.len() {
                    let sens = one_level_sensitization(&sim, node.kind(), fanin, pin);
                    sensitized[base + pin] += u64::from((sens & mask).count_ones());
                }
            }
            done += u64::from(block.len);
        }

        // Reverse pass: observabilities from counted sensitization rates.
        let mut observability = vec![0.0f64; n];
        let mut pin_observability = vec![0.0f64; circuit.num_edges()];
        for idx in (0..n).rev() {
            let id = NodeId::from_index(idx);
            let mut miss = 1.0f64;
            let mut any = false;
            if circuit.is_output(id) {
                miss = 0.0;
                any = true;
            }
            for &sink in circuit.fanout(id) {
                let sink_base = circuit.fanin_offset(sink);
                for (pin, &f) in circuit.node(sink).fanin().iter().enumerate() {
                    if f == id {
                        miss *= 1.0 - pin_observability[sink_base + pin];
                        any = true;
                    }
                }
            }
            observability[idx] = if any { 1.0 - miss } else { 0.0 };
            let o = observability[idx];
            let base = circuit.fanin_offset(id);
            for pin in 0..circuit.fanin(id).len() {
                pin_observability[base + pin] =
                    o * counted_rate(sensitized[base + pin], num_patterns);
            }
        }

        StafanCounts {
            num_patterns,
            ones,
            pin_offsets,
            sensitized,
            observability,
            pin_observability,
        }
    }

    /// Edge index of pin `pin` of gate `gate` (see [`Self::pin_offsets`]).
    fn pin(&self, gate: NodeId, pin: usize) -> usize {
        self.pin_offsets[gate.index()] as usize + pin
    }

    /// Number of patterns the counts were taken over.
    pub fn num_patterns(&self) -> u64 {
        self.num_patterns
    }

    /// 1-controllability: counted fraction of patterns with the node at 1
    /// (`0.0` over an empty sample).
    pub fn controllability1(&self, id: NodeId) -> f64 {
        counted_rate(self.ones[id.index()], self.num_patterns)
    }

    /// Estimated observability of a node's output stem.
    pub fn observability(&self, id: NodeId) -> f64 {
        self.observability[id.index()]
    }

    /// Counted one-level sensitization rate of a gate input pin (`0.0`
    /// over an empty sample).
    pub fn sensitization(&self, gate: NodeId, pin: usize) -> f64 {
        counted_rate(self.sensitized[self.pin(gate, pin)], self.num_patterns)
    }

    /// Detection-probability estimate for one fault:
    /// `P(line at the opposite value) × observability(line)`.
    ///
    /// NaN-free by construction: both factors come from
    /// [`counted_rate`]-guarded divisions and `1 − Π(1 − ·)` folds over
    /// them, so they are always finite values in `[0, 1]` and the clamp
    /// below never sees (and thus never silently forwards) a NaN.
    pub fn detection_probability(&self, circuit: &Circuit, fault: Fault) -> f64 {
        let (act, obs) = match fault.site {
            FaultSite::Output(node) => {
                let c1 = self.controllability1(node);
                let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
                (act, self.observability[node.index()])
            }
            FaultSite::InputPin { gate, pin } => {
                let driver = circuit.node(gate).fanin()[pin];
                let c1 = self.controllability1(driver);
                let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
                (act, self.pin_observability[self.pin(gate, pin)])
            }
        };
        (act * obs).clamp(0.0, 1.0)
    }

    /// Detection-probability estimates for a whole fault list.
    pub fn detection_probabilities(&self, circuit: &Circuit, faults: &FaultList) -> Vec<f64> {
        faults
            .iter()
            .map(|(_, f)| self.detection_probability(circuit, f))
            .collect()
    }
}

/// A counted fraction `count / num_patterns`, defined as `0.0` over an
/// empty sample.
///
/// This is the single place STAFAN rates are divided out; routing
/// `controllability1`, `sensitization` and the reverse observability
/// pass through it makes every downstream estimate NaN-free by
/// construction (the old raw divisions produced `0/0 = NaN` for
/// zero-pattern counts, which `clamp(0.0, 1.0)` then forwarded
/// unchanged — `f64::clamp` keeps NaN).
fn counted_rate(count: u64, num_patterns: u64) -> f64 {
    if num_patterns == 0 {
        0.0
    } else {
        count as f64 / num_patterns as f64
    }
}

/// Bit-parallel one-level sensitization of `pin` at a gate: the word of
/// patterns in which flipping that pin would flip the gate output.
fn one_level_sensitization(
    sim: &LogicSim<'_>,
    kind: GateKind,
    fanin: &[NodeId],
    pin: usize,
) -> u64 {
    let others = fanin
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != pin)
        .map(|(_, f)| sim.value(*f));
    match kind {
        GateKind::And | GateKind::Nand => others.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Or | GateKind::Nor => !others.fold(0u64, |acc, w| acc | w),
        GateKind::Xor | GateKind::Xnor | GateKind::Not | GateKind::Buf => u64::MAX,
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;
    use wrt_sim::WeightedPatterns;

    #[test]
    fn controllability_matches_signal_probability() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut src = WeightedPatterns::equiprobable(2, 11);
        let counts = StafanCounts::count(&c, &mut src, 64 * 500);
        let y = c.node_id("y").unwrap();
        assert!((counts.controllability1(y) - 0.25).abs() < 0.02);
    }

    #[test]
    fn and_pin_sensitization_rate() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut src = WeightedPatterns::new(vec![0.5, 0.8], 3);
        let counts = StafanCounts::count(&c, &mut src, 64 * 500);
        let y = c.node_id("y").unwrap();
        // Pin 0 (a) is sensitized when b = 1: rate ≈ 0.8.
        assert!((counts.sensitization(y, 0) - 0.8).abs() < 0.02);
        assert!((counts.sensitization(y, 1) - 0.5).abs() < 0.02);
    }

    #[test]
    fn detection_estimates_close_to_exact_on_tree() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = NAND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap();
        let probs = [0.5, 0.5, 0.5];
        let mut src = WeightedPatterns::new(probs.to_vec(), 7);
        let counts = StafanCounts::count(&c, &mut src, 64 * 1000);
        let faults = wrt_fault::FaultList::full(&c);
        for (_, fault) in faults.iter() {
            let exact =
                crate::exact_detection_probability(&c, fault, &probs, 10).expect("small");
            let est = counts.detection_probability(&c, fault);
            assert!(
                (est - exact).abs() < 0.08,
                "{}: est {est} vs exact {exact}",
                fault.describe(&c)
            );
        }
    }

    #[test]
    fn observability_of_po_is_one() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let mut src = WeightedPatterns::equiprobable(1, 1);
        let counts = StafanCounts::count(&c, &mut src, 64);
        assert_eq!(counts.observability(c.node_id("y").unwrap()), 1.0);
        assert_eq!(counts.observability(c.node_id("a").unwrap()), 1.0);
    }

    #[test]
    fn zero_pattern_counts_are_defined_and_nan_free() {
        // Regression: counting over zero blocks used to divide 0/0 into
        // NaN controllabilities/sensitizations, which clamp() silently
        // forwarded into the detection estimates.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = NAND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap();
        let mut src = WeightedPatterns::equiprobable(3, 5);
        let counts = StafanCounts::count(&c, &mut src, 0);
        assert_eq!(counts.num_patterns(), 0);
        for (id, node) in c.iter() {
            let c1 = counts.controllability1(id);
            assert_eq!(c1, 0.0, "controllability of {} must be 0, not NaN", id.index());
            for pin in 0..node.fanin().len() {
                let s = counts.sensitization(id, pin);
                assert_eq!(s, 0.0, "sensitization must be 0, not NaN");
            }
            assert!(counts.observability(id).is_finite());
        }
        for (_, fault) in wrt_fault::FaultList::full(&c).iter() {
            let p = counts.detection_probability(&c, fault);
            // Zero-controllability lines make s-a-1 activations exactly
            // 1 and s-a-0 activations exactly 0; either way the estimate
            // is a defined value in [0, 1], never NaN.
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{}: estimate must be a defined probability, got {p}",
                fault.describe(&c)
            );
        }
    }

    #[test]
    fn stafan_engine_with_zero_patterns_is_defined() {
        use crate::{DetectionProbabilityEngine, StafanEngine};
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let faults = wrt_fault::FaultList::full(&c);
        let est = StafanEngine::new(0, 7).estimate(&c, &faults, &[0.5, 0.5]);
        assert!(est.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
    }

    #[test]
    fn never_toggling_node_rates_stay_finite() {
        // Input `a` pinned to probability 0.0 never toggles: its
        // controllability is exactly 0 and everything derived from it
        // (including the s-a-0 estimate, activation 0) stays finite.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut src = WeightedPatterns::new(vec![0.0, 0.5], 9);
        let counts = StafanCounts::count(&c, &mut src, 64 * 8);
        let a = c.node_id("a").unwrap();
        let y = c.node_id("y").unwrap();
        assert_eq!(counts.controllability1(a), 0.0);
        assert_eq!(counts.controllability1(y), 0.0);
        for (_, fault) in wrt_fault::FaultList::full(&c).iter() {
            let p = counts.detection_probability(&c, fault);
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{}: p = {p}",
                fault.describe(&c)
            );
        }
    }
}

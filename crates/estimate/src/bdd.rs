//! Exact signal and detection probabilities via reduced ordered BDDs.
//!
//! Parker and McCluskey showed how to compute exact signal probabilities
//! symbolically \[McPa75\]; the computation is NP-hard in general, which is
//! why the paper's toolchain estimates instead.  A reduced ordered binary
//! decision diagram makes the exact computation practical for small and
//! medium circuits: every node's function is built bottom-up, and the
//! probability of a BDD is one weighted traversal
//! (`P(f) = (1 − x_v) · P(lo) + x_v · P(hi)`).
//!
//! [`BddEngine`] is the exact counterpart of the heuristic engines: it
//! computes true `p_f(X)` including all reconvergence effects, at the
//! price of possible exponential blow-up (bounded by an explicit node
//! budget).

use std::collections::HashMap;

use wrt_circuit::{transitive_fanout, Circuit, GateKind, NodeId};
use wrt_fault::{FaultList, FaultSite};

use crate::engine::DetectionProbabilityEngine;

/// Terminal FALSE.
const F: u32 = 0;
/// Terminal TRUE.
const T: u32 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BddNode {
    var: u32,
    lo: u32,
    hi: u32,
}

/// Error: the BDD grew past its node budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddOverflow {
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for BddOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bdd exceeded its node budget of {}", self.budget)
    }
}

impl std::error::Error for BddOverflow {}

/// A small ROBDD manager with an apply cache.
///
/// Variables are primary-input positions; the variable order is the input
/// declaration order.
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<BddNode>,
    unique: HashMap<BddNode, u32>,
    apply_memo: HashMap<(u8, u32, u32), u32>,
    max_nodes: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And = 0,
    Or = 1,
    Xor = 2,
}

impl BddManager {
    /// Creates a manager with the given node budget.
    pub fn new(max_nodes: usize) -> Self {
        let mut nodes = Vec::with_capacity(1024);
        // Index 0/1 are the terminals; var = u32::MAX sorts below leaves.
        nodes.push(BddNode {
            var: u32::MAX,
            lo: F,
            hi: F,
        });
        nodes.push(BddNode {
            var: u32::MAX,
            lo: T,
            hi: T,
        });
        BddManager {
            nodes,
            unique: HashMap::new(),
            apply_memo: HashMap::new(),
            max_nodes,
        }
    }

    /// Number of live nodes (including the two terminals).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the terminals exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The BDD of a bare input variable.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when the node budget is exhausted.
    pub fn variable(&mut self, var: u32) -> Result<u32, BddOverflow> {
        self.mk(var, F, T)
    }

    /// The constant function.
    pub fn constant(value: bool) -> u32 {
        if value {
            T
        } else {
            F
        }
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, BddOverflow> {
        if lo == hi {
            return Ok(lo);
        }
        let node = BddNode { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return Ok(id);
        }
        if self.nodes.len() >= self.max_nodes {
            return Err(BddOverflow {
                budget: self.max_nodes,
            });
        }
        let id = u32::try_from(self.nodes.len()).expect("node count fits u32");
        self.nodes.push(node);
        self.unique.insert(node, id);
        Ok(id)
    }

    fn apply(&mut self, op: Op, a: u32, b: u32) -> Result<u32, BddOverflow> {
        // Terminal cases.
        match (op, a, b) {
            (Op::And, F, _) | (Op::And, _, F) => return Ok(F),
            (Op::And, T, x) | (Op::And, x, T) => return Ok(x),
            (Op::Or, T, _) | (Op::Or, _, T) => return Ok(T),
            (Op::Or, F, x) | (Op::Or, x, F) => return Ok(x),
            (Op::Xor, F, x) | (Op::Xor, x, F) => return Ok(x),
            (Op::Xor, T, x) | (Op::Xor, x, T) => return self.not(x),
            _ => {}
        }
        if a == b {
            return Ok(match op {
                Op::And | Op::Or => a,
                Op::Xor => F,
            });
        }
        // Commutative: canonicalize the memo key.
        let key = (op as u8, a.min(b), a.max(b));
        if let Some(&r) = self.apply_memo.get(&key) {
            return Ok(r);
        }
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let var = na.var.min(nb.var);
        let (a_lo, a_hi) = if na.var == var { (na.lo, na.hi) } else { (a, a) };
        let (b_lo, b_hi) = if nb.var == var { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.apply(op, a_lo, b_lo)?;
        let hi = self.apply(op, a_hi, b_hi)?;
        let r = self.mk(var, lo, hi)?;
        self.apply_memo.insert(key, r);
        Ok(r)
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when the node budget is exhausted.
    pub fn and(&mut self, a: u32, b: u32) -> Result<u32, BddOverflow> {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when the node budget is exhausted.
    pub fn or(&mut self, a: u32, b: u32) -> Result<u32, BddOverflow> {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when the node budget is exhausted.
    pub fn xor(&mut self, a: u32, b: u32) -> Result<u32, BddOverflow> {
        self.apply(Op::Xor, a, b)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when the node budget is exhausted.
    pub fn not(&mut self, a: u32) -> Result<u32, BddOverflow> {
        match a {
            F => Ok(T),
            T => Ok(F),
            _ => {
                let key = (3u8, a, a);
                if let Some(&r) = self.apply_memo.get(&key) {
                    return Ok(r);
                }
                let n = self.nodes[a as usize];
                let lo = self.not(n.lo)?;
                let hi = self.not(n.hi)?;
                let r = self.mk(n.var, lo, hi)?;
                self.apply_memo.insert(key, r);
                Ok(r)
            }
        }
    }

    /// Exact probability that the function is 1, with `var_probs[v]` the
    /// probability of variable `v`.
    pub fn probability(&self, f: u32, var_probs: &[f64]) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.prob_rec(f, var_probs, &mut memo)
    }

    fn prob_rec(&self, f: u32, var_probs: &[f64], memo: &mut HashMap<u32, f64>) -> f64 {
        match f {
            F => 0.0,
            T => 1.0,
            _ => {
                if let Some(&p) = memo.get(&f) {
                    return p;
                }
                let n = self.nodes[f as usize];
                let x = var_probs[n.var as usize];
                let p = (1.0 - x) * self.prob_rec(n.lo, var_probs, memo)
                    + x * self.prob_rec(n.hi, var_probs, memo);
                memo.insert(f, p);
                p
            }
        }
    }

    /// Builds BDDs for every node of a circuit (topological pass).
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when the node budget is exhausted.
    pub fn build_circuit(&mut self, circuit: &Circuit) -> Result<Vec<u32>, BddOverflow> {
        let mut funcs = vec![F; circuit.num_nodes()];
        for (id, node) in circuit.iter() {
            funcs[id.index()] = self.node_function(circuit, node, id, |f| funcs[f.index()])?;
        }
        Ok(funcs)
    }

    /// Builds one node's BDD from a fanin-function lookup.
    fn node_function(
        &mut self,
        circuit: &Circuit,
        node: wrt_circuit::Node<'_>,
        id: NodeId,
        fanin_func: impl Fn(NodeId) -> u32,
    ) -> Result<u32, BddOverflow> {
        Ok(match node.kind() {
            GateKind::Input => {
                let pos = circuit.input_position(id).expect("pi");
                self.variable(u32::try_from(pos).expect("input position fits"))?
            }
            GateKind::Const0 => F,
            GateKind::Const1 => T,
            kind => {
                let mut acc: Option<u32> = None;
                for &f in node.fanin() {
                    let g = fanin_func(f);
                    acc = Some(match (acc, kind) {
                        (None, _) => g,
                        (Some(a), GateKind::And | GateKind::Nand) => self.and(a, g)?,
                        (Some(a), GateKind::Or | GateKind::Nor) => self.or(a, g)?,
                        (Some(a), GateKind::Xor | GateKind::Xnor) => self.xor(a, g)?,
                        (Some(_), _) => unreachable!("1-input kinds"),
                    });
                }
                let base = acc.expect("gates have fanin");
                if kind.is_inverting() {
                    self.not(base)?
                } else {
                    base
                }
            }
        })
    }
}

/// Exact signal probabilities for every circuit node, or `None` if the
/// BDD blows past `max_nodes` (the Parker–McCluskey exact computation).
pub fn exact_signal_probabilities_bdd(
    circuit: &Circuit,
    input_probs: &[f64],
    max_nodes: usize,
) -> Option<Vec<f64>> {
    assert_eq!(input_probs.len(), circuit.num_inputs());
    let mut manager = BddManager::new(max_nodes);
    let funcs = manager.build_circuit(circuit).ok()?;
    Some(
        funcs
            .iter()
            .map(|&f| manager.probability(f, input_probs))
            .collect(),
    )
}

/// Exact detection-probability engine via BDDs.
///
/// For every fault, the faulty cone is rebuilt symbolically and the
/// probability of `∨_o (good_o ⊕ faulty_o)` is evaluated exactly.
/// Exponential in the worst case — bounded by `max_nodes`.
#[derive(Debug, Clone)]
pub struct BddEngine {
    /// BDD node budget shared by the good and per-fault faulty passes.
    pub max_nodes: usize,
}

impl BddEngine {
    /// Creates an engine with the given node budget.
    pub fn new(max_nodes: usize) -> Self {
        BddEngine { max_nodes }
    }
}

impl DetectionProbabilityEngine for BddEngine {
    /// # Panics
    ///
    /// Panics if the circuit's BDD exceeds the node budget (use the
    /// heuristic engines for such circuits).
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        let mut manager = BddManager::new(self.max_nodes);
        let good = manager
            .build_circuit(circuit)
            .unwrap_or_else(|e| panic!("good-machine BDD: {e}"));
        faults
            .iter()
            .map(|(_, fault)| {
                let root = fault.site.effect_root();
                let cone = transitive_fanout(circuit, &[root]);
                let mut faulty: HashMap<NodeId, u32> = HashMap::new();
                for &n in &cone {
                    let node = circuit.node(n);
                    let value = if fault.site == FaultSite::Output(n) {
                        BddManager::constant(fault.stuck_value)
                    } else {
                        let lookup = |f: NodeId| -> u32 {
                            // A pin fault replaces one connection only.
                            faulty.get(&f).copied().unwrap_or_else(|| good[f.index()])
                        };
                        match fault.site {
                            FaultSite::InputPin { gate, pin } if gate == n => {
                                // Rebuild this gate with the faulty pin tied.
                                let mut acc: Option<u32> = None;
                                let kind = node.kind();
                                for (k, &f) in node.fanin().iter().enumerate() {
                                    let g = if k == pin {
                                        BddManager::constant(fault.stuck_value)
                                    } else {
                                        lookup(f)
                                    };
                                    acc = Some(match (acc, kind) {
                                        (None, _) => g,
                                        (Some(a), GateKind::And | GateKind::Nand) => {
                                            manager.and(a, g).expect("budget")
                                        }
                                        (Some(a), GateKind::Or | GateKind::Nor) => {
                                            manager.or(a, g).expect("budget")
                                        }
                                        (Some(a), GateKind::Xor | GateKind::Xnor) => {
                                            manager.xor(a, g).expect("budget")
                                        }
                                        (Some(_), _) => unreachable!(),
                                    });
                                }
                                let base = acc.expect("gates have fanin");
                                if kind.is_inverting() {
                                    manager.not(base).expect("budget")
                                } else {
                                    base
                                }
                            }
                            _ => manager
                                .node_function(circuit, node, n, lookup)
                                .expect("budget"),
                        }
                    };
                    faulty.insert(n, value);
                }
                // Difference function over the primary outputs.
                let mut diff = F;
                for &o in circuit.outputs() {
                    if let Some(&fo) = faulty.get(&o) {
                        let x = manager.xor(good[o.index()], fo).expect("budget");
                        diff = manager.or(diff, x).expect("budget");
                    }
                }
                manager.probability(diff, input_probs)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "bdd-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_detection_probability;
    use wrt_circuit::parse_bench;

    #[test]
    fn variable_probability_is_its_weight() {
        let mut m = BddManager::new(100);
        let v = m.variable(0).unwrap();
        assert_eq!(m.probability(v, &[0.3]), 0.3);
        let nv = m.not(v).unwrap();
        assert!((m.probability(nv, &[0.3]) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn bdd_is_canonical() {
        // (a AND b) built twice, and via De Morgan, gives the same id.
        let mut m = BddManager::new(100);
        let a = m.variable(0).unwrap();
        let b = m.variable(1).unwrap();
        let ab1 = m.and(a, b).unwrap();
        let ab2 = m.and(b, a).unwrap();
        assert_eq!(ab1, ab2);
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let nor = m.or(na, nb).unwrap();
        let demorgan = m.not(nor).unwrap();
        assert_eq!(ab1, demorgan);
    }

    #[test]
    fn xor_cancellation() {
        let mut m = BddManager::new(100);
        let a = m.variable(0).unwrap();
        assert_eq!(m.xor(a, a).unwrap(), F);
        let na = m.not(a).unwrap();
        assert_eq!(m.xor(a, na).unwrap(), T);
    }

    #[test]
    fn overflow_is_reported() {
        let mut m = BddManager::new(3); // terminals + one node
        let a = m.variable(0).unwrap();
        let r = m.variable(1).and_then(|b| m.and(a, b));
        assert!(matches!(r, Err(BddOverflow { budget: 3 })));
    }

    #[test]
    fn signal_probabilities_handle_reconvergence_exactly() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)\n").unwrap();
        let p = exact_signal_probabilities_bdd(&c, &[0.5], 10_000).unwrap();
        let y = c.node_id("y").unwrap();
        assert_eq!(p[y.index()], 0.0); // COP would say 0.25
    }

    #[test]
    fn engine_matches_exhaustive_enumeration() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             m = NAND(a, b)\nn = NOR(c, d)\nx = XOR(m, n)\ny = AND(x, a)\nz = OR(x, d)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let probs = vec![0.3, 0.6, 0.5, 0.8];
        let bdd = BddEngine::new(100_000).estimate(&c, &faults, &probs);
        for (i, (_, fault)) in faults.iter().enumerate() {
            let exact = exact_detection_probability(&c, fault, &probs, 8).unwrap();
            assert!(
                (bdd[i] - exact).abs() < 1e-12,
                "{}: bdd {} vs exact {}",
                fault.describe(&c),
                bdd[i],
                exact
            );
        }
    }

    #[test]
    fn engine_scales_to_the_interrupt_controller() {
        // 36 inputs: exhaustive enumeration is impossible (2^36), the BDD
        // handles the whole controller exactly.
        let c = wrt_workloads::c432ish();
        let faults = FaultList::primary_inputs(&c);
        let probs = vec![0.5; c.num_inputs()];
        let p = BddEngine::new(2_000_000).estimate(&c, &faults, &probs);
        assert_eq!(p.len(), faults.len());
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Structural insight only the exact engine delivers: the parity
        // output makes *every* primary-input fault easy — each masked
        // request flips PAR whenever its enable is active, so p ≥ 1/4.
        assert!(
            p.iter().all(|&x| x >= 0.25 - 1e-12),
            "min {:?}",
            p.iter().copied().fold(f64::INFINITY, f64::min)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::exact::exact_detection_probability;
    use proptest::prelude::*;
    use wrt_circuit::CircuitBuilder;

    fn arb_circuit() -> impl Strategy<Value = Circuit> {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
        ]);
        proptest::collection::vec((kinds, proptest::collection::vec(0usize..40, 1..3)), 3..14)
            .prop_map(|specs| {
                let mut b = CircuitBuilder::named("rand");
                let mut ids = Vec::new();
                for i in 0..5 {
                    ids.push(b.input(format!("i{i}")));
                }
                for (kind, picks) in specs {
                    let fanin: Vec<_> = if kind == GateKind::Not {
                        vec![ids[picks[0] % ids.len()]]
                    } else {
                        picks.iter().map(|&p| ids[p % ids.len()]).collect()
                    };
                    ids.push(b.gate_auto(kind, &fanin).expect("valid"));
                }
                b.mark_output(*ids.last().expect("non-empty"));
                b.mark_output(ids[2]);
                b.build().expect("valid circuit")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bdd_engine_equals_exhaustive_on_random_circuits(
            circuit in arb_circuit(),
            probs in proptest::collection::vec(0.05f64..=0.95, 5),
        ) {
            let faults = FaultList::full(&circuit);
            let bdd = BddEngine::new(200_000).estimate(&circuit, &faults, &probs);
            for (i, (_, fault)) in faults.iter().enumerate() {
                let exact = exact_detection_probability(&circuit, fault, &probs, 8)
                    .expect("small circuit");
                prop_assert!(
                    (bdd[i] - exact).abs() < 1e-9,
                    "{}: bdd {} vs exact {}", fault.describe(&circuit), bdd[i], exact
                );
            }
        }
    }
}

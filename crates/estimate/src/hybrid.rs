//! Hybrid analytic engine: exact local cones, COP globally.
//!
//! The paper names "a new version of PREDICT \[ABS86\]" as an alternative
//! ANALYSIS tool; PREDICT's idea is to compute probabilities *exactly
//! inside supergates* and propagate independently between them.  This
//! engine follows that recipe pragmatically: every signal whose input
//! support fits a budget gets its exact probability (weighted cone
//! enumeration); everything else falls back to the COP recurrence over
//! the (partially corrected) fanin probabilities.  Observabilities remain
//! COP.  The result strictly improves on plain COP wherever reconvergence
//! is local — XOR/ECC structures especially — at bounded extra cost.

use wrt_circuit::{input_support, transitive_fanin, Circuit, GateKind, NodeId};
use wrt_fault::{FaultList, FaultSite};

use crate::cop::observabilities_cop;
use crate::engine::DetectionProbabilityEngine;

/// COP with exact small-support correction (a PREDICT-style estimator).
#[derive(Debug, Clone)]
pub struct HybridEngine {
    /// Signals with input support up to this size are computed exactly.
    pub support_limit: usize,
}

impl HybridEngine {
    /// Creates the engine; a limit of 12–16 is a good cost/accuracy spot.
    pub fn new(support_limit: usize) -> Self {
        HybridEngine { support_limit }
    }

    /// Signal probabilities: exact where the support budget allows,
    /// COP recurrence elsewhere.
    pub fn signal_probabilities(&self, circuit: &Circuit, input_probs: &[f64]) -> Vec<f64> {
        assert_eq!(input_probs.len(), circuit.num_inputs());
        let mut p = vec![0.0f64; circuit.num_nodes()];
        for (id, node) in circuit.iter() {
            p[id.index()] = match node.kind() {
                GateKind::Input => input_probs[circuit.input_position(id).expect("pi")],
                GateKind::Const0 => 0.0,
                GateKind::Const1 => 1.0,
                kind => {
                    let support = input_support(circuit, id);
                    if support.len() <= self.support_limit {
                        exact_cone_probability(circuit, id, &support, input_probs)
                    } else {
                        cop_step(kind, node.fanin(), &p)
                    }
                }
            };
        }
        p
    }
}

/// One COP recurrence step from already-computed fanin probabilities.
fn cop_step(kind: GateKind, fanin: &[NodeId], p: &[f64]) -> f64 {
    match kind {
        GateKind::And => fanin.iter().map(|f| p[f.index()]).product(),
        GateKind::Nand => 1.0 - fanin.iter().map(|f| p[f.index()]).product::<f64>(),
        GateKind::Or => 1.0 - fanin.iter().map(|f| 1.0 - p[f.index()]).product::<f64>(),
        GateKind::Nor => fanin.iter().map(|f| 1.0 - p[f.index()]).product(),
        GateKind::Xor => {
            (1.0 - fanin
                .iter()
                .map(|f| 1.0 - 2.0 * p[f.index()])
                .product::<f64>())
                / 2.0
        }
        GateKind::Xnor => {
            (1.0 + fanin
                .iter()
                .map(|f| 1.0 - 2.0 * p[f.index()])
                .product::<f64>())
                / 2.0
        }
        GateKind::Not => 1.0 - p[fanin[0].index()],
        GateKind::Buf => p[fanin[0].index()],
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => unreachable!(),
    }
}

/// Exact weighted enumeration of one cone (support already known small).
fn exact_cone_probability(
    circuit: &Circuit,
    node: NodeId,
    support: &[NodeId],
    input_probs: &[f64],
) -> f64 {
    let cone = transitive_fanin(circuit, &[node]);
    let mut values = vec![false; circuit.num_nodes()];
    let mut buf = Vec::new();
    let mut total = 0.0f64;
    for mask in 0..(1u64 << support.len()) {
        let mut weight = 1.0f64;
        for (k, &pi) in support.iter().enumerate() {
            let bit = (mask >> k) & 1 == 1;
            values[pi.index()] = bit;
            let x = input_probs[circuit.input_position(pi).expect("pi")];
            weight *= if bit { x } else { 1.0 - x };
        }
        if weight == 0.0 {
            continue;
        }
        for &n in &cone {
            let gate = circuit.node(n);
            if gate.kind() == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(gate.fanin().iter().map(|f| values[f.index()]));
            values[n.index()] = gate.kind().eval(&buf);
        }
        if values[node.index()] {
            total += weight;
        }
    }
    total
}

impl DetectionProbabilityEngine for HybridEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        let p = self.signal_probabilities(circuit, input_probs);
        let (obs, pin_obs) = observabilities_cop(circuit, &p);
        faults
            .iter()
            .map(|(_, fault)| {
                let (act, o) = match fault.site {
                    FaultSite::Output(node) => {
                        let c1 = p[node.index()];
                        let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
                        (act, obs[node.index()])
                    }
                    FaultSite::InputPin { gate, pin } => {
                        let driver = circuit.node(gate).fanin()[pin];
                        let c1 = p[driver.index()];
                        let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
                        (act, pin_obs[circuit.fanin_offset(gate) + pin])
                    }
                };
                (act * o).clamp(0.0, 1.0)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "hybrid-exact-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_signal_probability;
    use crate::signal_probabilities_cop;
    use wrt_circuit::parse_bench;

    #[test]
    fn corrects_the_classic_cop_error() {
        // y = AND(a, NOT a): COP says 0.25, exact says 0.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nn = NOT(a)\ny = AND(a, n)\nz = OR(y, b)\n")
            .unwrap();
        let engine = HybridEngine::new(8);
        let p = engine.signal_probabilities(&c, &[0.5, 0.5]);
        let y = c.node_id("y").unwrap();
        assert_eq!(p[y.index()], 0.0);
        let cop = signal_probabilities_cop(&c, &[0.5, 0.5]);
        assert_eq!(cop[y.index()], 0.25);
    }

    #[test]
    fn exact_within_budget_everywhere() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
             m = XOR(a, b)\nn = XNOR(b, c)\ny = AND(m, n)\nz = NOR(m, a)\n",
        )
        .unwrap();
        let probs = [0.3, 0.6, 0.8];
        let engine = HybridEngine::new(8);
        let p = engine.signal_probabilities(&c, &probs);
        for id in c.ids() {
            let exact = exact_signal_probability(&c, id, &probs, 10).unwrap();
            assert!(
                (p[id.index()] - exact).abs() < 1e-12,
                "node {id}: {} vs {exact}",
                p[id.index()]
            );
        }
    }

    #[test]
    fn budget_zero_degenerates_to_cop() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)\n").unwrap();
        let engine = HybridEngine::new(0);
        let p = engine.signal_probabilities(&c, &[0.5]);
        let cop = signal_probabilities_cop(&c, &[0.5]);
        assert_eq!(p, cop);
    }

    #[test]
    fn works_as_a_detection_engine_on_ecc() {
        // On the C499-like circuit, the hybrid engine is at least as close
        // to the BDD-exact values as plain COP, measured on PI faults.
        let c = wrt_workloads::c499ish();
        let faults = wrt_fault::FaultList::primary_inputs(&c);
        let probs = vec![0.5; c.num_inputs()];
        let exact = crate::BddEngine::new(4_000_000).estimate(&c, &faults, &probs);
        let hybrid = HybridEngine::new(12).estimate(&c, &faults, &probs);
        let cop = crate::CopEngine::new().estimate(&c, &faults, &probs);
        let err = |xs: &[f64]| -> f64 {
            xs.iter()
                .zip(&exact)
                .map(|(x, e)| (x - e).abs())
                .sum::<f64>()
                / exact.len() as f64
        };
        assert!(
            err(&hybrid) <= err(&cop) + 1e-12,
            "hybrid {} vs cop {}",
            err(&hybrid),
            err(&cop)
        );
    }
}

//! Graceful degradation for detection-probability engines.
//!
//! The incremental engines answer the optimizer's queries orders of
//! magnitude faster than a from-scratch evaluation, but their overlay
//! bookkeeping is also the most intricate numerical code in the
//! workspace.  [`DegradingEngine`] wraps a primary engine with a simple,
//! stateless fallback: every answer is screened for *anomalies* —
//! non-finite values or estimates outside `[0, 1]` — and the first
//! anomaly permanently retires the primary.  The query that tripped is
//! re-answered by the fallback, so callers never observe a bad value;
//! the switch is recorded on a [`Ladder`] as
//! [`DegradeStep::IncrementalToStateless`].
//!
//! Because the stateless COP fallback is bit-identical to the
//! incremental engines on every healthy query, a mid-descent switch
//! leaves an optimizer trajectory unchanged — degradation costs speed,
//! never correctness.
//!
//! The `estimate::anomaly` fail point ([`wrt_robust::failpoint`])
//! simulates a primary-engine anomaly for chaos tests: when armed with
//! the `Error` action, the next screened answer is treated as anomalous
//! even though its values are healthy.

use wrt_circuit::Circuit;
use wrt_fault::FaultList;
use wrt_robust::failpoint::{self, sites};
use wrt_robust::{DegradeStep, Ladder};

use crate::engine::DetectionProbabilityEngine;

/// A primary engine screened and backed by a stateless fallback.
///
/// See the [module docs](self) for the anomaly contract.
#[derive(Debug)]
pub struct DegradingEngine<P, F> {
    primary: P,
    fallback: F,
    degraded: bool,
    ladder: Ladder,
}

impl<P, F> DegradingEngine<P, F>
where
    P: DetectionProbabilityEngine,
    F: DetectionProbabilityEngine,
{
    /// Wraps `primary`, diverting to `fallback` on the first anomaly.
    pub fn new(primary: P, fallback: F) -> Self {
        DegradingEngine {
            primary,
            fallback,
            degraded: false,
            ladder: Ladder::new(),
        }
    }

    /// Whether the primary engine has been retired.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The degradation history (empty while the primary is healthy).
    pub fn ladder(&self) -> &Ladder {
        &self.ladder
    }

    /// Screens one answer set; returns `true` when it must be discarded.
    fn anomalous(values: &[f64]) -> Option<String> {
        if let Err(e) = failpoint::hit(sites::ESTIMATE_ANOMALY) {
            return Some(e.to_string());
        }
        values
            .iter()
            .find(|v| !v.is_finite() || **v < 0.0 || **v > 1.0)
            .map(|v| format!("estimate {v} outside [0, 1]"))
    }

    fn degrade(&mut self, reason: String) {
        self.degraded = true;
        self.ladder
            .record(DegradeStep::IncrementalToStateless, reason);
    }
}

impl<P, F> DetectionProbabilityEngine for DegradingEngine<P, F>
where
    P: DetectionProbabilityEngine,
    F: DetectionProbabilityEngine,
{
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        if !self.degraded {
            let values = self.primary.estimate(circuit, faults, input_probs);
            match Self::anomalous(&values) {
                None => return values,
                Some(reason) => self.degrade(reason),
            }
        }
        self.fallback.estimate(circuit, faults, input_probs)
    }

    fn estimate_pair(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        probs_a: &[f64],
        probs_b: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        if !self.degraded {
            let (a, b) = self.primary.estimate_pair(circuit, faults, probs_a, probs_b);
            match Self::anomalous(&a).or_else(|| Self::anomalous(&b)) {
                None => return (a, b),
                Some(reason) => self.degrade(reason),
            }
        }
        self.fallback.estimate_pair(circuit, faults, probs_a, probs_b)
    }

    fn estimate_coordinate_pair(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        weights: &[f64],
        coordinate: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        if !self.degraded {
            let (a, b) = self
                .primary
                .estimate_coordinate_pair(circuit, faults, weights, coordinate);
            match Self::anomalous(&a).or_else(|| Self::anomalous(&b)) {
                None => return (a, b),
                Some(reason) => self.degrade(reason),
            }
        }
        self.fallback
            .estimate_coordinate_pair(circuit, faults, weights, coordinate)
    }

    fn name(&self) -> &'static str {
        if self.degraded {
            self.fallback.name()
        } else {
            self.primary.name()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CopEngine;
    use crate::incremental::IncrementalCop;
    use wrt_circuit::parse_bench;

    fn circuit() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n",
        )
        .unwrap()
    }

    /// A primary that answers like COP until `poisoned_after` calls, then
    /// returns NaN forever.
    struct FlakyEngine {
        inner: CopEngine,
        calls: usize,
        poisoned_after: usize,
    }

    impl DetectionProbabilityEngine for FlakyEngine {
        fn estimate(
            &mut self,
            circuit: &Circuit,
            faults: &FaultList,
            input_probs: &[f64],
        ) -> Vec<f64> {
            self.calls += 1;
            let mut v = self.inner.estimate(circuit, faults, input_probs);
            if self.calls > self.poisoned_after {
                if let Some(x) = v.first_mut() {
                    *x = f64::NAN;
                }
            }
            v
        }

        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn healthy_primary_is_never_disturbed() {
        let c = circuit();
        let faults = FaultList::checkpoints(&c);
        let mut plain = IncrementalCop::new();
        let mut wrapped = DegradingEngine::new(IncrementalCop::new(), CopEngine::new());
        let probs = [0.5, 0.25, 0.75];
        let reference = plain.estimate(&c, &faults, &probs);
        let got = wrapped.estimate(&c, &faults, &probs);
        assert_eq!(got, reference);
        let (r0, r1) = plain.estimate_coordinate_pair(&c, &faults, &probs, 1);
        let (g0, g1) = wrapped.estimate_coordinate_pair(&c, &faults, &probs, 1);
        assert_eq!((g0, g1), (r0, r1));
        assert!(!wrapped.is_degraded());
        assert!(wrapped.ladder().is_empty());
    }

    #[test]
    fn non_finite_answer_retires_the_primary_permanently() {
        let c = circuit();
        let faults = FaultList::checkpoints(&c);
        let flaky = FlakyEngine {
            inner: CopEngine::new(),
            calls: 0,
            poisoned_after: 1,
        };
        let mut wrapped = DegradingEngine::new(flaky, CopEngine::new());
        let mut reference = CopEngine::new();
        let probs = [0.5, 0.25, 0.75];

        // Call 1: healthy, served by the primary.
        assert_eq!(
            wrapped.estimate(&c, &faults, &probs),
            reference.estimate(&c, &faults, &probs)
        );
        assert!(!wrapped.is_degraded());
        assert_eq!(wrapped.name(), "flaky");

        // Call 2: the primary answers NaN; the caller must still get the
        // healthy fallback values, and the switch must be recorded.
        let got = wrapped.estimate(&c, &faults, &probs);
        assert!(got.iter().all(|v| v.is_finite()));
        assert_eq!(got, reference.estimate(&c, &faults, &probs));
        assert!(wrapped.is_degraded());
        assert_eq!(
            wrapped.ladder().count(DegradeStep::IncrementalToStateless),
            1
        );

        // Call 3: the primary stays retired (it is not even consulted —
        // its call counter stops advancing).
        let calls_before = wrapped.primary.calls;
        let _ = wrapped.estimate(&c, &faults, &probs);
        assert_eq!(wrapped.primary.calls, calls_before);
        assert_eq!(wrapped.ladder().len(), 1, "one switch, recorded once");
    }

    #[test]
    fn out_of_range_estimates_also_count_as_anomalies() {
        struct Overshoot;
        impl DetectionProbabilityEngine for Overshoot {
            fn estimate(&mut self, _: &Circuit, faults: &FaultList, _: &[f64]) -> Vec<f64> {
                vec![1.5; faults.len()]
            }
            fn name(&self) -> &'static str {
                "overshoot"
            }
        }
        let c = circuit();
        let faults = FaultList::checkpoints(&c);
        let mut wrapped = DegradingEngine::new(Overshoot, CopEngine::new());
        let got = wrapped.estimate(&c, &faults, &[0.5, 0.5, 0.5]);
        assert!(got.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(wrapped.is_degraded());
    }
}

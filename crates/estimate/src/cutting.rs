//! The cutting algorithm: guaranteed signal-probability bounds \[BDS84\].
//!
//! Reconvergent fanout makes exact signal probabilities NP-hard; Savir's
//! cutting algorithm restores tractability by *cutting* fanout branches —
//! replacing the signal on a cut branch with the full interval `[0, 1]` —
//! and propagating intervals instead of point probabilities.  The result
//! is a sound enclosure: the exact probability always lies inside the
//! returned interval (property-tested against exhaustive enumeration).

use wrt_circuit::{Circuit, GateKind};

/// A closed probability interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ProbabilityInterval {
    /// The degenerate interval `[p, p]`.
    pub fn exact(p: f64) -> Self {
        ProbabilityInterval { lo: p, hi: p }
    }

    /// The full interval `[0, 1]` (a cut signal).
    pub fn unknown() -> Self {
        ProbabilityInterval { lo: 0.0, hi: 1.0 }
    }

    /// Whether `p` lies inside the interval (with a small tolerance).
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo - 1e-9 && p <= self.hi + 1e-9
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    fn complement(self) -> Self {
        ProbabilityInterval {
            lo: 1.0 - self.hi,
            hi: 1.0 - self.lo,
        }
    }
}

/// Result of the cutting algorithm over one circuit.
#[derive(Debug, Clone)]
pub struct CuttingBounds {
    intervals: Vec<ProbabilityInterval>,
}

impl CuttingBounds {
    /// The bound interval for a node.
    pub fn interval(&self, id: wrt_circuit::NodeId) -> ProbabilityInterval {
        self.intervals[id.index()]
    }

    /// All intervals, indexable by node index.
    pub fn as_slice(&self) -> &[ProbabilityInterval] {
        &self.intervals
    }
}

/// Runs the cutting algorithm.
///
/// Every branch of every multi-fanout stem is cut to `[0, 1]`.  The kept
/// connections then form a forest whose leaves (fanout-free primary
/// inputs and cut lines) are mutually independent — fanout-free inputs
/// have their *only* use inside one tree, so no cut line can depend on
/// them — which makes corner-evaluation interval propagation sound for
/// all gate types including XOR.  (Keeping one branch per stem, a common
/// "optimization", is *unsound* under XOR reconvergence: conditioning on
/// the cut value changes the kept branch's distribution.)
///
/// # Panics
///
/// Panics if `input_probs.len() != circuit.num_inputs()`.
pub fn signal_probability_bounds(circuit: &Circuit, input_probs: &[f64]) -> CuttingBounds {
    assert_eq!(
        input_probs.len(),
        circuit.num_inputs(),
        "one probability per primary input"
    );
    let mut intervals = vec![ProbabilityInterval::unknown(); circuit.num_nodes()];
    for (id, node) in circuit.iter() {
        let interval = match node.kind() {
            GateKind::Input => {
                ProbabilityInterval::exact(input_probs[circuit.input_position(id).expect("pi")])
            }
            GateKind::Const0 => ProbabilityInterval::exact(0.0),
            GateKind::Const1 => ProbabilityInterval::exact(1.0),
            kind => {
                let fanin_intervals: Vec<ProbabilityInterval> = node
                    .fanin()
                    .iter()
                    .map(|&f| {
                        if circuit.fanout(f).len() <= 1 {
                            intervals[f.index()]
                        } else {
                            ProbabilityInterval::unknown()
                        }
                    })
                    .collect();
                eval_interval(kind, &fanin_intervals)
            }
        };
        intervals[id.index()] = interval;
    }
    CuttingBounds { intervals }
}

fn eval_interval(kind: GateKind, fanin: &[ProbabilityInterval]) -> ProbabilityInterval {
    match kind {
        GateKind::And => and_interval(fanin),
        GateKind::Nand => and_interval(fanin).complement(),
        GateKind::Or => or_interval(fanin),
        GateKind::Nor => or_interval(fanin).complement(),
        GateKind::Xor => xor_interval(fanin),
        GateKind::Xnor => xor_interval(fanin).complement(),
        GateKind::Not => fanin[0].complement(),
        GateKind::Buf => fanin[0],
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            unreachable!("sources handled by caller")
        }
    }
}

fn and_interval(fanin: &[ProbabilityInterval]) -> ProbabilityInterval {
    ProbabilityInterval {
        lo: fanin.iter().map(|i| i.lo).product(),
        hi: fanin.iter().map(|i| i.hi).product(),
    }
}

fn or_interval(fanin: &[ProbabilityInterval]) -> ProbabilityInterval {
    ProbabilityInterval {
        lo: 1.0 - fanin.iter().map(|i| 1.0 - i.lo).product::<f64>(),
        hi: 1.0 - fanin.iter().map(|i| 1.0 - i.hi).product::<f64>(),
    }
}

/// XOR probability `(1 − Π(1 − 2 p_k)) / 2` is multilinear, hence its
/// extrema over a box are attained at corners of the factor product.
fn xor_interval(fanin: &[ProbabilityInterval]) -> ProbabilityInterval {
    // Track the interval of Π (1 - 2 p_k) incrementally.
    let mut lo = 1.0f64;
    let mut hi = 1.0f64;
    for i in fanin {
        let a = 1.0 - 2.0 * i.lo; // the larger factor endpoint
        let b = 1.0 - 2.0 * i.hi;
        let candidates = [lo * a, lo * b, hi * a, hi * b];
        lo = candidates.iter().copied().fold(f64::INFINITY, f64::min);
        hi = candidates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    }
    ProbabilityInterval {
        lo: (1.0 - hi) / 2.0,
        hi: (1.0 - lo) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_signal_probability;
    use wrt_circuit::parse_bench;

    #[test]
    fn tree_circuit_bounds_are_tight() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = NAND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap();
        let bounds = signal_probability_bounds(&c, &[0.5, 0.5, 0.5]);
        let y = c.node_id("y").unwrap();
        let exact = exact_signal_probability(&c, y, &[0.5, 0.5, 0.5], 10).unwrap();
        let iv = bounds.interval(y);
        assert!(iv.width() < 1e-12, "no fanout, no cut: width {}", iv.width());
        assert!(iv.contains(exact));
    }

    #[test]
    fn reconvergent_bounds_contain_exact() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let bounds = signal_probability_bounds(&c, &[0.5]);
        let exact = exact_signal_probability(&c, y, &[0.5], 10).unwrap();
        assert!(bounds.interval(y).contains(exact));
    }

    #[test]
    fn xor_interval_corners() {
        // XOR over [0,1] x exact(0.5) must be [0.5, 0.5] (XOR with a fair
        // bit is fair regardless of the other input).
        let iv = xor_interval(&[
            ProbabilityInterval::unknown(),
            ProbabilityInterval::exact(0.5),
        ]);
        assert!((iv.lo - 0.5).abs() < 1e-12);
        assert!((iv.hi - 0.5).abs() < 1e-12);
        // XOR over [0,1] x exact(0): full interval.
        let iv = xor_interval(&[
            ProbabilityInterval::unknown(),
            ProbabilityInterval::exact(0.0),
        ]);
        assert!((iv.lo - 0.0).abs() < 1e-12);
        assert!((iv.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intervals_are_valid_probability_ranges() {
        let c = wrt_circuit::parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nm = XOR(a, b)\n\
             y = AND(m, a)\nz = NOR(m, b)\n",
        )
        .unwrap();
        let bounds = signal_probability_bounds(&c, &[0.3, 0.8]);
        for iv in bounds.as_slice() {
            assert!(iv.lo >= -1e-12 && iv.hi <= 1.0 + 1e-12 && iv.lo <= iv.hi + 1e-12);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::exact::exact_signal_probability;
    use proptest::prelude::*;
    use wrt_circuit::{Circuit, CircuitBuilder, GateKind};

    fn arb_circuit() -> impl Strategy<Value = Circuit> {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
        ]);
        proptest::collection::vec((kinds, proptest::collection::vec(0usize..64, 1..3)), 3..15)
            .prop_map(|specs| {
                let mut b = CircuitBuilder::named("rand");
                let mut ids = Vec::new();
                for i in 0..5 {
                    ids.push(b.input(format!("i{i}")));
                }
                for (kind, picks) in specs {
                    let fanin: Vec<_> = if kind == GateKind::Not {
                        vec![ids[picks[0] % ids.len()]]
                    } else {
                        picks.iter().map(|&p| ids[p % ids.len()]).collect()
                    };
                    ids.push(b.gate_auto(kind, &fanin).expect("valid"));
                }
                b.mark_output(*ids.last().expect("non-empty"));
                b.build().expect("valid circuit")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn cutting_bounds_always_contain_exact_probability(
            circuit in arb_circuit(),
            probs in proptest::collection::vec(0.0f64..=1.0, 5),
        ) {
            let bounds = signal_probability_bounds(&circuit, &probs);
            for (id, _) in circuit.iter() {
                let exact = exact_signal_probability(&circuit, id, &probs, 10)
                    .expect("small support");
                prop_assert!(
                    bounds.interval(id).contains(exact),
                    "node {id}: exact {exact} outside [{}, {}]",
                    bounds.interval(id).lo,
                    bounds.interval(id).hi
                );
            }
        }
    }
}

//! Exact probabilities by weighted exhaustive enumeration.
//!
//! Ground truth for small circuits and cones: enumerate every assignment
//! of the relevant primary inputs, weight it by `Π x_i` / `Π (1 − x_i)`,
//! and accumulate.  Exponential, of course — the Parker/McCluskey exact
//! problem is NP-hard \[McPa75\] — so both functions take an explicit input
//! budget and refuse larger instances.

use wrt_circuit::{input_support, Circuit, GateKind, NodeId};
use wrt_fault::{Fault, FaultSite};

/// Exact probability that `node` is 1 under independent input
/// probabilities `input_probs`, or `None` if the node's input support
/// exceeds `max_support` inputs.
///
/// # Panics
///
/// Panics if `input_probs.len() != circuit.num_inputs()`.
pub fn exact_signal_probability(
    circuit: &Circuit,
    node: NodeId,
    input_probs: &[f64],
    max_support: usize,
) -> Option<f64> {
    assert_eq!(input_probs.len(), circuit.num_inputs());
    let support = input_support(circuit, node);
    if support.len() > max_support || support.len() >= 63 {
        return None;
    }
    let cone = wrt_circuit::transitive_fanin(circuit, &[node]);
    let mut values = vec![false; circuit.num_nodes()];
    let mut buf = Vec::new();
    let mut total = 0.0f64;
    for mask in 0..(1u64 << support.len()) {
        let mut weight = 1.0f64;
        for (k, &pi) in support.iter().enumerate() {
            let bit = (mask >> k) & 1 == 1;
            values[pi.index()] = bit;
            let x = input_probs[circuit.input_position(pi).expect("pi")];
            weight *= if bit { x } else { 1.0 - x };
        }
        if weight == 0.0 {
            continue;
        }
        for &n in &cone {
            let gate = circuit.node(n);
            if gate.kind() == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(gate.fanin().iter().map(|f| values[f.index()]));
            values[n.index()] = gate.kind().eval(&buf);
        }
        if values[node.index()] {
            total += weight;
        }
    }
    Some(total)
}

/// Exact detection probability of `fault` under independent input
/// probabilities, or `None` if the circuit has more than `max_inputs`
/// primary inputs.
///
/// Enumerates the full input space (detection involves propagation to the
/// primary outputs, so the relevant support is the whole circuit in
/// general).
///
/// # Panics
///
/// Panics if `input_probs.len() != circuit.num_inputs()`.
pub fn exact_detection_probability(
    circuit: &Circuit,
    fault: Fault,
    input_probs: &[f64],
    max_inputs: usize,
) -> Option<f64> {
    assert_eq!(input_probs.len(), circuit.num_inputs());
    let n = circuit.num_inputs();
    if n > max_inputs || n >= 63 {
        return None;
    }
    let mut total = 0.0f64;
    let mut assignment = vec![false; n];
    for mask in 0..(1u64 << n) {
        let mut weight = 1.0f64;
        for (k, slot) in assignment.iter_mut().enumerate() {
            let bit = (mask >> k) & 1 == 1;
            *slot = bit;
            weight *= if bit {
                input_probs[k]
            } else {
                1.0 - input_probs[k]
            };
        }
        if weight == 0.0 {
            continue;
        }
        if detects(circuit, fault, &assignment) {
            total += weight;
        }
    }
    Some(total)
}

/// Scalar check: does `assignment` detect `fault`?
pub(crate) fn detects(circuit: &Circuit, fault: Fault, assignment: &[bool]) -> bool {
    let mut good = vec![false; circuit.num_nodes()];
    let mut bad = vec![false; circuit.num_nodes()];
    let mut buf = Vec::new();
    for (id, node) in circuit.iter() {
        let g = match node.kind() {
            GateKind::Input => assignment[circuit.input_position(id).expect("pi")],
            kind => {
                buf.clear();
                buf.extend(node.fanin().iter().map(|f| good[f.index()]));
                kind.eval(&buf)
            }
        };
        good[id.index()] = g;
        let mut v = match node.kind() {
            GateKind::Input => assignment[circuit.input_position(id).expect("pi")],
            kind => {
                buf.clear();
                for (pin, f) in node.fanin().iter().enumerate() {
                    let mut fv = bad[f.index()];
                    if let FaultSite::InputPin { gate, pin: fp } = fault.site {
                        if gate == id && fp == pin {
                            fv = fault.stuck_value;
                        }
                    }
                    buf.push(fv);
                }
                kind.eval(&buf)
            }
        };
        if fault.site == FaultSite::Output(id) {
            v = fault.stuck_value;
        }
        bad[id.index()] = v;
    }
    circuit
        .outputs()
        .iter()
        .any(|&o| good[o.index()] != bad[o.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn signal_probability_of_reconvergent_gate_is_exact() {
        // y = AND(a, NOT a) == 0: COP would say 0.25, exact says 0.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let p = exact_signal_probability(&c, y, &[0.5], 10).unwrap();
        assert_eq!(p, 0.0);
        let cop = crate::signal_probabilities_cop(&c, &[0.5]);
        assert_eq!(cop[y.index()], 0.25); // the known COP error
    }

    #[test]
    fn weighted_signal_probability() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let p = exact_signal_probability(&c, y, &[0.1, 0.3], 10).unwrap();
        assert!((p - (1.0 - 0.9 * 0.7)).abs() < 1e-12);
    }

    #[test]
    fn support_budget_respected() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        assert!(exact_signal_probability(&c, y, &[0.5, 0.5], 1).is_none());
    }

    #[test]
    fn detection_probability_of_and_faults() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let a = c.node_id("a").unwrap();
        // y s-a-0 detected by (1,1): p = x_a * x_b.
        let p = exact_detection_probability(&c, Fault::output(y, false), &[0.5, 0.5], 10).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
        // a s-a-1 detected by (0,1): p = (1-x_a) x_b.
        let p = exact_detection_probability(&c, Fault::output(a, true), &[0.2, 0.7], 10).unwrap();
        assert!((p - 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn redundant_fault_has_zero_probability() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let p = exact_detection_probability(&c, Fault::output(y, true), &[0.5], 10).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn extreme_weights_zero_out_assignments() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        // x_a = 1: only assignments with a=1 have weight.
        let p = exact_detection_probability(&c, Fault::output(y, false), &[1.0, 0.5], 10).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}

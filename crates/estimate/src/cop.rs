//! COP-style analytic signal probabilities and observabilities.
//!
//! The classic "controllability/observability program" recurrences: every
//! gate output probability is computed from its fanin probabilities
//! assuming statistical independence, in one topological pass; a second,
//! reverse pass propagates observabilities from the primary outputs.
//! Reconvergent fanout violates the independence assumption, which is the
//! known source of COP's estimation error — the cutting algorithm
//! ([`crate::signal_probability_bounds`]) brackets that error, and the
//! statistical engines avoid it.

use wrt_circuit::{Circuit, GateKind, Node, NodeId};

/// One forward pass of signal probabilities.
///
/// `input_probs[k]` is the probability that primary input *k* is 1.
/// Returns one probability per node, indexable by [`NodeId::index`].
///
/// # Panics
///
/// Panics if `input_probs.len() != circuit.num_inputs()`.
pub fn signal_probabilities_cop(circuit: &Circuit, input_probs: &[f64]) -> Vec<f64> {
    assert_eq!(
        input_probs.len(),
        circuit.num_inputs(),
        "one probability per primary input"
    );
    let mut p = vec![0.0f64; circuit.num_nodes()];
    for (id, node) in circuit.iter() {
        p[id.index()] = node_probability(circuit, id, node, &|k| input_probs[k], &|f: NodeId| {
            p[f.index()]
        });
    }
    p
}

/// The COP recurrence for one node: its signal probability from its fanin
/// probabilities.
///
/// `input_prob` maps a primary-input *position* to its 1-probability; `p`
/// maps any fanin node to its (already computed) signal probability.  Both
/// the full pass ([`signal_probabilities_cop`]) and the incremental engine
/// evaluate nodes through this single function, which is what makes their
/// results bit-identical.
pub(crate) fn node_probability(
    circuit: &Circuit,
    id: NodeId,
    node: Node<'_>,
    input_prob: &impl Fn(usize) -> f64,
    p: &impl Fn(NodeId) -> f64,
) -> f64 {
    node_probability_of_kind(circuit, id, node.kind(), node.fanin(), input_prob, p)
}

/// [`node_probability`] with the gate kind supplied explicitly.
///
/// The ECO overlay ([`crate::SessionCop`]) evaluates what-if gate-kind
/// mutations without building a mutated circuit: it calls this function
/// with the overridden kind and the *unchanged* fanin list, so a later
/// cold recompute of the really-mutated circuit produces bit-identical
/// values (same function, same operand order).
pub(crate) fn node_probability_of_kind(
    circuit: &Circuit,
    id: NodeId,
    kind: GateKind,
    fanin: &[NodeId],
    input_prob: &impl Fn(usize) -> f64,
    p: &impl Fn(NodeId) -> f64,
) -> f64 {
    match kind {
        GateKind::Input => input_prob(circuit.input_position(id).expect("input")),
        GateKind::Const0 => 0.0,
        GateKind::Const1 => 1.0,
        GateKind::And => fanin.iter().map(|&f| p(f)).product(),
        GateKind::Nand => 1.0 - fanin.iter().map(|&f| p(f)).product::<f64>(),
        GateKind::Or => 1.0 - fanin.iter().map(|&f| 1.0 - p(f)).product::<f64>(),
        GateKind::Nor => fanin.iter().map(|&f| 1.0 - p(f)).product::<f64>(),
        GateKind::Xor => xor_prob(fanin.iter().map(|&f| p(f))),
        GateKind::Xnor => 1.0 - xor_prob(fanin.iter().map(|&f| p(f))),
        GateKind::Not => 1.0 - p(fanin[0]),
        GateKind::Buf => p(fanin[0]),
    }
}

/// Probability that the XOR of independent bits with probabilities `ps`
/// is 1.
fn xor_prob(ps: impl Iterator<Item = f64>) -> f64 {
    // P(odd) via the product identity: Π(1-2p) = 1 - 2 P(odd).
    let prod: f64 = ps.map(|p| 1.0 - 2.0 * p).product();
    (1.0 - prod) / 2.0
}

/// Reverse pass of COP observabilities.
///
/// `obs[n]` approximates the probability that a value change at node *n*
/// propagates to some primary output, given signal probabilities `p`
/// (from [`signal_probabilities_cop`]).  Primary outputs have
/// observability 1; a gate input pin is observable when the gate output is
/// observable and the other pins are at non-controlling values; a fanout
/// stem combines its branches with the "at least one path" rule
/// `1 − Π (1 − obs_branch)` (capped at 1).
///
/// Returns `(node_observability, pin_observability)` where
/// `pin_observability` is edge-indexed: the entry for pin `p` of gate `g`
/// lives at `circuit.fanin_offset(g) + p` — one flat
/// [`Circuit::num_edges`]-sized array instead of a `Vec` per node.
///
/// # Panics
///
/// Panics if `p.len() != circuit.num_nodes()`.
pub fn observabilities_cop(circuit: &Circuit, p: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(p.len(), circuit.num_nodes(), "one probability per node");
    let n = circuit.num_nodes();
    let mut obs = vec![0.0f64; n];
    let mut pin_obs = vec![0.0f64; circuit.num_edges()];

    // Reverse topological order: node ids descending.
    for idx in (0..n).rev() {
        let id = NodeId::from_index(idx);
        obs[idx] = stem_observability(circuit, id, &|sink: NodeId, pin: usize| {
            pin_obs[circuit.fanin_offset(sink) + pin]
        });

        // Pin observabilities of this node's own fanin.
        let node = circuit.node(id);
        let o = obs[idx];
        let base = circuit.fanin_offset(id);
        for pin in 0..node.fanin().len() {
            pin_obs[base + pin] = o * pin_sensitivity(node, pin, &|f: NodeId| p[f.index()]);
        }
    }
    (obs, pin_obs)
}

/// Stem observability of one node from its sinks' (already computed) pin
/// observabilities: POs see the node directly; fanout branches each
/// contribute pin observability at their sink gate, combined with the
/// "at least one path" rule.
///
/// Shared between the full backward pass ([`observabilities_cop`]) and the
/// incremental engine so both produce bit-identical values.
pub(crate) fn stem_observability(
    circuit: &Circuit,
    id: NodeId,
    pin_obs: &impl Fn(NodeId, usize) -> f64,
) -> f64 {
    let mut miss = 1.0f64;
    let mut any_path = false;
    if circuit.is_output(id) {
        miss = 0.0;
        any_path = true;
    }
    for &sink in circuit.fanout(id) {
        for (pin, &f) in circuit.node(sink).fanin().iter().enumerate() {
            if f == id {
                miss *= 1.0 - pin_obs(sink, pin);
                any_path = true;
            }
        }
    }
    if any_path {
        1.0 - miss
    } else {
        0.0
    }
}

/// COP sensitization factor of one gate-input pin: the probability that the
/// other pins hold non-controlling values (the pin observability is the
/// gate's stem observability times this factor).
pub(crate) fn pin_sensitivity(node: Node<'_>, pin: usize, p: &impl Fn(NodeId) -> f64) -> f64 {
    pin_sensitivity_of_kind(node.kind(), node.fanin(), pin, p)
}

/// [`pin_sensitivity`] with the gate kind supplied explicitly (the ECO
/// overlay's kind-override entry point; see [`node_probability_of_kind`]).
pub(crate) fn pin_sensitivity_of_kind(
    kind: GateKind,
    fanin: &[NodeId],
    pin: usize,
    p: &impl Fn(NodeId) -> f64,
) -> f64 {
    match kind {
        GateKind::And | GateKind::Nand => fanin
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != pin)
            .map(|(_, &f)| p(f))
            .product(),
        GateKind::Or | GateKind::Nor => fanin
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != pin)
            .map(|(_, &f)| 1.0 - p(f))
            .product(),
        // A change on one XOR input always flips the output.
        GateKind::Xor | GateKind::Xnor => 1.0,
        GateKind::Not | GateKind::Buf => 1.0,
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn and_gate_probability() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let p = signal_probabilities_cop(&c, &[0.5, 0.25]);
        let y = c.node_id("y").unwrap();
        assert!((p[y.index()] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn xor_probability_formula() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\ny = XOR(a, b, d)\n").unwrap();
        let p = signal_probabilities_cop(&c, &[0.5, 0.5, 0.5]);
        let y = c.node_id("y").unwrap();
        assert!((p[y.index()] - 0.5).abs() < 1e-12);
        // Biased case: P(odd of 0.1, 0.2) = .1*.8 + .9*.2 = 0.26
        let c2 = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let p2 = signal_probabilities_cop(&c2, &[0.1, 0.2]);
        let y2 = c2.node_id("y").unwrap();
        assert!((p2[y2.index()] - 0.26).abs() < 1e-12);
    }

    #[test]
    fn tree_circuit_probabilities_are_exact() {
        // No reconvergence: COP is exact.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n\
             m = NAND(a, b)\nn = NOR(d, e)\ny = OR(m, n)\n",
        )
        .unwrap();
        let x = [0.3, 0.7, 0.2, 0.9];
        let p = signal_probabilities_cop(&c, &x);
        let m = 1.0 - 0.3 * 0.7;
        let nn = (1.0 - 0.2) * (1.0 - 0.9);
        let y = 1.0 - (1.0 - m) * (1.0 - nn);
        assert!((p[c.node_id("m").unwrap().index()] - m).abs() < 1e-12);
        assert!((p[c.node_id("y").unwrap().index()] - y).abs() < 1e-12);
    }

    #[test]
    fn observability_of_and_inputs() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let p = signal_probabilities_cop(&c, &[0.5, 0.25]);
        let (obs, pin_obs) = observabilities_cop(&c, &p);
        let y = c.node_id("y").unwrap();
        let a = c.node_id("a").unwrap();
        let b = c.node_id("b").unwrap();
        assert_eq!(obs[y.index()], 1.0);
        // a observable iff b = 1 (prob 0.25); b observable iff a = 1 (0.5).
        assert!((obs[a.index()] - 0.25).abs() < 1e-12);
        assert!((obs[b.index()] - 0.5).abs() < 1e-12);
        let base = c.fanin_offset(y);
        assert!((pin_obs[base] - 0.25).abs() < 1e-12);
        assert!((pin_obs[base + 1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn xor_inputs_are_fully_observable() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let p = signal_probabilities_cop(&c, &[0.5, 0.5]);
        let (obs, _) = observabilities_cop(&c, &p);
        assert_eq!(obs[c.node_id("a").unwrap().index()], 1.0);
    }

    #[test]
    fn dead_node_has_zero_observability() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        )
        .unwrap();
        let p = signal_probabilities_cop(&c, &[0.5, 0.5]);
        let (obs, _) = observabilities_cop(&c, &p);
        assert_eq!(obs[c.node_id("dead").unwrap().index()], 0.0);
    }

    #[test]
    fn output_that_also_fans_out_is_fully_observable() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(m)\nOUTPUT(y)\nm = AND(a, b)\ny = NOT(m)\n",
        )
        .unwrap();
        let p = signal_probabilities_cop(&c, &[0.5, 0.5]);
        let (obs, _) = observabilities_cop(&c, &p);
        assert_eq!(obs[c.node_id("m").unwrap().index()], 1.0);
    }

    #[test]
    fn wide_and_probability_is_tiny() {
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..32 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let p = signal_probabilities_cop(&c, &vec![0.5; 32]);
        let y = c.node_id("y").unwrap();
        let expect = 0.5f64.powi(32);
        assert!((p[y.index()] - expect).abs() < 1e-18);
    }
}

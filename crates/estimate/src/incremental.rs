//! Incremental cone-restricted COP: the optimizer hot-path engine.
//!
//! The optimizer's PREPARE step asks one question per primary input per
//! sweep: "what are the detection probabilities at `X` with `x_i` forced
//! to 0 and to 1?"  A full COP evaluation answers it with two passes over
//! the *entire* netlist, although only input *i*'s weight moved.
//! [`IncrementalCop`] instead caches the COP solution (signal
//! probabilities, observabilities, pin observabilities) at the current
//! baseline `X` and, for a single-coordinate perturbation, recomputes only
//!
//! 1. the **forward dirty region**: input *i*'s transitive fanout cone
//!    (cached per input across sweeps via [`wrt_circuit::FanoutCones`]),
//!    with epoch-stamped overlay values — the same trick `FaultSimulator`
//!    uses for per-fault cone propagation.  Committing updates walk the
//!    cone eagerly in topological order, pruning values that land exactly
//!    on their baseline; query-only updates compute probabilities **on
//!    demand** instead, memoized post-order from the nodes the answer
//!    reads;
//! 2. the **backward dirty region**: observabilities are recomputed for
//!    the nodes that can see a change — seeded with the
//!    sensitization-reactive gates fed by a dirty probability (only
//!    AND/OR-family pins sensitize through sibling values; XOR/NOT pins
//!    react solely to their stem), then propagated fanin-wards through a
//!    max-heap in descending node order (the reverse-topological order of
//!    the full pass), pushing a fanin only when its sink's recomputed pin
//!    observability actually differs from the baseline.  Query-only
//!    updates additionally clip the walk to the **query mask** — the
//!    fanout closure of the queried fault sites, which is closed under
//!    the obs-dependency relation and therefore contains every node whose
//!    value can influence an answer.
//!
//! Everything outside the dirty regions falls back to the cached
//! baseline.  One guard sits above all of this: a coordinate whose fanout
//! cone covers half the netlist ([`cone_is_global`]) is answered with
//! plain stateless full passes, because on globally connected circuits
//! (the array multiplier being the extreme) the overlay machinery costs
//! more than the two linear passes it would replace.
//!
//! # Dirty-region invariants
//!
//! * The forward overlay is **exact**: a node's signal probability differs
//!   from the baseline only if the node is stamped in the current epoch
//!   (non-cone nodes cannot depend on input *i*; cone nodes are recomputed
//!   and stamped only when their value changed).
//! * The backward overlay is **conservative but value-exact**: every node
//!   whose observability (or any pin observability) differs from the
//!   baseline is stamped, and every stamped node carries the value a full
//!   reverse pass would have produced, because each recomputation reads
//!   overlay-or-baseline values that are themselves exact (induction over
//!   descending node ids, the full pass's own order).
//! * Since the full pass and the incremental pass evaluate nodes through
//!   the *same* helper functions ([`node_probability`],
//!   [`stem_observability`], [`pin_sensitivity`]) on bit-identical inputs,
//!   the resulting estimates are **bit-identical f64s**, not merely close
//!   — property-tested in `tests/incremental_agreement.rs`.
//!
//! The baseline itself is maintained incrementally: when the optimizer
//! moves one coordinate (MINIMIZE writes `x_i := y` between PREPARE
//! calls), the engine commits a single cone-restricted update instead of
//! rebuilding, so on cone-local circuits a whole coordinate-descent sweep
//! performs no full pass at all after the first.
//!
//! # Batched pending overlay (wide and global cones)
//!
//! Per-move commits are the right trade only while cones are local.  On
//! wide-cone circuits every commit's backward region covers much of the
//! netlist, and the regions of successive commits overlap almost
//! entirely; on globally connected circuits the per-move guard degrades
//! to full rebuilds and stateless passes.  The **batched mode**
//! ([`with_commit_batch`](IncrementalCop::with_commit_batch), `K ≥ 2`)
//! therefore defers commits instead of applying them:
//!
//! * a coordinate move only records its delta in the pending weight
//!   vector and absorbs its fanout cone into the **union frontier**
//!   ([`wrt_circuit::ConeUnion`]) — no node is evaluated at all;
//! * a query is answered against `baseline ∪ pending ∪ query-overlay`:
//!   the dirty cone is the union frontier merged with the queried
//!   coordinate's cone, and the existing demand-driven machinery
//!   (lazy probabilities, mask-clipped backward walk) computes exactly
//!   the values the query reads, at the pending weights with the query
//!   coordinate overridden.  The pending layer itself stores no values,
//!   so every compare-against-baseline prune stays exact;
//! * the pending layer **materializes** — one shared eager forward pass
//!   over the union frontier plus one shared backward push-on-change
//!   pass, then a fold into the baseline — only when `K` moves have
//!   accumulated, when the union frontier exceeds its budget
//!   ([`frontier_exceeds_budget`]), or when an unmasked ANALYSIS query
//!   arrives.  `K` overlapping per-move backward regions collapse into
//!   one union-sized region, which is where the batched win comes from.
//!
//! `K ≤ 1` keeps the exact per-move behavior above (the PR 3 engine);
//! results are bit-identical to full COP in every mode — the
//! multi-coordinate walk property test in
//! `tests/incremental_agreement.rs` covers randomized batch sizes and
//! forced materialization points.

use std::collections::BinaryHeap;

use wrt_circuit::{transitive_fanout, Circuit, ConeUnion, FanoutCones, GateKind, NodeId};
use wrt_fault::{FaultList, FaultSite};

use crate::cop::{
    node_probability, observabilities_cop, pin_sensitivity, signal_probabilities_cop,
    stem_observability,
};
use crate::engine::{cop_fault_probability, DetectionProbabilityEngine};

/// Cumulative work counters of an [`IncrementalCop`].
///
/// `node_evaluations` counts individual node recomputations (one forward
/// probability or one backward observability each); a full two-pass
/// rebuild contributes `2 × num_nodes`.  Comparing this against
/// `engine_calls × 2 × num_nodes` of a full-recompute engine gives the
/// algorithmic O(circuit) → O(cone) saving directly, independent of
/// machine noise — `bench_optimize` records exactly that ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Individual node recomputations (forward + backward).
    pub node_evaluations: u64,
    /// Forward (signal-probability) node recomputations.
    pub forward_evaluations: u64,
    /// Backward (observability) node recomputations.
    pub backward_evaluations: u64,
    /// Full two-pass baseline rebuilds.
    pub full_rebuilds: u64,
    /// Single-coordinate incremental baseline commits.
    pub incremental_commits: u64,
    /// Cone-restricted coordinate perturbations evaluated.
    pub perturbations: u64,
    /// Stateless full-pass estimates taken by the global-cone guard.
    pub stateless_estimates: u64,
    /// Deferred coordinate moves absorbed into the pending overlay
    /// (batched mode; each costs zero node evaluations at move time).
    pub pending_moves: u64,
    /// Pending-overlay materializations: shared multi-coordinate resolve
    /// passes folding the union frontier into the baseline.
    pub materializations: u64,
    /// Sum of union-frontier sizes at materialization time
    /// (`/ materializations` = the average frontier one shared resolve
    /// pass covered).
    pub union_frontier_sum: u64,
    /// Largest pending union frontier observed.
    pub union_frontier_peak: u64,
    /// Forward recomputations skipped by the cross-query pending value
    /// cache: union-frontier nodes outside the queried coordinate's cone
    /// whose pending-weight probability was still valid from an earlier
    /// query epoch (batched mode only).
    pub pending_cache_hits: u64,
}

/// A coordinate whose fanout cone covers at least this fraction of the
/// netlist is answered with stateless full passes instead of the
/// incremental machinery (numerator/denominator of 1/2 = 50 %).
///
/// On globally connected circuits — the array multiplier is the extreme,
/// where every low-order input reaches nearly every gate — the "dirty
/// region" is the whole circuit, and maintaining the overlay (heap,
/// stamps, scattered reads) costs more wall time than the two linear
/// passes it replaces.  The guard keeps such coordinates at full-pass
/// cost while cone-local coordinates keep the incremental win; results
/// are bit-identical either way.
const GLOBAL_CONE_NUMER: usize = 1;
const GLOBAL_CONE_DENOM: usize = 2;

fn cone_is_global(cone_len: usize, num_nodes: usize) -> bool {
    cone_len * GLOBAL_CONE_DENOM >= num_nodes * GLOBAL_CONE_NUMER
}

/// Union-frontier budget of the batched pending overlay: once the pending
/// frontier covers at least this fraction of the netlist (3/4), deferring
/// further moves stops paying — every query would treat nearly the whole
/// circuit as dirty — so the layer materializes early.
const PENDING_FRONTIER_NUMER: usize = 3;
const PENDING_FRONTIER_DENOM: usize = 4;

/// Whether a pending union frontier of `frontier_len` nodes exceeds the
/// materialization budget for a `num_nodes`-node circuit.
fn frontier_exceeds_budget(frontier_len: usize, num_nodes: usize) -> bool {
    frontier_len * PENDING_FRONTIER_DENOM >= num_nodes * PENDING_FRONTIER_NUMER
}

/// Identity of the circuit a baseline was computed for.
///
/// [`Circuit::uid`] is process-unique per built circuit (clones share it,
/// and a clone is the same immutable structure), so equal fingerprints
/// mean the same circuit — names and shapes coinciding across different
/// circuits cannot alias the cache.  The shape fields are a cheap
/// belt-and-suspenders consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    uid: u64,
    nodes: usize,
    inputs: usize,
}

impl Fingerprint {
    fn of(circuit: &Circuit) -> Self {
        Fingerprint {
            uid: circuit.uid(),
            nodes: circuit.num_nodes(),
            inputs: circuit.num_inputs(),
        }
    }
}

/// The cached COP solution at the baseline weight vector.
#[derive(Debug, Clone)]
struct Baseline {
    fingerprint: Fingerprint,
    weights: Vec<f64>,
    p: Vec<f64>,
    obs: Vec<f64>,
    /// Pin observabilities, edge-indexed: pin `pin` of gate `g` lives at
    /// `circuit.fanin_offset(g) + pin` (same layout as the fanin CSR).
    pin_obs: Vec<f64>,
}

/// Incremental cone-restricted COP engine (see the module docs).
///
/// Drop-in replacement for [`crate::CopEngine`] with bit-identical
/// estimates; the difference is purely in work performed when queries move
/// one coordinate at a time, which is exactly the optimizer's access
/// pattern.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_estimate::{CopEngine, DetectionProbabilityEngine, IncrementalCop};
/// use wrt_fault::FaultList;
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let faults = FaultList::checkpoints(&c);
/// let weights = [0.7, 0.4];
/// let mut incremental = IncrementalCop::new();
/// let mut full = CopEngine::new();
/// let inc = incremental.estimate_coordinate_pair(&c, &faults, &weights, 0);
/// let reference = full.estimate_coordinate_pair(&c, &faults, &weights, 0);
/// assert_eq!(inc, reference); // bit-identical
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalCop {
    /// Global-cone stateless guard (see [`cone_is_global`]); on by
    /// default, off for tests/ablations that must force the incremental
    /// path regardless of cone size.  Batched mode ignores it: the
    /// pending overlay *is* the global-cone strategy.
    global_cone_guard: bool,
    /// Commit batch size `K`: `≤ 1` commits every coordinate move
    /// immediately (the PR 3 behavior); `≥ 2` defers up to `K` moves in
    /// the pending overlay before materializing.
    commit_batch: usize,
    /// Current effective weight vector: `baseline.weights` plus every
    /// pending (deferred, not yet materialized) coordinate move.  Equal
    /// to `baseline.weights` whenever the pending layer is empty — in
    /// particular always, in unbatched mode.
    pending_weights: Vec<f64>,
    /// Deferred moves since the last materialization.
    pending_count: usize,
    /// Union of the pending coordinates' fanout cones: the only nodes
    /// whose baseline values may be stale, i.e. the dirty frontier every
    /// batched query must overlay.
    union: ConeUnion,
    /// Scratch for `union ∪ cone(queried coordinate)`.
    merged_cone: Vec<NodeId>,
    /// Cross-query pending value cache: forward (signal-probability)
    /// values *at the pending weight vector*, live iff the slot's stamp
    /// equals `pending_token`.  A union-frontier node outside the
    /// queried coordinate's cone reads the same probability in every
    /// query epoch until a deferred move dirties it (the query override
    /// only reaches the queried cone, and fanout closures cannot leak
    /// into it from outside), so batched query pairs seed their overlay
    /// from this cache instead of re-walking the frontier from the
    /// baseline.  Invalidation is cone-grained: each deferred move
    /// clears exactly its own fanout cone; materialization and rebuilds
    /// retire the whole layer by advancing the token.
    pending_p_scratch: Vec<f64>,
    pending_p_stamp: Vec<u32>,
    pending_token: u32,
    baseline: Option<Baseline>,
    cones: FanoutCones,
    /// Circuit the cone cache belongs to (the cache outlives baseline
    /// rebuilds, but not a circuit switch).
    cone_fingerprint: Option<Fingerprint>,
    /// Overlay epoch; a scratch slot is live iff its stamp equals this.
    epoch: u32,
    p_scratch: Vec<f64>,
    p_stamp: Vec<u32>,
    obs_scratch: Vec<f64>,
    /// One stamp for a node's observability *and* its pin observabilities
    /// (they are always recomputed together).
    obs_stamp: Vec<u32>,
    /// Edge-indexed like [`Baseline::pin_obs`].
    pin_scratch: Vec<f64>,
    queue_stamp: Vec<u32>,
    touched_p: Vec<NodeId>,
    touched_obs: Vec<NodeId>,
    /// Query mask: a node is in the current query region iff its stamp
    /// equals `query_token`.  The region is the fanout closure of the
    /// queried fault sites — exactly the nodes whose observability a
    /// query can read, directly or transitively (the closure is closed
    /// under the obs-dependency relation, since a node's observability
    /// depends only on its own fanout).  Non-committing perturbations
    /// restrict their backward walk to it.
    query_stamp: Vec<u32>,
    query_token: u32,
    /// Site fingerprint of the fault list the mask was built for.
    query_sites: Vec<u32>,
    stats: IncrementalStats,
}

impl Default for IncrementalCop {
    fn default() -> Self {
        IncrementalCop {
            global_cone_guard: true,
            commit_batch: 1,
            pending_weights: Vec::new(),
            pending_count: 0,
            union: ConeUnion::new(),
            merged_cone: Vec::new(),
            pending_p_scratch: Vec::new(),
            pending_p_stamp: Vec::new(),
            pending_token: 1,
            baseline: None,
            cones: FanoutCones::new(),
            cone_fingerprint: None,
            epoch: 0,
            p_scratch: Vec::new(),
            p_stamp: Vec::new(),
            obs_scratch: Vec::new(),
            obs_stamp: Vec::new(),
            pin_scratch: Vec::new(),
            queue_stamp: Vec::new(),
            touched_p: Vec::new(),
            touched_obs: Vec::new(),
            query_stamp: Vec::new(),
            query_token: 0,
            query_sites: Vec::new(),
            stats: IncrementalStats::default(),
        }
    }
}

impl IncrementalCop {
    /// Creates the engine (no baseline yet; the first call builds one).
    pub fn new() -> Self {
        IncrementalCop::default()
    }

    /// Enables or disables the global-cone stateless guard (on by
    /// default).  With the guard off, every coordinate takes the
    /// incremental overlay path no matter how large its fanout cone —
    /// useful for tests and ablations; results are bit-identical either
    /// way.
    pub fn with_global_cone_guard(mut self, enabled: bool) -> Self {
        self.global_cone_guard = enabled;
        self
    }

    /// Sets the commit batch size `K` of the pending overlay.
    ///
    /// `0` and `1` both mean "commit every coordinate move immediately"
    /// — the exact PR 3 per-move behavior, work pattern included.  With
    /// `K ≥ 2` the engine defers up to `K` moves in a pending overlay
    /// (free at move time), answers queries through
    /// `baseline ∪ pending ∪ query-overlay`, and materializes the layer
    /// in one shared resolve pass when `K` moves accumulate, the union
    /// frontier exceeds its budget, or an unmasked
    /// [`estimate`](DetectionProbabilityEngine::estimate) arrives.
    /// Results are bit-identical for every `K`.
    pub fn with_commit_batch(mut self, batch: usize) -> Self {
        self.commit_batch = batch.max(1);
        self
    }

    /// The configured commit batch size (`1` = per-move commits).
    pub fn commit_batch(&self) -> usize {
        self.commit_batch
    }

    /// Whether deferred-commit batching is active.
    fn batched(&self) -> bool {
        self.commit_batch > 1
    }

    /// Number of deferred coordinate moves currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending_count
    }

    /// Size of the pending union frontier (dirty-node count a batched
    /// query overlays on top of the baseline).
    pub fn pending_frontier(&self) -> usize {
        self.union.len()
    }

    /// Forces materialization of the pending overlay now (no-op when
    /// nothing is pending).  Queries decide this on their own; the hook
    /// exists so tests and ablations can place materialization points
    /// deterministically.
    pub fn flush_pending(&mut self, circuit: &Circuit) {
        if self.pending_count > 0 {
            assert!(
                self.baseline
                    .as_ref()
                    .is_some_and(|b| b.fingerprint == Fingerprint::of(circuit)),
                "flush_pending needs the circuit the pending moves were recorded for"
            );
            self.materialize(circuit);
        }
    }

    /// Work counters accumulated since construction (or the last
    /// [`reset_stats`](IncrementalCop::reset_stats)).
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Zeroes the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = IncrementalStats::default();
    }

    /// Advances the overlay epoch, invalidating all scratch values.
    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset stamps (same trick as the
            // fault simulator's per-fault epoch).
            self.p_stamp.fill(0);
            self.obs_stamp.fill(0);
            self.queue_stamp.fill(0);
            self.epoch = 1;
        }
        self.touched_p.clear();
        self.touched_obs.clear();
    }

    /// Drops the cone cache when `circuit` is not the one it was built
    /// for (the cache survives baseline rebuilds at new weights — cones
    /// are structural — but not a circuit switch).
    fn sync_cones(&mut self, circuit: &Circuit) {
        let fingerprint = Fingerprint::of(circuit);
        if self.cone_fingerprint.as_ref() != Some(&fingerprint) {
            self.cones.clear();
            self.cone_fingerprint = Some(fingerprint);
        }
    }

    /// Full two-pass rebuild of the baseline at `weights`.
    fn rebuild(&mut self, circuit: &Circuit, weights: &[f64]) {
        self.sync_cones(circuit);
        let fingerprint = Fingerprint::of(circuit);
        let p = signal_probabilities_cop(circuit, weights);
        let (obs, pin_obs) = observabilities_cop(circuit, &p);
        let n = circuit.num_nodes();
        self.stats.full_rebuilds += 1;
        self.stats.node_evaluations += 2 * n as u64;
        self.stats.forward_evaluations += n as u64;
        self.stats.backward_evaluations += n as u64;
        self.p_scratch = vec![0.0; n];
        self.obs_scratch = vec![0.0; n];
        self.pin_scratch = pin_obs.clone();
        self.p_stamp = vec![0; n];
        self.obs_stamp = vec![0; n];
        self.queue_stamp = vec![0; n];
        self.query_stamp = vec![0; n];
        self.query_token = 0;
        // Sentinel no fault list can match (no valid site has this index).
        self.query_sites = vec![u32::MAX];
        self.epoch = 0;
        self.touched_p.clear();
        self.touched_obs.clear();
        // A rebuild lands exactly at `weights`: nothing is pending.
        self.pending_weights.clear();
        self.pending_weights.extend_from_slice(weights);
        self.pending_count = 0;
        self.union.clear();
        self.pending_p_scratch = vec![0.0; n];
        self.pending_p_stamp = vec![0; n];
        self.pending_token = 1;
        self.baseline = Some(Baseline {
            fingerprint,
            weights: weights.to_vec(),
            p,
            obs,
            pin_obs,
        });
    }

    /// Brings the engine's effective state (baseline plus pending layer)
    /// to exactly `weights`: a no-op when already there, a
    /// cone-restricted commit (unbatched) or a free pending move
    /// (batched) when one coordinate moved, a full rebuild otherwise
    /// (first call, new circuit, or a multi-coordinate jump such as a
    /// restart from fresh starting weights).
    fn ensure_baseline(&mut self, circuit: &Circuit, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            circuit.num_inputs(),
            "one probability per primary input"
        );
        let up_to_date = match &self.baseline {
            Some(b) => b.fingerprint == Fingerprint::of(circuit),
            None => false,
        };
        if !up_to_date {
            self.rebuild(circuit, weights);
            return;
        }
        // Diff against the *effective* weights (pending included); equal
        // to the baseline weights whenever nothing is pending.
        let mut diff = None;
        for (k, (&new, &old)) in weights.iter().zip(&self.pending_weights).enumerate() {
            if new != old {
                if diff.is_some() {
                    // Two or more coordinates moved: not the optimizer's
                    // single-coordinate walk; recompute from scratch.
                    self.rebuild(circuit, weights);
                    return;
                }
                diff = Some(k);
            }
        }
        if let Some(coordinate) = diff {
            let value = weights[coordinate];
            if self.batched() {
                self.pending_move(circuit, coordinate, value);
                return;
            }
            let root = circuit.inputs()[coordinate];
            let cone_len = self.cones.cone(circuit, root).len();
            if self.global_cone_guard && cone_is_global(cone_len, circuit.num_nodes()) {
                // The dirty region is essentially the whole circuit: two
                // linear passes are cheaper than the overlay walk.
                self.rebuild(circuit, weights);
                return;
            }
            self.stats.incremental_commits += 1;
            self.perturb(circuit, coordinate, value);
            self.commit(circuit, coordinate, value);
        }
    }

    /// Defers `x_coordinate := value` into the pending overlay: records
    /// the delta, absorbs the coordinate's fanout cone into the union
    /// frontier, and materializes when the batch or the frontier budget
    /// fills up.  Costs zero node evaluations unless it materializes.
    fn pending_move(&mut self, circuit: &Circuit, coordinate: usize, value: f64) {
        self.stats.pending_moves += 1;
        self.pending_weights[coordinate] = value;
        let root = circuit.inputs()[coordinate];
        let cone = self.cones.cone(circuit, root);
        // Cross-query cache: only this move's cone can read the changed
        // weight; every other cached pending value stays valid.
        for &id in cone {
            self.pending_p_stamp[id.index()] = 0;
        }
        self.union.absorb(cone);
        self.pending_count += 1;
        let frontier = self.union.len();
        self.stats.union_frontier_peak = self.stats.union_frontier_peak.max(frontier as u64);
        if self.pending_count >= self.commit_batch
            || frontier_exceeds_budget(frontier, circuit.num_nodes())
        {
            self.materialize(circuit);
        }
    }

    /// Resolves the whole pending layer into the baseline with one
    /// shared pass pair: an eager forward walk over the union frontier
    /// (sorted ids = topological order) at the pending weights, then one
    /// backward push-on-change walk seeded from everything the forward
    /// pass actually dirtied.  `K` deferred moves with heavily
    /// overlapping dirty regions collapse into a single union-sized
    /// region here — the amortization the batch exists for.
    fn materialize(&mut self, circuit: &Circuit) {
        if self.pending_count == 0 {
            return;
        }
        self.stats.materializations += 1;
        self.stats.union_frontier_sum += self.union.len() as u64;
        self.next_epoch();
        let epoch = self.epoch;
        let baseline = self.baseline.as_ref().expect("materialize needs a baseline");

        // One shared forward+backward overlay walk over the union
        // frontier at the pending weights (the same helper the per-move
        // commit uses over a single cone; the dirty-region induction is
        // identical with "input i's cone" generalized to the frontier).
        eager_overlay_walk(
            circuit,
            self.union.as_slice(),
            &|k: usize| self.pending_weights[k],
            baseline,
            epoch,
            &mut self.p_stamp,
            &mut self.p_scratch,
            &mut self.obs_stamp,
            &mut self.obs_scratch,
            &mut self.pin_scratch,
            &mut self.queue_stamp,
            &mut self.touched_p,
            &mut self.touched_obs,
            &mut self.stats,
        );

        // Fold the overlay into the baseline and retire the layer.
        let baseline = self.baseline.as_mut().expect("materialize needs a baseline");
        baseline.weights.copy_from_slice(&self.pending_weights);
        self.fold_overlay_into_baseline(circuit);
        self.union.clear();
        self.pending_count = 0;
        // The cached values now coincide with the new baseline: retire
        // the whole layer by advancing the token (amortized O(1)).
        self.pending_token = self.pending_token.wrapping_add(1);
        if self.pending_token == 0 {
            self.pending_p_stamp.fill(0);
            self.pending_token = 1;
        }
    }

    /// Writes the current overlay into the baseline, moving the baseline
    /// weight vector to the perturbed point.
    fn commit(&mut self, circuit: &Circuit, coordinate: usize, value: f64) {
        let baseline = self.baseline.as_mut().expect("commit needs a baseline");
        baseline.weights[coordinate] = value;
        self.pending_weights[coordinate] = value;
        self.fold_overlay_into_baseline(circuit);
    }

    /// Copies every epoch-touched overlay value (probabilities,
    /// observabilities, pin observabilities) into the baseline — the
    /// value half of a commit, shared by the per-move and materializing
    /// paths; callers update the baseline weight vector themselves.
    fn fold_overlay_into_baseline(&mut self, circuit: &Circuit) {
        let baseline = self.baseline.as_mut().expect("fold needs a baseline");
        for &id in &self.touched_p {
            baseline.p[id.index()] = self.p_scratch[id.index()];
        }
        for &id in &self.touched_obs {
            let idx = id.index();
            baseline.obs[idx] = self.obs_scratch[idx];
            let lo = circuit.fanin_offset(id);
            let hi = lo + circuit.fanin(id).len();
            baseline.pin_obs[lo..hi].copy_from_slice(&self.pin_scratch[lo..hi]);
        }
    }

    /// Computes the overlay for `x_coordinate := value`, leaving the
    /// baseline untouched.  After this call, overlay lookups (stamped
    /// slots) combined with baseline fallbacks reproduce — bit for bit —
    /// what a full COP evaluation at the perturbed vector would return.
    fn perturb(&mut self, circuit: &Circuit, coordinate: usize, value: f64) {
        self.next_epoch();
        let epoch = self.epoch;
        let root = circuit.inputs()[coordinate];
        let baseline = self.baseline.as_ref().expect("perturb needs a baseline");
        if baseline.weights[coordinate] == value {
            return; // identity perturbation: nothing dirty
        }
        self.stats.perturbations += 1;

        // Forward over input i's fanout cone, then the backward
        // push-on-change walk, through the shared eager helper.
        let cone = self.cones.cone(circuit, root);
        let baseline = self.baseline.as_ref().expect("perturb needs a baseline");
        eager_overlay_walk(
            circuit,
            cone,
            &|k: usize| {
                if k == coordinate {
                    value
                } else {
                    baseline.weights[k]
                }
            },
            baseline,
            epoch,
            &mut self.p_stamp,
            &mut self.p_scratch,
            &mut self.obs_stamp,
            &mut self.obs_scratch,
            &mut self.pin_scratch,
            &mut self.queue_stamp,
            &mut self.touched_p,
            &mut self.touched_obs,
            &mut self.stats,
        );
    }

    /// Query-restricted perturbation: like [`perturb`](Self::perturb) but
    /// never committed, so it computes only what answering `faults` needs:
    ///
    /// * signal probabilities **on demand** ([`lazy_probability`]) — at
    ///   fault-activation nodes and at the fanins of backward-recomputed
    ///   gates — instead of walking the whole fanout cone;
    /// * observabilities only inside the query mask (the fanout closure of
    ///   the queried sites, see
    ///   [`refresh_query_mask`](Self::refresh_query_mask)), seeded
    ///   conservatively with every sensitization-reactive cone gate in the
    ///   mask (without an eager forward walk the exact probability-dirty
    ///   set is unknown; a seed whose inputs turn out unchanged recomputes
    ///   its baseline values and pushes nothing).
    ///
    /// With pending moves outstanding (batched mode), the dirty cone is
    /// the pending union frontier merged with the queried coordinate's
    /// cone, and the perturbed weight vector is the pending one with the
    /// query coordinate overridden — so one epoch overlay carries the
    /// deferred deltas *and* the hypothetical boundary move, against the
    /// unmodified baseline.  The same closure/induction arguments apply
    /// with "input *i*'s cone" replaced by the merged frontier (a union
    /// of fanout closures is itself closed under fanout, and only merged
    /// nodes can hold non-baseline probabilities).
    ///
    /// Values the query reads are still bit-identical to a full
    /// recompute's; the caller must invoke
    /// [`refresh_query_mask`](Self::refresh_query_mask) for `faults`
    /// first.
    fn perturb_query(
        &mut self,
        circuit: &Circuit,
        coordinate: usize,
        value: f64,
        faults: &FaultList,
    ) {
        self.next_epoch();
        let epoch = self.epoch;
        let root = circuit.inputs()[coordinate];
        let baseline = self.baseline.as_ref().expect("perturb needs a baseline");
        if self.pending_count == 0 && baseline.weights[coordinate] == value {
            return; // identity perturbation: the baseline answers as-is
        }
        self.stats.perturbations += 1;
        if self.pending_count > 0 {
            // Seed this epoch's overlay from the cross-query cache:
            // union-frontier nodes outside the queried cone hold their
            // pending-weight probability in every epoch (the query
            // override cannot reach them — a node reading input i's
            // weight or any cone-dirty fanin would itself be in
            // `cone(root)` by fanout closure), so a live cached slot is
            // exactly what the lazy walk would recompute.  Seeded stamps
            // short-circuit the DFS before it re-walks the frontier.
            let root_cone = self.cones.cone(circuit, root);
            let token = self.pending_token;
            let mut j = 0;
            for &id in self.union.as_slice() {
                while j < root_cone.len() && root_cone[j] < id {
                    j += 1;
                }
                if j < root_cone.len() && root_cone[j] == id {
                    continue; // queried cone: depends on the override
                }
                let idx = id.index();
                if self.pending_p_stamp[idx] == token {
                    self.p_scratch[idx] = self.pending_p_scratch[idx];
                    self.p_stamp[idx] = epoch;
                    self.stats.pending_cache_hits += 1;
                }
            }
        }
        // The merged (union ∪ cone) frontier is prepared once per query
        // pair by `refresh_merged_cone`; both boundary-point overlays of
        // the pair read the same merged view.
        let cone: &[NodeId] = if self.pending_count > 0 {
            &self.merged_cone
        } else {
            self.cones.cone(circuit, root)
        };
        let baseline = self.baseline.as_ref().expect("perturb needs a baseline");

        // Backward walk over the (conservative) dirty region inside the
        // query mask, in descending node order as always.  Every cone
        // node that is not a primary input has a cone fanin, so the
        // sensitization-reactive cone gates are exactly the candidates
        // whose pin observabilities can move without their stem moving
        // first (primary inputs have no pins and never react).
        let mut heap: BinaryHeap<usize> = BinaryHeap::new();
        let query_token = self.query_token;
        for &id in cone {
            let s = id.index();
            if self.query_stamp[s] == query_token
                && sens_reacts(circuit.node(id))
                && self.queue_stamp[s] != epoch
            {
                self.queue_stamp[s] = epoch;
                heap.push(s);
            }
        }
        while let Some(idx) = heap.pop() {
            recompute_obs_node(
                circuit,
                baseline,
                epoch,
                idx,
                Some((cone, &self.pending_weights, coordinate, value)),
                Some((&self.query_stamp, query_token)),
                &mut self.p_stamp,
                &mut self.p_scratch,
                &mut self.obs_stamp,
                &mut self.obs_scratch,
                &mut self.pin_scratch,
                &mut self.queue_stamp,
                &mut heap,
                &mut self.touched_obs,
                &mut self.stats,
            );
        }

        // Force the activation probabilities the fault queries read.
        for (_, fault) in faults.iter() {
            let activation = match fault.site {
                FaultSite::Output(node) => node,
                FaultSite::InputPin { gate, pin } => circuit.node(gate).fanin()[pin],
            };
            lazy_probability(
                circuit,
                cone,
                &self.pending_weights,
                coordinate,
                value,
                baseline,
                epoch,
                &mut self.p_stamp,
                &mut self.p_scratch,
                &mut self.stats,
                activation,
            );
        }

        // Harvest: every union-frontier probability this epoch computed
        // outside the queried cone is a pending-weight value (same
        // closure argument as the seed above) — bank it so the next
        // query epoch starts from it instead of the baseline.
        if self.pending_count > 0 {
            let root_cone = self.cones.cone(circuit, root);
            let token = self.pending_token;
            let mut j = 0;
            for &id in self.union.as_slice() {
                while j < root_cone.len() && root_cone[j] < id {
                    j += 1;
                }
                if j < root_cone.len() && root_cone[j] == id {
                    continue;
                }
                let idx = id.index();
                if self.p_stamp[idx] == epoch && self.pending_p_stamp[idx] != token {
                    self.pending_p_scratch[idx] = self.p_scratch[idx];
                    self.pending_p_stamp[idx] = token;
                }
            }
        }
    }

    /// Prepares the effective dirty cone for a batched query pair:
    /// `pending union frontier ∪ cone(root)` into the merged scratch.
    /// Called once per [`estimate_coordinate_pair`] invocation (after
    /// `ensure_baseline`, whose materialization may have just emptied
    /// the pending layer), so both boundary-point overlays share one
    /// merge.  A no-op when nothing is pending — `perturb_query` then
    /// reads the plain cached cone.
    fn refresh_merged_cone(&mut self, circuit: &Circuit, root: NodeId) {
        if self.pending_count > 0 {
            let cone = self.cones.cone(circuit, root);
            self.union.merged_with(cone, &mut self.merged_cone);
        }
    }

    /// Rebuilds the query mask for `faults` unless the cached one already
    /// covers the same sites.
    ///
    /// The mask marks the transitive fanout of every queried site's node:
    /// the only observabilities a query reads are at the sites, and a
    /// node's observability is a function of pin observabilities in its
    /// own fanout alone — so the closure contains every node whose
    /// backward value can influence an answer, and restricting the
    /// backward walk to it is exact (not merely approximate) for these
    /// faults.  The optimizer re-queries the same relevant list all
    /// sweep long, so the mask is usually a cache hit.
    fn refresh_query_mask(&mut self, circuit: &Circuit, faults: &FaultList) {
        let sites: Vec<u32> = faults
            .iter()
            .map(|(_, f)| match f.site {
                FaultSite::Output(node) => node.index() as u32,
                FaultSite::InputPin { gate, .. } => gate.index() as u32,
            })
            .collect();
        if sites == self.query_sites {
            return;
        }
        self.query_token = self.query_token.wrapping_add(1);
        if self.query_token == 0 {
            self.query_stamp.fill(0);
            self.query_token = 1;
        }
        let roots: Vec<NodeId> = sites
            .iter()
            .map(|&s| NodeId::from_index(s as usize))
            .collect();
        for id in transitive_fanout(circuit, &roots) {
            self.query_stamp[id.index()] = self.query_token;
        }
        self.query_sites = sites;
    }

    /// One stateless full COP evaluation (the `CopEngine` path, same
    /// shared helpers, so bit-identical) with stats accounting; touches
    /// neither the baseline nor the overlay.
    fn stateless_estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        let p = signal_probabilities_cop(circuit, input_probs);
        let (obs, pin_obs) = observabilities_cop(circuit, &p);
        let nodes = circuit.num_nodes() as u64;
        self.stats.stateless_estimates += 1;
        self.stats.node_evaluations += 2 * nodes;
        self.stats.forward_evaluations += nodes;
        self.stats.backward_evaluations += nodes;
        faults
            .iter()
            .map(|(_, fault)| {
                cop_fault_probability(
                    circuit,
                    &fault,
                    &|x: NodeId| p[x.index()],
                    &|x: NodeId| obs[x.index()],
                    &|g: NodeId, pin: usize| pin_obs[circuit.fanin_offset(g) + pin],
                )
            })
            .collect()
    }

    /// Detection probabilities through the overlay-or-baseline view.
    fn fault_probabilities(&self, circuit: &Circuit, faults: &FaultList) -> Vec<f64> {
        let baseline = self.baseline.as_ref().expect("needs a baseline");
        let epoch = self.epoch;
        let p = |n: NodeId| {
            if self.p_stamp[n.index()] == epoch {
                self.p_scratch[n.index()]
            } else {
                baseline.p[n.index()]
            }
        };
        let obs = |n: NodeId| {
            if self.obs_stamp[n.index()] == epoch {
                self.obs_scratch[n.index()]
            } else {
                baseline.obs[n.index()]
            }
        };
        let pin_obs = |g: NodeId, pin: usize| {
            let e = circuit.fanin_offset(g) + pin;
            if self.obs_stamp[g.index()] == epoch {
                self.pin_scratch[e]
            } else {
                baseline.pin_obs[e]
            }
        };
        faults
            .iter()
            .map(|(_, fault)| cop_fault_probability(circuit, &fault, &p, &obs, &pin_obs))
            .collect()
    }
}

/// Whether a gate's pin sensitization depends on sibling probabilities.
///
/// Only the AND/OR families with two or more pins do; XOR, XNOR, NOT and
/// BUF pins sensitize unconditionally, so such gates need backward
/// recomputation only when their own stem observability moves — which
/// push-on-change propagation covers without seeding them.
fn sens_reacts(node: wrt_circuit::Node<'_>) -> bool {
    matches!(
        node.kind(),
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor
    ) && node.fanin().len() >= 2
}

/// The committing overlay walk, shared by the per-move perturbation
/// (`nodes` = one input's fanout cone) and the pending materialization
/// (`nodes` = the union frontier): one eager forward pass over `nodes`
/// in topological order at the weights given by `input_prob`, pruning
/// values that land exactly on the baseline, then one backward
/// push-on-change walk.
///
/// Backward seeds are the nodes whose pin sensitization reacts to a
/// probability-dirty fanin — only the AND/OR families with two or more
/// pins have sibling-dependent sensitization; XOR, XNOR, NOT and BUF
/// pins sensitize unconditionally, so those sinks need recomputation
/// only when their *own* stem observability moves, which the
/// push-on-change propagation covers.  Propagation pushes a fanin only
/// when a recomputed pin observability actually moved.  Descending-id
/// processing is the full pass's reverse-topological order, so every
/// sink is settled before its drivers read it.
#[allow(clippy::too_many_arguments)]
fn eager_overlay_walk(
    circuit: &Circuit,
    nodes: &[NodeId],
    input_prob: &dyn Fn(usize) -> f64,
    baseline: &Baseline,
    epoch: u32,
    p_stamp: &mut [u32],
    p_scratch: &mut [f64],
    obs_stamp: &mut [u32],
    obs_scratch: &mut [f64],
    pin_scratch: &mut [f64],
    queue_stamp: &mut [u32],
    touched_p: &mut Vec<NodeId>,
    touched_obs: &mut Vec<NodeId>,
    stats: &mut IncrementalStats,
) {
    for &id in nodes {
        let idx = id.index();
        let node = circuit.node(id);
        let new_p = node_probability(circuit, id, node, &input_prob, &|f: NodeId| {
            if p_stamp[f.index()] == epoch {
                p_scratch[f.index()]
            } else {
                baseline.p[f.index()]
            }
        });
        stats.node_evaluations += 1;
        stats.forward_evaluations += 1;
        // Prune: an unchanged value dirties nothing downstream.
        if new_p != baseline.p[idx] {
            p_scratch[idx] = new_p;
            p_stamp[idx] = epoch;
            touched_p.push(id);
        }
    }

    let mut heap: BinaryHeap<usize> = BinaryHeap::new();
    for &dirty in touched_p.iter() {
        for &sink in circuit.fanout(dirty) {
            let s = sink.index();
            if sens_reacts(circuit.node(sink)) && queue_stamp[s] != epoch {
                queue_stamp[s] = epoch;
                heap.push(s);
            }
        }
    }
    while let Some(idx) = heap.pop() {
        recompute_obs_node(
            circuit,
            baseline,
            epoch,
            idx,
            None,
            None,
            p_stamp,
            p_scratch,
            obs_stamp,
            obs_scratch,
            pin_scratch,
            queue_stamp,
            &mut heap,
            touched_obs,
            stats,
        );
    }
}

/// Demand-driven perturbed signal probability.
///
/// Nodes outside `cone` cannot depend on any perturbed input (queried or
/// pending) and read the baseline directly; cone nodes are recomputed
/// (memoized per epoch via `p_stamp`) from their fanins with an explicit
/// post-order stack, through the same [`node_probability`] helper as the
/// full pass — so every forced value is bit-identical to what an eager
/// cone walk would produce.  `weights` is the effective weight vector
/// (pending moves applied) with coordinate `coordinate` overridden to
/// `value`; in unbatched mode it is the baseline vector itself.
#[allow(clippy::too_many_arguments)]
fn lazy_probability(
    circuit: &Circuit,
    cone: &[NodeId],
    weights: &[f64],
    coordinate: usize,
    value: f64,
    baseline: &Baseline,
    epoch: u32,
    p_stamp: &mut [u32],
    p_scratch: &mut [f64],
    stats: &mut IncrementalStats,
    target: NodeId,
) -> f64 {
    if p_stamp[target.index()] == epoch {
        return p_scratch[target.index()];
    }
    if cone.binary_search(&target).is_err() {
        return baseline.p[target.index()];
    }
    let mut stack = vec![(target, false)];
    while let Some((id, expanded)) = stack.pop() {
        let idx = id.index();
        if p_stamp[idx] == epoch {
            continue;
        }
        if expanded {
            let node = circuit.node(id);
            let new_p = node_probability(
                circuit,
                id,
                node,
                &|k: usize| {
                    if k == coordinate {
                        value
                    } else {
                        weights[k]
                    }
                },
                &|f: NodeId| {
                    if p_stamp[f.index()] == epoch {
                        p_scratch[f.index()]
                    } else {
                        baseline.p[f.index()]
                    }
                },
            );
            stats.node_evaluations += 1;
            stats.forward_evaluations += 1;
            p_scratch[idx] = new_p;
            p_stamp[idx] = epoch;
        } else {
            stack.push((id, true));
            for &f in circuit.node(id).fanin() {
                if p_stamp[f.index()] != epoch && cone.binary_search(&f).is_ok() {
                    stack.push((f, false));
                }
            }
        }
    }
    p_scratch[target.index()]
}

/// One backward-walk step, shared verbatim by the committing
/// ([`IncrementalCop::perturb`]) and query-restricted
/// ([`IncrementalCop::perturb_query`]) walks so the recomputation body —
/// the part the bit-identity invariant rests on — exists exactly once.
///
/// Recomputes node `idx`'s stem observability and pin observabilities
/// from overlay-or-baseline values, stores them in the overlay, and
/// pushes the fanin of every pin whose value moved.  `lazy_force`
/// carries the query-mode cone context (dirty cone, effective weights,
/// queried coordinate, override value): when set, the fanin
/// probabilities a sensitization-reactive gate reads are forced through
/// [`lazy_probability`] first (gates with constant sensitization never
/// read them, so they skip the forcing).  `query_gate` restricts pushes
/// to the query mask; `None` pushes unconditionally (committing mode).
#[allow(clippy::too_many_arguments)]
fn recompute_obs_node(
    circuit: &Circuit,
    baseline: &Baseline,
    epoch: u32,
    idx: usize,
    lazy_force: Option<(&[NodeId], &[f64], usize, f64)>,
    query_gate: Option<(&[u32], u32)>,
    p_stamp: &mut [u32],
    p_scratch: &mut [f64],
    obs_stamp: &mut [u32],
    obs_scratch: &mut [f64],
    pin_scratch: &mut [f64],
    queue_stamp: &mut [u32],
    heap: &mut BinaryHeap<usize>,
    touched_obs: &mut Vec<NodeId>,
    stats: &mut IncrementalStats,
) {
    let id = NodeId::from_index(idx);
    let new_obs = stem_observability(circuit, id, &|sink: NodeId, pin: usize| {
        let e = circuit.fanin_offset(sink) + pin;
        if obs_stamp[sink.index()] == epoch {
            pin_scratch[e]
        } else {
            baseline.pin_obs[e]
        }
    });
    stats.node_evaluations += 1;
    stats.backward_evaluations += 1;
    let node = circuit.node(id);
    if let Some((cone, weights, coordinate, value)) = lazy_force {
        if sens_reacts(node) {
            // Force the perturbed probabilities the sensitization
            // products read; constant-sensitization gates read none.
            for &f in node.fanin() {
                lazy_probability(
                    circuit, cone, weights, coordinate, value, baseline, epoch, p_stamp,
                    p_scratch, stats, f,
                );
            }
        }
    }
    obs_scratch[idx] = new_obs;
    let base = circuit.fanin_offset(id);
    for pin in 0..node.fanin().len() {
        let sens = pin_sensitivity(node, pin, &|f: NodeId| {
            if p_stamp[f.index()] == epoch {
                p_scratch[f.index()]
            } else {
                baseline.p[f.index()]
            }
        });
        pin_scratch[base + pin] = new_obs * sens;
    }
    obs_stamp[idx] = epoch;
    touched_obs.push(id);
    for (pin, &f) in node.fanin().iter().enumerate() {
        if pin_scratch[base + pin] != baseline.pin_obs[base + pin] {
            let fi = f.index();
            let gated_out = query_gate
                .is_some_and(|(query_stamp, token)| query_stamp[fi] != token);
            if !gated_out && queue_stamp[fi] != epoch {
                queue_stamp[fi] = epoch;
                heap.push(fi);
            }
        }
    }
}

impl DetectionProbabilityEngine for IncrementalCop {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        self.ensure_baseline(circuit, input_probs);
        // An unmasked (ANALYSIS-style) query reads observabilities the
        // mask-clipped pending machinery never touches: resolve the
        // pending layer first.  This is the natural amortized
        // materialization point — once per optimizer sweep.
        self.materialize(circuit);
        // Invalidate any leftover perturbation overlay so the lookups
        // read the (now current) baseline.
        self.next_epoch();
        self.fault_probabilities(circuit, faults)
    }

    /// The incremental hot path: both boundary points of coordinate *i*
    /// via cone-restricted overlays over the baseline at `weights` —
    /// merged with the pending union frontier when deferred moves are
    /// outstanding (batched mode).
    fn estimate_coordinate_pair(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        weights: &[f64],
        coordinate: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        assert!(
            coordinate < weights.len(),
            "coordinate {coordinate} out of range for {} inputs",
            weights.len()
        );
        self.sync_cones(circuit);
        if !self.batched() {
            let root = circuit.inputs()[coordinate];
            let cone_len = self.cones.cone(circuit, root).len();
            if self.global_cone_guard && cone_is_global(cone_len, circuit.num_nodes()) {
                // Global-cone guard (per-move mode only): answer
                // statelessly with two full passes per point, leaving the
                // (possibly stale) baseline untouched — the next
                // cone-local query reconciles it in one rebuild.  Batched
                // mode instead answers through the pending overlay, whose
                // mask-clipped walks beat full passes even on global
                // cones.
                let mut perturbed = weights.to_vec();
                perturbed[coordinate] = 0.0;
                let at_zero = self.stateless_estimate(circuit, faults, &perturbed);
                perturbed[coordinate] = 1.0;
                let at_one = self.stateless_estimate(circuit, faults, &perturbed);
                return (at_zero, at_one);
            }
        }
        self.ensure_baseline(circuit, weights);
        // These perturbations are never committed, so both directions can
        // be restricted to what the queries read: probabilities on
        // demand, observabilities inside the sites' fanout closure.
        self.refresh_merged_cone(circuit, circuit.inputs()[coordinate]);
        self.refresh_query_mask(circuit, faults);
        self.perturb_query(circuit, coordinate, 0.0, faults);
        let at_zero = self.fault_probabilities(circuit, faults);
        self.perturb_query(circuit, coordinate, 1.0, faults);
        let at_one = self.fault_probabilities(circuit, faults);
        (at_zero, at_one)
    }

    fn name(&self) -> &'static str {
        "incremental-cop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CopEngine;
    use wrt_circuit::parse_bench;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn reconvergent() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
             m = NAND(a, b)\nn = NOR(b, c)\nx = XOR(m, n)\n\
             y = AND(x, a)\nz = OR(x, c)\n",
        )
        .unwrap()
    }

    #[test]
    fn estimate_is_bit_identical_to_full_cop() {
        let c = reconvergent();
        let faults = FaultList::full(&c);
        let w = [0.3, 0.6, 0.9];
        let full = CopEngine::new().estimate(&c, &faults, &w);
        let inc = IncrementalCop::new().estimate(&c, &faults, &w);
        assert_eq!(bits(&full), bits(&inc));
    }

    #[test]
    fn coordinate_pair_matches_full_recompute_everywhere() {
        let c = reconvergent();
        let faults = FaultList::full(&c);
        let w = [0.25, 0.5, 0.75];
        let mut inc = IncrementalCop::new();
        let mut full = CopEngine::new();
        for i in 0..3 {
            let (i0, i1) = inc.estimate_coordinate_pair(&c, &faults, &w, i);
            let (f0, f1) = full.estimate_coordinate_pair(&c, &faults, &w, i);
            assert_eq!(bits(&i0), bits(&f0), "coordinate {i}, x_i = 0");
            assert_eq!(bits(&i1), bits(&f1), "coordinate {i}, x_i = 1");
        }
    }

    #[test]
    fn sweep_walk_commits_incrementally() {
        // Mimic the optimizer: PREPARE per coordinate, then move it.
        let c = reconvergent();
        let faults = FaultList::checkpoints(&c);
        let mut inc = IncrementalCop::new().with_global_cone_guard(false);
        let mut full = CopEngine::new();
        let mut w = [0.5, 0.5, 0.5];
        let moves = [0.7, 0.2, 0.9, 0.4, 0.55, 0.1];
        for (step, &next) in moves.iter().enumerate() {
            let i = step % 3;
            let got = inc.estimate_coordinate_pair(&c, &faults, &w, i);
            let expected = full.estimate_coordinate_pair(&c, &faults, &w, i);
            assert_eq!(
                (bits(&got.0), bits(&got.1)),
                (bits(&expected.0), bits(&expected.1)),
                "step {step}"
            );
            w[i] = next;
        }
        // Only the very first call built a baseline; every weight move
        // afterwards was a cone-restricted commit.
        let stats = inc.stats();
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.incremental_commits as usize, moves.len() - 1);
    }

    #[test]
    fn boundary_weights_are_handled() {
        let c = reconvergent();
        let faults = FaultList::full(&c);
        let mut inc = IncrementalCop::new();
        let mut full = CopEngine::new();
        for w in [[0.0, 1.0, 0.5], [1.0, 1.0, 1.0], [0.0, 0.0, 0.0]] {
            for i in 0..3 {
                let got = inc.estimate_coordinate_pair(&c, &faults, &w, i);
                let expected = full.estimate_coordinate_pair(&c, &faults, &w, i);
                assert_eq!(bits(&got.0), bits(&expected.0), "w = {w:?}, i = {i}");
                assert_eq!(bits(&got.1), bits(&expected.1), "w = {w:?}, i = {i}");
            }
        }
    }

    #[test]
    fn incremental_work_is_cone_sized_on_disjoint_logic() {
        // Two disjoint trees: perturbing an input of one must not touch
        // the other.  The first tree (a AND b) has 3 nodes; everything
        // else belongs to the disjoint second tree.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             y = AND(a, b)\nm = OR(c, d)\nn = XOR(c, m)\nz = NAND(m, n)\n",
        )
        .unwrap();
        let faults = FaultList::checkpoints(&c);
        let mut inc = IncrementalCop::new();
        let w = [0.5, 0.5, 0.5, 0.5];
        let _ = inc.estimate(&c, &faults, &w);
        inc.reset_stats();
        let _ = inc.estimate_coordinate_pair(&c, &faults, &w, 0);
        let stats = inc.stats();
        assert_eq!(stats.full_rebuilds, 0);
        // Forward region per perturbation: {a, y}; backward region ⊆
        // {a, b, y}.  Two perturbations, so at most 10 evaluations —
        // far below the 2 × 10 nodes of even one full pass.
        assert!(
            stats.node_evaluations <= 10,
            "evaluations = {}",
            stats.node_evaluations
        );
    }

    #[test]
    fn equally_shaped_circuits_do_not_alias_the_cache() {
        // Regression: `parse_bench` names every circuit "bench", and these
        // two share node/input/output counts — only the per-build uid
        // tells them apart.  A shape-based fingerprint served the AND
        // circuit's cached estimates for the OR circuit.
        let and = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let or = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let w = [0.3, 0.7];
        let mut inc = IncrementalCop::new();
        let _ = inc.estimate(&and, &FaultList::full(&and), &w);
        let faults = FaultList::full(&or);
        let got = inc.estimate(&or, &faults, &w);
        let expected = CopEngine::new().estimate(&or, &faults, &w);
        assert_eq!(bits(&got), bits(&expected));
        let pair = inc.estimate_coordinate_pair(&or, &faults, &w, 0);
        let reference = CopEngine::new().estimate_coordinate_pair(&or, &faults, &w, 0);
        assert_eq!(bits(&pair.0), bits(&reference.0));
        assert_eq!(bits(&pair.1), bits(&reference.1));
    }

    #[test]
    fn circuit_switch_rebuilds_cleanly() {
        let c1 = reconvergent();
        let c2 = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let f1 = FaultList::checkpoints(&c1);
        let f2 = FaultList::checkpoints(&c2);
        let mut inc = IncrementalCop::new();
        let _ = inc.estimate(&c1, &f1, &[0.5; 3]);
        let got = inc.estimate(&c2, &f2, &[0.3, 0.8]);
        let expected = CopEngine::new().estimate(&c2, &f2, &[0.3, 0.8]);
        assert_eq!(bits(&got), bits(&expected));
        assert_eq!(inc.stats().full_rebuilds, 2);
    }

    #[test]
    fn batched_walk_is_bit_identical_and_defers_commits() {
        // The optimizer walk again, but against the pending-overlay
        // engine: moves must be deferred (zero evaluations at move time)
        // and every answer must stay bit-identical to the full engine.
        let c = reconvergent();
        let faults = FaultList::checkpoints(&c);
        for batch in [2, 3, 8] {
            let mut inc = IncrementalCop::new().with_commit_batch(batch);
            let mut full = CopEngine::new();
            let mut w = [0.5, 0.5, 0.5];
            let moves = [0.7, 0.2, 0.9, 0.4, 0.55, 0.1];
            for (step, &next) in moves.iter().enumerate() {
                let i = step % 3;
                let got = inc.estimate_coordinate_pair(&c, &faults, &w, i);
                let expected = full.estimate_coordinate_pair(&c, &faults, &w, i);
                assert_eq!(
                    (bits(&got.0), bits(&got.1)),
                    (bits(&expected.0), bits(&expected.1)),
                    "batch {batch}, step {step}"
                );
                w[i] = next;
            }
            let final_got = inc.estimate(&c, &faults, &w);
            let final_expected = full.estimate(&c, &faults, &w);
            assert_eq!(bits(&final_got), bits(&final_expected), "batch {batch}");
            let stats = inc.stats();
            assert_eq!(stats.incremental_commits, 0, "batched mode never per-move commits");
            assert_eq!(stats.pending_moves as usize, moves.len());
            assert!(stats.materializations >= 1);
            assert!(stats.union_frontier_peak >= 1);
            // Everything resolved: the final estimate materialized.
            assert_eq!(inc.pending_len(), 0);
        }
    }

    #[test]
    fn cross_query_pending_cache_hits_and_stays_bit_identical() {
        // Disjoint input supports: deferring a move on `c` dirties only
        // the m/n/z tree, and querying coordinate 0 (`a`, whose cone is
        // just `y`) leaves that frontier untouched — so the second
        // boundary point of a pair, and every later pair, must reuse
        // the frontier's pending-weight probabilities from the
        // cross-query cache instead of re-walking them.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             y = AND(a, b)\nm = OR(c, d)\nn = XOR(c, m)\nz = NAND(m, n)\n",
        )
        .unwrap();
        let faults = FaultList::checkpoints(&c);
        let mut inc = IncrementalCop::new().with_commit_batch(64);
        let mut full = CopEngine::new();
        let mut w = [0.5, 0.5, 0.5, 0.5];
        let _ = inc.estimate(&c, &faults, &w);
        w[2] = 0.8; // deferred: the m/n/z cone is now the pending frontier
        for (step, coordinate) in [0usize, 1, 0].into_iter().enumerate() {
            let got = inc.estimate_coordinate_pair(&c, &faults, &w, coordinate);
            let expected = full.estimate_coordinate_pair(&c, &faults, &w, coordinate);
            assert_eq!(
                (bits(&got.0), bits(&got.1)),
                (bits(&expected.0), bits(&expected.1)),
                "step {step}"
            );
        }
        assert_eq!(inc.pending_len(), 1, "the move stayed deferred throughout");
        assert!(
            inc.stats().pending_cache_hits > 0,
            "repeated query epochs over an unchanged frontier must hit the cache"
        );
        // A second deferred move invalidates exactly its own cone; the
        // answers must stay bit-identical through the cone-grained
        // invalidation and the eventual materialization.
        w[3] = 0.25;
        let got = inc.estimate_coordinate_pair(&c, &faults, &w, 0);
        let expected = full.estimate_coordinate_pair(&c, &faults, &w, 0);
        assert_eq!(bits(&got.0), bits(&expected.0));
        assert_eq!(bits(&got.1), bits(&expected.1));
        let final_got = inc.estimate(&c, &faults, &w);
        let final_expected = full.estimate(&c, &faults, &w);
        assert_eq!(bits(&final_got), bits(&final_expected));
    }

    #[test]
    fn commit_batch_of_zero_or_one_is_exact_per_move_mode() {
        // `--commit-batch 0|1` must degrade to the PR 3 engine, work
        // pattern included: identical stats, identical answers.
        let c = reconvergent();
        let faults = FaultList::checkpoints(&c);
        let mut reference = IncrementalCop::new();
        let mut zero = IncrementalCop::new().with_commit_batch(0);
        let mut one = IncrementalCop::new().with_commit_batch(1);
        assert_eq!(zero.commit_batch(), 1);
        assert_eq!(one.commit_batch(), 1);
        let mut w = [0.4, 0.6, 0.5];
        for step in 0..5 {
            let i = step % 3;
            let want = reference.estimate_coordinate_pair(&c, &faults, &w, i);
            for eng in [&mut zero, &mut one] {
                let got = eng.estimate_coordinate_pair(&c, &faults, &w, i);
                assert_eq!((bits(&got.0), bits(&got.1)), (bits(&want.0), bits(&want.1)));
            }
            w[i] = 0.1 + 0.15 * step as f64;
        }
        assert_eq!(zero.stats(), reference.stats());
        assert_eq!(one.stats(), reference.stats());
        assert_eq!(reference.stats().pending_moves, 0);
        assert_eq!(reference.stats().materializations, 0);
    }

    #[test]
    fn flush_pending_forces_a_materialization_point() {
        // Disjoint trees: input cones are small, so neither the batch
        // size nor the frontier budget triggers on its own.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             y = AND(a, b)\nm = OR(c, d)\nn = XOR(c, m)\nz = NAND(m, n)\n",
        )
        .unwrap();
        let faults = FaultList::checkpoints(&c);
        let mut inc = IncrementalCop::new().with_commit_batch(64);
        let mut w = [0.5, 0.5, 0.5, 0.5];
        let _ = inc.estimate(&c, &faults, &w);
        w[1] = 0.8;
        let _ = inc.estimate_coordinate_pair(&c, &faults, &w, 0);
        assert_eq!(inc.pending_len(), 1);
        assert!(inc.pending_frontier() > 0);
        inc.flush_pending(&c);
        assert_eq!(inc.pending_len(), 0);
        assert_eq!(inc.pending_frontier(), 0);
        assert_eq!(inc.stats().materializations, 1);
        // Still bit-identical after the forced point.
        let got = inc.estimate_coordinate_pair(&c, &faults, &w, 3);
        let expected = CopEngine::new().estimate_coordinate_pair(&c, &faults, &w, 3);
        assert_eq!(bits(&got.0), bits(&expected.0));
        assert_eq!(bits(&got.1), bits(&expected.1));
        // Flushing with nothing pending is a no-op.
        inc.flush_pending(&c);
        assert_eq!(inc.stats().materializations, 1);
    }

    #[test]
    fn frontier_budget_materializes_early() {
        // A chain circuit where every input's cone reaches the output:
        // two pending moves already push the union frontier over the
        // 3/4 budget, so a huge batch K still materializes early.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
             m = AND(a, b)\nn = OR(m, c)\ny = XOR(n, a)\n",
        )
        .unwrap();
        let faults = FaultList::checkpoints(&c);
        let mut inc = IncrementalCop::new().with_commit_batch(1000);
        let mut w = [0.5, 0.5, 0.5];
        let _ = inc.estimate(&c, &faults, &w);
        for step in 0..4 {
            let i = step % 3;
            let _ = inc.estimate_coordinate_pair(&c, &faults, &w, i);
            w[i] = 0.3 + 0.1 * step as f64;
        }
        let stats = inc.stats();
        assert!(
            stats.materializations >= 1,
            "frontier budget must trigger: {stats:?}"
        );
        assert!(stats.union_frontier_sum >= stats.materializations);
    }

    #[test]
    fn batched_global_cones_avoid_stateless_passes() {
        // Wide AND: every input's cone is global (the whole circuit).
        // The per-move engine answers statelessly; the batched engine
        // must answer through the pending overlay instead — and still
        // bit-identically.
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..6 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let faults = FaultList::checkpoints(&c);
        let mut batched = IncrementalCop::new().with_commit_batch(4);
        let mut full = CopEngine::new();
        let mut w = [0.5; 6];
        for step in 0..8 {
            let i = step % 6;
            let got = batched.estimate_coordinate_pair(&c, &faults, &w, i);
            let expected = full.estimate_coordinate_pair(&c, &faults, &w, i);
            assert_eq!(bits(&got.0), bits(&expected.0), "step {step}");
            assert_eq!(bits(&got.1), bits(&expected.1), "step {step}");
            w[i] = 0.6 + 0.04 * i as f64;
        }
        assert_eq!(batched.stats().stateless_estimates, 0);
        assert!(batched.stats().pending_moves > 0);
    }

    #[test]
    fn batched_circuit_switch_resets_the_pending_layer() {
        let c1 = reconvergent();
        let c2 = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let f1 = FaultList::checkpoints(&c1);
        let f2 = FaultList::checkpoints(&c2);
        let mut inc = IncrementalCop::new().with_commit_batch(16);
        let mut w1 = [0.5; 3];
        let _ = inc.estimate(&c1, &f1, &w1);
        w1[0] = 0.7;
        let _ = inc.estimate_coordinate_pair(&c1, &f1, &w1, 1);
        assert_eq!(inc.pending_len(), 1);
        // Switch circuits with moves still pending: must rebuild cleanly.
        let got = inc.estimate(&c2, &f2, &[0.3, 0.8]);
        let expected = CopEngine::new().estimate(&c2, &f2, &[0.3, 0.8]);
        assert_eq!(bits(&got), bits(&expected));
        assert_eq!(inc.pending_len(), 0);
    }

    #[test]
    fn dead_logic_keeps_zero_observability() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let mut inc = IncrementalCop::new();
        let mut full = CopEngine::new();
        let w = [0.4, 0.6];
        let got = inc.estimate_coordinate_pair(&c, &faults, &w, 1);
        let expected = full.estimate_coordinate_pair(&c, &faults, &w, 1);
        assert_eq!(bits(&got.0), bits(&expected.0));
        assert_eq!(bits(&got.1), bits(&expected.1));
    }
}

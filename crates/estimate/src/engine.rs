//! The engine abstraction consumed by the optimizer's ANALYSIS step.

use wrt_circuit::{Circuit, NodeId};
use wrt_fault::{Fault, FaultList, FaultSite};
use wrt_sim::{detection_counts_sharded_opts, SimOptions, WeightedPatterns};

use crate::cop::{observabilities_cop, signal_probabilities_cop};
use crate::exact::exact_detection_probability;
use crate::stafan::StafanCounts;

/// A tool "computing or estimating fault detection probabilities
/// efficiently" (paper §1) — the role PROTEST plays in the original.
///
/// Implementations return one estimate of `p_f(X)` per fault for the given
/// input probabilities `X`.  The optimizer in `wrt-core` is generic over
/// this trait, mirroring the paper's remark that "with slight modifications
/// PREDICT or STAFAN will presumably work as well".
///
/// `Send` is a supertrait: every engine is plain owned data (scratch
/// vectors, RNG state, config), so a per-session engine can live on its
/// session's thread in `wrt-serve` without any shared lock.  Shared
/// *read-only* state belongs in [`crate::CopBaseline`] behind an `Arc`,
/// not in the engine.
pub trait DetectionProbabilityEngine: Send {
    /// Estimates the detection probability of every fault in `faults`
    /// under independent input probabilities `input_probs`.
    ///
    /// Estimates lie in `[0, 1]`; 0 means "not detectable as far as this
    /// engine can tell" (for analytic engines: a redundancy *candidate*,
    /// see [`crate::constant_line_faults`] for proofs).
    ///
    /// # Panics
    ///
    /// Panics if `input_probs.len() != circuit.num_inputs()`.
    fn estimate(&mut self, circuit: &Circuit, faults: &FaultList, input_probs: &[f64])
        -> Vec<f64>;

    /// Estimates detection probabilities at two probability vectors in one
    /// call — the shape of the optimizer's PREPARE step, which needs
    /// `p_f(X, x_i = 0)` and `p_f(X, x_i = 1)` for every coordinate.
    ///
    /// The default delegates to two sequential
    /// [`estimate`](Self::estimate) calls; [`MonteCarloEngine`] overrides
    /// it to simulate both points concurrently on a split thread budget
    /// (identical results either way).
    fn estimate_pair(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        probs_a: &[f64],
        probs_b: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        (
            self.estimate(circuit, faults, probs_a),
            self.estimate(circuit, faults, probs_b),
        )
    }

    /// Estimates detection probabilities at the two boundary perturbations
    /// of one coordinate: `p_f(X, x_i = 0)` and `p_f(X, x_i = 1)` for
    /// `X = weights` — exactly the optimizer's PREPARE query.
    ///
    /// The default materializes both perturbed vectors and delegates to
    /// [`estimate_pair`](Self::estimate_pair); engines with incremental
    /// state (e.g. [`crate::IncrementalCop`]) override it to recompute only
    /// input *i*'s fanout cone and the observability region it dirties,
    /// with identical (bit-identical, for the analytic engines) results.
    ///
    /// Implementations may defer reconciling `weights` moves observed
    /// between calls (the batched pending overlay does, resolving them
    /// amortized), as long as every answer equals a from-scratch
    /// evaluation at the requested vectors — the optimizer's PREPARE
    /// sweep and the partitioner rely only on the returned values.
    ///
    /// # Panics
    ///
    /// Panics if `coordinate >= weights.len()` or if `weights.len()` does
    /// not match the circuit's input count.
    fn estimate_coordinate_pair(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        weights: &[f64],
        coordinate: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut at_zero = weights.to_vec();
        at_zero[coordinate] = 0.0;
        let mut at_one = weights.to_vec();
        at_one[coordinate] = 1.0;
        self.estimate_pair(circuit, faults, &at_zero, &at_one)
    }

    /// Short human-readable engine name for reports.
    fn name(&self) -> &'static str;
}

/// The COP detection-probability model for one fault: activation
/// probability times observability, clamped to `[0, 1]`.
///
/// `p`, `obs` and `pin_obs` are lookups into a consistent COP solution
/// (full arrays for [`CopEngine`], a baseline-plus-overlay view for
/// [`crate::IncrementalCop`]); routing both engines through this one
/// function keeps their estimates bit-identical.
pub(crate) fn cop_fault_probability(
    circuit: &Circuit,
    fault: &Fault,
    p: &impl Fn(NodeId) -> f64,
    obs: &impl Fn(NodeId) -> f64,
    pin_obs: &impl Fn(NodeId, usize) -> f64,
) -> f64 {
    let (act, o) = match fault.site {
        FaultSite::Output(node) => {
            let c1 = p(node);
            let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
            (act, obs(node))
        }
        FaultSite::InputPin { gate, pin } => {
            let driver = circuit.node(gate).fanin()[pin];
            let c1 = p(driver);
            let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
            (act, pin_obs(gate, pin))
        }
    };
    (act * o).clamp(0.0, 1.0)
}

/// Analytic COP-style engine: detection probability ≈ activation
/// probability × observability, both from one forward and one backward
/// propagation pass.
///
/// The default ANALYSIS engine: its cost is two linear passes regardless
/// of `X`, and it resolves arbitrarily small probabilities (a 32-input AND
/// gives exactly `2^-32`), which no sampling engine can.  Reconvergent
/// fanout introduces estimation error (it is a heuristic, like PROTEST's
/// own estimator).
#[derive(Debug, Clone, Default)]
pub struct CopEngine {
    _private: (),
}

impl CopEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        CopEngine::default()
    }
}

impl DetectionProbabilityEngine for CopEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        let p = signal_probabilities_cop(circuit, input_probs);
        let (obs, pin_obs) = observabilities_cop(circuit, &p);
        faults
            .iter()
            .map(|(_, fault)| {
                cop_fault_probability(
                    circuit,
                    &fault,
                    &|n: NodeId| p[n.index()],
                    &|n: NodeId| obs[n.index()],
                    &|g: NodeId, pin: usize| pin_obs[circuit.fanin_offset(g) + pin],
                )
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "cop"
    }
}

/// STAFAN-style engine: counts controllabilities and one-level
/// sensitization rates on a fault-free bit-parallel sample, then combines
/// them analytically.
#[derive(Debug, Clone)]
pub struct StafanEngine {
    /// Number of fault-free patterns to count over.
    pub patterns: u64,
    /// Base RNG seed (each call derives a fresh stream).
    pub seed: u64,
    calls: u64,
}

impl StafanEngine {
    /// Creates an engine counting over `patterns` patterns per call.
    pub fn new(patterns: u64, seed: u64) -> Self {
        StafanEngine {
            patterns,
            seed,
            calls: 0,
        }
    }
}

impl DetectionProbabilityEngine for StafanEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        self.calls += 1;
        let mut source = WeightedPatterns::new(
            input_probs.to_vec(),
            self.seed.wrapping_add(self.calls.wrapping_mul(0x9E37_79B9)),
        );
        let counts = StafanCounts::count(circuit, &mut source, self.patterns);
        counts.detection_probabilities(circuit, faults)
    }

    fn name(&self) -> &'static str {
        "stafan"
    }
}

/// Direct Monte-Carlo engine: full PPSFP fault simulation of a weighted
/// sample; the estimate is the observed detection frequency.
///
/// Unbiased but blind to probabilities below `≈ 1 / patterns`.
///
/// The simulation fans out over the sharded PPSFP engine
/// ([`wrt_sim::detection_counts_sharded_opts`]): `threads` worker threads
/// each own one cone-locality-aware fault shard, and each worker runs the
/// inner loop selected by `sim_options` — by default the event-driven
/// superblock engine ([`SimOptions::default`]).  Neither thread count nor
/// engine choice affects the estimates: all combinations are bit-identical
/// to the serial dense reference.
#[derive(Debug, Clone)]
pub struct MonteCarloEngine {
    /// Number of simulated patterns per call.
    pub patterns: u64,
    /// Base RNG seed (each call derives a fresh stream).
    pub seed: u64,
    /// Fault-simulation worker threads (`1` = serial, `0` = all cores).
    pub threads: usize,
    /// PPSFP inner loop (engine kind and superblock width).
    pub sim_options: SimOptions,
    calls: u64,
}

impl MonteCarloEngine {
    /// Creates a serial engine simulating `patterns` patterns per call
    /// with the default (event-driven) inner loop.
    pub fn new(patterns: u64, seed: u64) -> Self {
        MonteCarloEngine {
            patterns,
            seed,
            threads: 1,
            sim_options: SimOptions::default(),
            calls: 0,
        }
    }

    /// Sets the fault-simulation thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the PPSFP inner loop (estimates are identical either way;
    /// only the wall clock changes).
    pub fn with_sim_options(mut self, sim_options: SimOptions) -> Self {
        self.sim_options = sim_options;
        self
    }
}

impl DetectionProbabilityEngine for MonteCarloEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        self.calls += 1;
        let source = WeightedPatterns::new(
            input_probs.to_vec(),
            self.seed.wrapping_add(self.calls.wrapping_mul(0x2545_F491)),
        );
        let (counts, _) = detection_counts_sharded_opts(
            circuit,
            faults,
            source,
            self.patterns,
            self.threads,
            self.sim_options,
        );
        counts
            .into_iter()
            .map(|c| c as f64 / self.patterns as f64)
            .collect()
    }

    /// Simulates both probability vectors concurrently, splitting the
    /// thread budget between them (each half still shards its fault
    /// list).  Identical output to two sequential
    /// [`estimate`](DetectionProbabilityEngine::estimate) calls — the
    /// per-call seed derivation and the sharded engine's results are
    /// both independent of the thread count.
    ///
    /// With an effective budget of one thread (explicit `threads = 1`,
    /// or auto mode on a small fault list / single-core machine) it
    /// stays fully serial.
    fn estimate_pair(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        probs_a: &[f64],
        probs_b: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let resolved = wrt_sim::recommended_threads(self.threads, faults.len());
        if resolved <= 1 {
            return (
                self.estimate(circuit, faults, probs_a),
                self.estimate(circuit, faults, probs_b),
            );
        }
        let patterns = self.patterns;
        let sim_options = self.sim_options;
        let mut source_for = |probs: &[f64]| {
            self.calls += 1;
            WeightedPatterns::new(
                probs.to_vec(),
                self.seed.wrapping_add(self.calls.wrapping_mul(0x2545_F491)),
            )
        };
        let source_a = source_for(probs_a);
        let source_b = source_for(probs_b);
        // Split the budget without losing the odd thread (e.g. 3 → 2 + 1).
        let threads_b = (resolved / 2).max(1);
        let threads_a = (resolved - resolved / 2).max(1);
        let to_probs = |counts: Vec<u64>| -> Vec<f64> {
            counts
                .into_iter()
                .map(|c| c as f64 / patterns as f64)
                .collect()
        };
        std::thread::scope(|scope| {
            let b = scope.spawn(|| {
                detection_counts_sharded_opts(
                    circuit, faults, source_b, patterns, threads_b, sim_options,
                )
                .0
            });
            let a = detection_counts_sharded_opts(
                circuit, faults, source_a, patterns, threads_a, sim_options,
            )
            .0;
            (
                to_probs(a),
                to_probs(b.join().expect("estimate_pair worker panicked")),
            )
        })
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }
}

/// Exact engine: weighted exhaustive enumeration of the whole input space.
///
/// Ground truth for validation; cost `O(2^inputs · gates · faults)`.
#[derive(Debug, Clone)]
pub struct ExactEngine {
    /// Refuses circuits with more primary inputs than this.
    pub max_inputs: usize,
}

impl ExactEngine {
    /// Creates an exact engine with the given input budget.
    pub fn new(max_inputs: usize) -> Self {
        ExactEngine { max_inputs }
    }
}

impl DetectionProbabilityEngine for ExactEngine {
    /// # Panics
    ///
    /// Panics if the circuit has more than `max_inputs` primary inputs.
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        faults
            .iter()
            .map(|(_, fault)| {
                exact_detection_probability(circuit, fault, input_probs, self.max_inputs)
                    .unwrap_or_else(|| {
                        panic!(
                            "circuit `{}` exceeds the exact engine's input budget of {}",
                            circuit.name(),
                            self.max_inputs
                        )
                    })
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;
    use wrt_fault::FaultList;

    fn tree() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = NAND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap()
    }

    #[test]
    fn cop_is_exact_on_trees() {
        let c = tree();
        let faults = FaultList::full(&c);
        let probs = [0.3, 0.6, 0.2];
        let cop = CopEngine::new().estimate(&c, &faults, &probs);
        for (i, (_, fault)) in faults.iter().enumerate() {
            let exact = exact_detection_probability(&c, fault, &probs, 10).unwrap();
            assert!(
                (cop[i] - exact).abs() < 1e-9,
                "{}: cop {} vs exact {}",
                fault.describe(&c),
                cop[i],
                exact
            );
        }
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let c = tree();
        let faults = FaultList::full(&c);
        let probs = [0.5, 0.5, 0.5];
        let mc = MonteCarloEngine::new(64 * 400, 5).estimate(&c, &faults, &probs);
        for (i, (_, fault)) in faults.iter().enumerate() {
            let exact = exact_detection_probability(&c, fault, &probs, 10).unwrap();
            assert!(
                (mc[i] - exact).abs() < 0.05,
                "{}: mc {} vs exact {}",
                fault.describe(&c),
                mc[i],
                exact
            );
        }
    }

    #[test]
    fn engines_are_object_safe_and_named() {
        let mut engines: Vec<Box<dyn DetectionProbabilityEngine>> = vec![
            Box::new(CopEngine::new()),
            Box::new(StafanEngine::new(64, 1)),
            Box::new(MonteCarloEngine::new(64, 1)),
            Box::new(ExactEngine::new(10)),
        ];
        let c = tree();
        let faults = FaultList::primary_inputs(&c);
        for e in engines.iter_mut() {
            let est = e.estimate(&c, &faults, &[0.5, 0.5, 0.5]);
            assert_eq!(est.len(), faults.len());
            assert!(est.iter().all(|p| (0.0..=1.0).contains(p)), "{}", e.name());
            assert!(!e.name().is_empty());
        }
    }

    #[test]
    fn monte_carlo_threads_do_not_change_estimates() {
        let c = tree();
        let faults = FaultList::full(&c);
        let probs = [0.4, 0.5, 0.6];
        let serial = MonteCarloEngine::new(64 * 20, 9).estimate(&c, &faults, &probs);
        for threads in [0, 2, 4] {
            let sharded = MonteCarloEngine::new(64 * 20, 9)
                .with_threads(threads)
                .estimate(&c, &faults, &probs);
            assert_eq!(serial, sharded, "threads = {threads}");
        }
    }

    #[test]
    fn monte_carlo_sim_options_do_not_change_estimates() {
        let c = tree();
        let faults = FaultList::full(&c);
        let probs = [0.4, 0.5, 0.6];
        let dense = MonteCarloEngine::new(64 * 20, 9)
            .with_sim_options(SimOptions::dense())
            .estimate(&c, &faults, &probs);
        for words in wrt_sim::SUPPORTED_BLOCK_WORDS {
            let event = MonteCarloEngine::new(64 * 20, 9)
                .with_sim_options(SimOptions::event(words))
                .estimate(&c, &faults, &probs);
            assert_eq!(dense, event, "block_words = {words}");
        }
    }

    #[test]
    fn monte_carlo_estimate_pair_matches_sequential_calls() {
        let c = tree();
        let faults = FaultList::full(&c);
        let a = [0.3, 0.5, 0.7];
        let b = [0.7, 0.5, 0.3];
        // Same engine state (seed, calls): pair == two sequential calls.
        let mut sequential = MonteCarloEngine::new(64 * 10, 13);
        let expected = (
            sequential.estimate(&c, &faults, &a),
            sequential.estimate(&c, &faults, &b),
        );
        for threads in [0, 1, 2, 4] {
            let mut paired = MonteCarloEngine::new(64 * 10, 13).with_threads(threads);
            let got = paired.estimate_pair(&c, &faults, &a, &b);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn estimate_pair_matches_two_estimates() {
        let c = tree();
        let faults = FaultList::full(&c);
        let a = [0.2, 0.5, 0.8];
        let b = [0.8, 0.5, 0.2];
        let mut engine = CopEngine::new();
        let (pa, pb) = engine.estimate_pair(&c, &faults, &a, &b);
        assert_eq!(pa, engine.estimate(&c, &faults, &a));
        assert_eq!(pb, engine.estimate(&c, &faults, &b));
    }

    #[test]
    fn cop_resolves_tiny_probabilities() {
        // 24-input AND: p(output s-a-0) = 2^-24 exactly under 0.5 weights.
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..24 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![wrt_fault::Fault::output(y, false)]);
        let est = CopEngine::new().estimate(&c, &faults, &[0.5; 24]);
        assert!((est[0] - 0.5f64.powi(24)).abs() < 1e-12);
        // Monte Carlo with 1k patterns sees nothing.
        let mc = MonteCarloEngine::new(1024, 3).estimate(&c, &faults, &[0.5; 24]);
        assert_eq!(mc[0], 0.0);
    }
}

//! The engine abstraction consumed by the optimizer's ANALYSIS step.

use wrt_circuit::Circuit;
use wrt_fault::{FaultList, FaultSite};
use wrt_sim::{detection_counts, WeightedPatterns};

use crate::cop::{observabilities_cop, signal_probabilities_cop};
use crate::exact::exact_detection_probability;
use crate::stafan::StafanCounts;

/// A tool "computing or estimating fault detection probabilities
/// efficiently" (paper §1) — the role PROTEST plays in the original.
///
/// Implementations return one estimate of `p_f(X)` per fault for the given
/// input probabilities `X`.  The optimizer in `wrt-core` is generic over
/// this trait, mirroring the paper's remark that "with slight modifications
/// PREDICT or STAFAN will presumably work as well".
pub trait DetectionProbabilityEngine {
    /// Estimates the detection probability of every fault in `faults`
    /// under independent input probabilities `input_probs`.
    ///
    /// Estimates lie in `[0, 1]`; 0 means "not detectable as far as this
    /// engine can tell" (for analytic engines: a redundancy *candidate*,
    /// see [`crate::constant_line_faults`] for proofs).
    ///
    /// # Panics
    ///
    /// Panics if `input_probs.len() != circuit.num_inputs()`.
    fn estimate(&mut self, circuit: &Circuit, faults: &FaultList, input_probs: &[f64])
        -> Vec<f64>;

    /// Short human-readable engine name for reports.
    fn name(&self) -> &'static str;
}

/// Analytic COP-style engine: detection probability ≈ activation
/// probability × observability, both from one forward and one backward
/// propagation pass.
///
/// The default ANALYSIS engine: its cost is two linear passes regardless
/// of `X`, and it resolves arbitrarily small probabilities (a 32-input AND
/// gives exactly `2^-32`), which no sampling engine can.  Reconvergent
/// fanout introduces estimation error (it is a heuristic, like PROTEST's
/// own estimator).
#[derive(Debug, Clone, Default)]
pub struct CopEngine {
    _private: (),
}

impl CopEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        CopEngine::default()
    }
}

impl DetectionProbabilityEngine for CopEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        let p = signal_probabilities_cop(circuit, input_probs);
        let (obs, pin_obs) = observabilities_cop(circuit, &p);
        faults
            .iter()
            .map(|(_, fault)| {
                let (act, o) = match fault.site {
                    FaultSite::Output(node) => {
                        let c1 = p[node.index()];
                        let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
                        (act, obs[node.index()])
                    }
                    FaultSite::InputPin { gate, pin } => {
                        let driver = circuit.node(gate).fanin()[pin];
                        let c1 = p[driver.index()];
                        let act = if fault.stuck_value { 1.0 - c1 } else { c1 };
                        (act, pin_obs[gate.index()][pin])
                    }
                };
                (act * o).clamp(0.0, 1.0)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "cop"
    }
}

/// STAFAN-style engine: counts controllabilities and one-level
/// sensitization rates on a fault-free bit-parallel sample, then combines
/// them analytically.
#[derive(Debug, Clone)]
pub struct StafanEngine {
    /// Number of fault-free patterns to count over.
    pub patterns: u64,
    /// Base RNG seed (each call derives a fresh stream).
    pub seed: u64,
    calls: u64,
}

impl StafanEngine {
    /// Creates an engine counting over `patterns` patterns per call.
    pub fn new(patterns: u64, seed: u64) -> Self {
        StafanEngine {
            patterns,
            seed,
            calls: 0,
        }
    }
}

impl DetectionProbabilityEngine for StafanEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        self.calls += 1;
        let mut source = WeightedPatterns::new(
            input_probs.to_vec(),
            self.seed.wrapping_add(self.calls.wrapping_mul(0x9E37_79B9)),
        );
        let counts = StafanCounts::count(circuit, &mut source, self.patterns);
        counts.detection_probabilities(circuit, faults)
    }

    fn name(&self) -> &'static str {
        "stafan"
    }
}

/// Direct Monte-Carlo engine: full PPSFP fault simulation of a weighted
/// sample; the estimate is the observed detection frequency.
///
/// Unbiased but blind to probabilities below `≈ 1 / patterns`.
#[derive(Debug, Clone)]
pub struct MonteCarloEngine {
    /// Number of simulated patterns per call.
    pub patterns: u64,
    /// Base RNG seed (each call derives a fresh stream).
    pub seed: u64,
    calls: u64,
}

impl MonteCarloEngine {
    /// Creates an engine simulating `patterns` patterns per call.
    pub fn new(patterns: u64, seed: u64) -> Self {
        MonteCarloEngine {
            patterns,
            seed,
            calls: 0,
        }
    }
}

impl DetectionProbabilityEngine for MonteCarloEngine {
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        self.calls += 1;
        let source = WeightedPatterns::new(
            input_probs.to_vec(),
            self.seed.wrapping_add(self.calls.wrapping_mul(0x2545_F491)),
        );
        let counts = detection_counts(circuit, faults, source, self.patterns);
        counts
            .into_iter()
            .map(|c| c as f64 / self.patterns as f64)
            .collect()
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }
}

/// Exact engine: weighted exhaustive enumeration of the whole input space.
///
/// Ground truth for validation; cost `O(2^inputs · gates · faults)`.
#[derive(Debug, Clone)]
pub struct ExactEngine {
    /// Refuses circuits with more primary inputs than this.
    pub max_inputs: usize,
}

impl ExactEngine {
    /// Creates an exact engine with the given input budget.
    pub fn new(max_inputs: usize) -> Self {
        ExactEngine { max_inputs }
    }
}

impl DetectionProbabilityEngine for ExactEngine {
    /// # Panics
    ///
    /// Panics if the circuit has more than `max_inputs` primary inputs.
    fn estimate(
        &mut self,
        circuit: &Circuit,
        faults: &FaultList,
        input_probs: &[f64],
    ) -> Vec<f64> {
        faults
            .iter()
            .map(|(_, fault)| {
                exact_detection_probability(circuit, fault, input_probs, self.max_inputs)
                    .unwrap_or_else(|| {
                        panic!(
                            "circuit `{}` exceeds the exact engine's input budget of {}",
                            circuit.name(),
                            self.max_inputs
                        )
                    })
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;
    use wrt_fault::FaultList;

    fn tree() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = NAND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap()
    }

    #[test]
    fn cop_is_exact_on_trees() {
        let c = tree();
        let faults = FaultList::full(&c);
        let probs = [0.3, 0.6, 0.2];
        let cop = CopEngine::new().estimate(&c, &faults, &probs);
        for (i, (_, fault)) in faults.iter().enumerate() {
            let exact = exact_detection_probability(&c, fault, &probs, 10).unwrap();
            assert!(
                (cop[i] - exact).abs() < 1e-9,
                "{}: cop {} vs exact {}",
                fault.describe(&c),
                cop[i],
                exact
            );
        }
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let c = tree();
        let faults = FaultList::full(&c);
        let probs = [0.5, 0.5, 0.5];
        let mc = MonteCarloEngine::new(64 * 400, 5).estimate(&c, &faults, &probs);
        for (i, (_, fault)) in faults.iter().enumerate() {
            let exact = exact_detection_probability(&c, fault, &probs, 10).unwrap();
            assert!(
                (mc[i] - exact).abs() < 0.05,
                "{}: mc {} vs exact {}",
                fault.describe(&c),
                mc[i],
                exact
            );
        }
    }

    #[test]
    fn engines_are_object_safe_and_named() {
        let mut engines: Vec<Box<dyn DetectionProbabilityEngine>> = vec![
            Box::new(CopEngine::new()),
            Box::new(StafanEngine::new(64, 1)),
            Box::new(MonteCarloEngine::new(64, 1)),
            Box::new(ExactEngine::new(10)),
        ];
        let c = tree();
        let faults = FaultList::primary_inputs(&c);
        for e in engines.iter_mut() {
            let est = e.estimate(&c, &faults, &[0.5, 0.5, 0.5]);
            assert_eq!(est.len(), faults.len());
            assert!(est.iter().all(|p| (0.0..=1.0).contains(p)), "{}", e.name());
            assert!(!e.name().is_empty());
        }
    }

    #[test]
    fn cop_resolves_tiny_probabilities() {
        // 24-input AND: p(output s-a-0) = 2^-24 exactly under 0.5 weights.
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..24 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![wrt_fault::Fault::output(y, false)]);
        let est = CopEngine::new().estimate(&c, &faults, &[0.5; 24]);
        assert!((est[0] - 0.5f64.powi(24)).abs() < 1e-12);
        // Monte Carlo with 1k patterns sees nothing.
        let mc = MonteCarloEngine::new(1024, 3).estimate(&c, &faults, &[0.5; 24]);
        assert_eq!(mc[0], 0.0);
    }
}

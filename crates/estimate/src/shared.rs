//! Shared read-only COP baseline + cheap per-session overlay.
//!
//! Batch mode owns one engine per run, so `CopEngine`/`IncrementalCop`
//! could keep mutable state and nobody cared.  A resident server cannot:
//! many concurrent sessions query the same circuit at the same weight
//! vector, and they must never serialize on one lock.  This module is
//! the ownership split that makes that work:
//!
//! * [`CopBaseline`] — the expensive part (one forward + one backward
//!   COP pass at a fixed weight vector) computed once, then immutable.
//!   It is `Send + Sync` by construction (plain owned vectors behind an
//!   `Arc<Circuit>`), so any number of sessions share it by `Arc` and
//!   answer per-fault queries through `&self` with zero locking.
//! * [`SessionCop`] — per-session scratch layered over an
//!   `Arc<CopBaseline>`: stamped copy-on-write overlays for signal
//!   probabilities, observabilities, and pin observabilities.  A what-if
//!   ECO query ([`SessionCop::what_if`]) mutates k gate kinds *virtually*:
//!   a cone-restricted forward pass plus a push-on-change backward pass
//!   touch only the dirtied region, instead of the `2·n` node
//!   evaluations a cold recompute costs — with results bit-identical to
//!   rebuilding the mutated circuit and running full COP, because both
//!   paths evaluate nodes through the same kind-parameterized helpers
//!   and unchanged values are reused bitwise from the baseline.

use std::sync::Arc;

use wrt_circuit::{transitive_fanout, Circuit, GateKind, NodeId};
use wrt_fault::FaultList;

use crate::cop::{
    node_probability_of_kind, observabilities_cop, pin_sensitivity_of_kind,
    signal_probabilities_cop, stem_observability,
};
use crate::engine::cop_fault_probability;

/// An immutable, shareable COP solution for one circuit at one weight
/// vector: signal probabilities, node observabilities, and edge-indexed
/// pin observabilities from one forward and one backward pass.
///
/// Build once (the cold cost), then share via `Arc` across any number of
/// sessions; every query path takes `&self`.
#[derive(Debug)]
pub struct CopBaseline {
    circuit: Arc<Circuit>,
    weights: Arc<[f64]>,
    p: Vec<f64>,
    obs: Vec<f64>,
    pin_obs: Vec<f64>,
}

impl CopBaseline {
    /// Runs the two COP passes for `circuit` at `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != circuit.num_inputs()`.
    pub fn build(circuit: Arc<Circuit>, weights: &[f64]) -> Self {
        let p = signal_probabilities_cop(&circuit, weights);
        let (obs, pin_obs) = observabilities_cop(&circuit, &p);
        CopBaseline {
            weights: weights.into(),
            circuit,
            p,
            obs,
            pin_obs,
        }
    }

    /// The circuit this baseline was computed for.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The input weight vector the baseline was computed at (shared,
    /// copy-on-write: sessions clone the `Arc`, never the data).
    pub fn weights(&self) -> &Arc<[f64]> {
        &self.weights
    }

    /// Signal probability of one node.
    pub fn probability(&self, id: NodeId) -> f64 {
        self.p[id.index()]
    }

    /// Observability of one node.
    pub fn observability(&self, id: NodeId) -> f64 {
        self.obs[id.index()]
    }

    /// COP detection probability of every fault in `faults`, through the
    /// same [`cop_fault_probability`] helper every other engine uses —
    /// bit-identical to `CopEngine` at the same weights.
    pub fn detection_probabilities(&self, faults: &FaultList) -> Vec<f64> {
        faults
            .as_slice()
            .iter()
            .map(|fault| {
                cop_fault_probability(
                    &self.circuit,
                    fault,
                    &|f: NodeId| self.p[f.index()],
                    &|n: NodeId| self.obs[n.index()],
                    &|g: NodeId, pin: usize| self.pin_obs[self.circuit.fanin_offset(g) + pin],
                )
            })
            .collect()
    }

    /// Node evaluations a cold recompute of this baseline costs: one
    /// forward pass plus one backward pass over every node.
    pub fn cold_evals(&self) -> u64 {
        2 * self.circuit.num_nodes() as u64
    }
}

/// One virtual gate-kind mutation of a what-if ECO query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcoMutation {
    /// The gate to mutate.
    pub gate: NodeId,
    /// Its replacement kind (must accept the gate's existing fanin count).
    pub kind: GateKind,
}

/// Eval accounting of one [`SessionCop::what_if`] query, against the
/// cold-recompute cost it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcoStats {
    /// Nodes in the forward (fanout) cone of the mutated gates.
    pub cone_nodes: usize,
    /// Node evaluations of the cone-restricted forward pass.
    pub forward_evals: u64,
    /// Stem-observability evaluations of the push-on-change backward pass.
    pub backward_evals: u64,
    /// Node probabilities that actually changed (bitwise).
    pub changed_probabilities: usize,
    /// Node observabilities that actually changed (bitwise).
    pub changed_observabilities: usize,
    /// Cold-recompute cost for comparison (`2 · num_nodes`).
    pub cold_evals: u64,
}

impl EcoStats {
    /// Total overlay node evaluations.
    pub fn overlay_evals(&self) -> u64 {
        self.forward_evals + self.backward_evals
    }

    /// How many times fewer node evals than a cold recompute.
    pub fn eval_reduction(&self) -> f64 {
        self.cold_evals as f64 / (self.overlay_evals().max(1)) as f64
    }
}

/// Per-session overlay over a shared [`CopBaseline`]: owned stamped
/// scratch (no locks, `Send`), reusable across queries without
/// reallocation.
#[derive(Debug)]
pub struct SessionCop {
    baseline: Arc<CopBaseline>,
    token: u32,
    p_new: Vec<f64>,
    p_stamp: Vec<u32>,
    obs_new: Vec<f64>,
    obs_stamp: Vec<u32>,
    pin_new: Vec<f64>,
    pin_stamp: Vec<u32>,
    touch_stamp: Vec<u32>,
    /// Sorted `(gate, kind)` overrides of the current query.
    overrides: Vec<(NodeId, GateKind)>,
}

impl SessionCop {
    /// Wraps a shared baseline in fresh per-session scratch.
    pub fn new(baseline: Arc<CopBaseline>) -> Self {
        let n = baseline.circuit.num_nodes();
        let e = baseline.circuit.num_edges();
        SessionCop {
            baseline,
            token: 0,
            p_new: vec![0.0; n],
            p_stamp: vec![0; n],
            obs_new: vec![0.0; n],
            obs_stamp: vec![0; n],
            pin_new: vec![0.0; e],
            pin_stamp: vec![0; e],
            touch_stamp: vec![0; n],
            overrides: Vec::new(),
        }
    }

    /// The shared baseline this session is layered over.
    pub fn baseline(&self) -> &Arc<CopBaseline> {
        &self.baseline
    }

    fn kind_of(&self, id: NodeId) -> GateKind {
        match self.overrides.binary_search_by_key(&id, |&(g, _)| g) {
            Ok(i) => self.overrides[i].1,
            Err(_) => self.baseline.circuit.node(id).kind(),
        }
    }

    /// Answers a what-if ECO query: with the gates in `mutations`
    /// virtually replaced by their new kinds, what is the COP detection
    /// probability of every fault in `faults`?
    ///
    /// Returns the full detection-probability vector (bit-identical to
    /// rebuilding the mutated circuit and asking a cold `CopEngine` with
    /// the same fault list) plus the eval accounting.  The baseline is
    /// untouched; the overlay lives only until the next query.
    ///
    /// # Errors
    ///
    /// Rejects mutations that change the netlist structure rather than a
    /// gate function: unknown/out-of-range gates, primary inputs and
    /// constants (as target or replacement), kinds whose arity range
    /// does not accept the gate's existing fanin count, and duplicate
    /// gates within one query.
    pub fn what_if(
        &mut self,
        mutations: &[EcoMutation],
        faults: &FaultList,
    ) -> Result<(Vec<f64>, EcoStats), String> {
        let circuit = Arc::clone(&self.baseline.circuit);
        if mutations.is_empty() {
            return Err("an ECO query mutates at least one gate".into());
        }
        self.overrides.clear();
        for m in mutations {
            if m.gate.index() >= circuit.num_nodes() {
                return Err(format!("node id {} out of range", m.gate));
            }
            let node = circuit.node(m.gate);
            if node.kind().is_source() {
                return Err(format!(
                    "`{}` is a primary input or constant, not a gate",
                    node.name()
                ));
            }
            if m.kind.is_source() {
                return Err(format!(
                    "cannot mutate `{}` into {:?} — an ECO changes a gate \
                     function, not the netlist structure",
                    node.name(),
                    m.kind
                ));
            }
            let (lo, hi) = m.kind.arity_range();
            let fanin = node.fanin().len();
            if fanin < lo || fanin > hi {
                return Err(format!(
                    "{:?} cannot drive `{}`: it takes {lo}..={hi} fanins, the gate has {fanin}",
                    m.kind,
                    node.name()
                ));
            }
            self.overrides.push((m.gate, m.kind));
        }
        self.overrides.sort_unstable_by_key(|&(g, _)| g);
        if self.overrides.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err("duplicate gate in ECO mutation list".into());
        }

        self.token += 1;
        let token = self.token;
        let weights = Arc::clone(&self.baseline.weights);
        let roots: Vec<NodeId> = self.overrides.iter().map(|&(g, _)| g).collect();
        let cone = transitive_fanout(&circuit, &roots);
        let mut stats = EcoStats {
            cone_nodes: cone.len(),
            forward_evals: 0,
            backward_evals: 0,
            changed_probabilities: 0,
            changed_observabilities: 0,
            cold_evals: self.baseline.cold_evals(),
        };

        // Forward: recompute signal probabilities inside the cone, in
        // ascending (topological) order, reading overlay-then-baseline.
        for &id in &cone {
            let node = circuit.node(id);
            let kind = self.kind_of(id);
            let val = {
                let p_stamp = &self.p_stamp;
                let p_new = &self.p_new;
                let base = &self.baseline;
                node_probability_of_kind(
                    &circuit,
                    id,
                    kind,
                    node.fanin(),
                    &|k: usize| weights[k],
                    &|f: NodeId| {
                        if p_stamp[f.index()] == token {
                            p_new[f.index()]
                        } else {
                            base.p[f.index()]
                        }
                    },
                )
            };
            stats.forward_evals += 1;
            if val.to_bits() != self.baseline.p[id.index()].to_bits() {
                stats.changed_probabilities += 1;
            }
            self.p_new[id.index()] = val;
            self.p_stamp[id.index()] = token;
            // Every cone node must refresh its fanin pin observabilities
            // in the backward pass (its probability or kind may have
            // changed the sensitivities), so seed the touch set with the
            // whole cone.
            self.touch_stamp[id.index()] = token;
        }

        // Backward: recompute observabilities for touched nodes in
        // descending (reverse topological) order.  A node is touched when
        // it is in the cone, or when a changed fanin-pin observability of
        // some sink was pushed down to it — so the pass dies out exactly
        // where the mutation stops mattering, mirroring the full pass of
        // `observabilities_cop` bit for bit on the region it does visit.
        let max_idx = cone.last().map_or(0, |id| id.index());
        for idx in (0..=max_idx).rev() {
            if self.touch_stamp[idx] != token {
                continue;
            }
            let id = NodeId::from_index(idx);
            let new_obs = {
                let pin_stamp = &self.pin_stamp;
                let pin_new = &self.pin_new;
                let base = &self.baseline;
                stem_observability(&circuit, id, &|sink: NodeId, pin: usize| {
                    let e = circuit.fanin_offset(sink) + pin;
                    if pin_stamp[e] == token {
                        pin_new[e]
                    } else {
                        base.pin_obs[e]
                    }
                })
            };
            stats.backward_evals += 1;
            let obs_changed = new_obs.to_bits() != self.baseline.obs[idx].to_bits();
            if obs_changed {
                stats.changed_observabilities += 1;
            }
            self.obs_new[idx] = new_obs;
            self.obs_stamp[idx] = token;
            // Refresh this node's own fanin pin observabilities when its
            // observability moved or its sensitivities may have (any cone
            // node: probability/kind changes reach the siblings' pins).
            let in_cone = self.p_stamp[idx] == token;
            if !(obs_changed || in_cone) {
                continue;
            }
            let node = circuit.node(id);
            let kind = self.kind_of(id);
            let fanin = node.fanin();
            let base_edge = circuit.fanin_offset(id);
            for pin in 0..fanin.len() {
                let val = {
                    let p_stamp = &self.p_stamp;
                    let p_new = &self.p_new;
                    let base = &self.baseline;
                    new_obs
                        * pin_sensitivity_of_kind(kind, fanin, pin, &|f: NodeId| {
                            if p_stamp[f.index()] == token {
                                p_new[f.index()]
                            } else {
                                base.p[f.index()]
                            }
                        })
                };
                let e = base_edge + pin;
                self.pin_new[e] = val;
                self.pin_stamp[e] = token;
                if val.to_bits() != self.baseline.pin_obs[e].to_bits() {
                    self.touch_stamp[fanin[pin].index()] = token;
                }
            }
        }

        // Per-fault detection probabilities through the one shared
        // helper, overlay-then-baseline on every lookup.
        let dp = faults
            .as_slice()
            .iter()
            .map(|fault| {
                let s = &*self;
                cop_fault_probability(
                    &circuit,
                    fault,
                    &|f: NodeId| {
                        if s.p_stamp[f.index()] == token {
                            s.p_new[f.index()]
                        } else {
                            s.baseline.p[f.index()]
                        }
                    },
                    &|n: NodeId| {
                        if s.obs_stamp[n.index()] == token {
                            s.obs_new[n.index()]
                        } else {
                            s.baseline.obs[n.index()]
                        }
                    },
                    &|g: NodeId, pin: usize| {
                        let e = circuit.fanin_offset(g) + pin;
                        if s.pin_stamp[e] == token {
                            s.pin_new[e]
                        } else {
                            s.baseline.pin_obs[e]
                        }
                    },
                )
            })
            .collect();
        Ok((dp, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CopEngine, DetectionProbabilityEngine};
    use wrt_circuit::CircuitBuilder;

    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}

    #[test]
    fn baseline_is_shareable_and_session_is_send() {
        assert_send_sync::<CopBaseline>();
        assert_send::<SessionCop>();
    }

    fn experiment_faults(circuit: &Circuit) -> FaultList {
        FaultList::checkpoints(circuit).collapse_equivalent(circuit)
    }

    /// Rebuilds `circuit` with the kinds of `mutations` really replaced.
    /// Nodes are re-added in id order, so the rebuilt circuit's node ids
    /// (and thus the original fault list) line up one to one.
    fn rebuild_mutated(circuit: &Circuit, mutations: &[EcoMutation]) -> Circuit {
        let mut b = CircuitBuilder::named(circuit.name());
        let mut map: Vec<NodeId> = Vec::with_capacity(circuit.num_nodes());
        for (id, node) in circuit.iter() {
            let kind = mutations
                .iter()
                .find(|m| m.gate == id)
                .map_or_else(|| node.kind(), |m| m.kind);
            let new_id = match kind {
                GateKind::Input => b.input(node.name()),
                GateKind::Const0 => b.const0(),
                GateKind::Const1 => b.const1(),
                k => {
                    let fanin: Vec<NodeId> =
                        node.fanin().iter().map(|&f| map[f.index()]).collect();
                    b.gate(k, node.name(), &fanin).expect("legal rebuild")
                }
            };
            map.push(new_id);
        }
        for &o in circuit.outputs() {
            b.mark_output(map[o.index()]);
        }
        b.build().expect("mutated circuit rebuilds")
    }

    #[test]
    fn baseline_matches_cop_engine_bitwise() {
        for name in ["s1", "c880ish", "c2670ish"] {
            let circuit = Arc::new(wrt_workloads::by_name(name).expect("workload"));
            let faults = experiment_faults(&circuit);
            let weights: Vec<f64> = (0..circuit.num_inputs())
                .map(|i| 0.3 + 0.4 * ((i % 5) as f64) / 4.0)
                .collect();
            let baseline = CopBaseline::build(Arc::clone(&circuit), &weights);
            let shared = baseline.detection_probabilities(&faults);
            let mut engine = CopEngine::new();
            let reference = engine.estimate(&circuit, &faults, &weights);
            let shared_bits: Vec<u64> = shared.iter().map(|x| x.to_bits()).collect();
            let reference_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(shared_bits, reference_bits, "{name}");
        }
    }

    #[test]
    fn what_if_is_bit_identical_to_cold_recompute_of_the_mutated_circuit() {
        for name in ["s1", "c880ish", "c1355ish"] {
            let circuit = Arc::new(wrt_workloads::by_name(name).expect("workload"));
            let faults = experiment_faults(&circuit);
            let weights = vec![0.5; circuit.num_inputs()];
            let baseline = Arc::new(CopBaseline::build(Arc::clone(&circuit), &weights));
            let mut session = SessionCop::new(Arc::clone(&baseline));

            // Mutate the first two AND/OR-class gates found.
            let mut mutations = Vec::new();
            for (id, node) in circuit.iter() {
                let flipped = match node.kind() {
                    GateKind::And => GateKind::Or,
                    GateKind::Or => GateKind::And,
                    GateKind::Nand => GateKind::Nor,
                    GateKind::Nor => GateKind::Nand,
                    _ => continue,
                };
                mutations.push(EcoMutation {
                    gate: id,
                    kind: flipped,
                });
                if mutations.len() == 2 {
                    break;
                }
            }
            assert_eq!(mutations.len(), 2, "{name} has too few mutable gates");

            let (dp, stats) = session.what_if(&mutations, &faults).expect("valid ECO");
            assert!(
                stats.overlay_evals() <= stats.cold_evals,
                "{name}: overlay {} > cold {}",
                stats.overlay_evals(),
                stats.cold_evals
            );

            let mutated = rebuild_mutated(&circuit, &mutations);
            let mut engine = CopEngine::new();
            let reference = engine.estimate(&mutated, &faults, &weights);
            let dp_bits: Vec<u64> = dp.iter().map(|x| x.to_bits()).collect();
            let reference_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(dp_bits, reference_bits, "{name}: ECO overlay diverged");
        }
    }

    #[test]
    fn consecutive_queries_reuse_the_scratch_correctly() {
        let circuit = Arc::new(wrt_workloads::by_name("c880ish").expect("workload"));
        let faults = experiment_faults(&circuit);
        let weights = vec![0.5; circuit.num_inputs()];
        let baseline = Arc::new(CopBaseline::build(Arc::clone(&circuit), &weights));
        let mut session = SessionCop::new(Arc::clone(&baseline));

        let gates: Vec<NodeId> = circuit
            .iter()
            .filter(|(_, n)| matches!(n.kind(), GateKind::And | GateKind::Nand))
            .map(|(id, _)| id)
            .take(6)
            .collect();
        // Three different queries back to back: each must match its own
        // cold recompute, with no bleed-through from the previous one.
        for chunk in gates.chunks(2) {
            let mutations: Vec<EcoMutation> = chunk
                .iter()
                .map(|&gate| EcoMutation {
                    gate,
                    kind: GateKind::Or,
                })
                .collect();
            let (dp, _) = session.what_if(&mutations, &faults).expect("valid ECO");
            let mutated = rebuild_mutated(&circuit, &mutations);
            let mut engine = CopEngine::new();
            let reference = engine.estimate(&mutated, &faults, &weights);
            let dp_bits: Vec<u64> = dp.iter().map(|x| x.to_bits()).collect();
            let reference_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(dp_bits, reference_bits);
        }
    }

    #[test]
    fn invalid_mutations_are_structured_errors() {
        let circuit = Arc::new(wrt_workloads::by_name("s1").expect("workload"));
        let faults = experiment_faults(&circuit);
        let weights = vec![0.5; circuit.num_inputs()];
        let baseline = Arc::new(CopBaseline::build(Arc::clone(&circuit), &weights));
        let mut session = SessionCop::new(baseline);

        // Empty mutation list.
        assert!(session.what_if(&[], &faults).is_err());
        // A primary input is not a gate.
        let input = circuit.inputs()[0];
        let m = EcoMutation {
            gate: input,
            kind: GateKind::Or,
        };
        assert!(session.what_if(&[m], &faults).is_err());
        // Source kinds are not gate functions.
        let gate = circuit
            .iter()
            .find(|(_, n)| !n.kind().is_source())
            .map(|(id, _)| id)
            .expect("has a gate");
        let m = EcoMutation {
            gate,
            kind: GateKind::Input,
        };
        assert!(session.what_if(&[m], &faults).is_err());
        // Arity mismatch: NOT cannot drive a 2-input gate.
        let wide = circuit
            .iter()
            .find(|(_, n)| n.fanin().len() >= 2)
            .map(|(id, _)| id)
            .expect("has a wide gate");
        let m = EcoMutation {
            gate: wide,
            kind: GateKind::Not,
        };
        assert!(session.what_if(&[m], &faults).is_err());
        // Duplicate gates.
        let m = EcoMutation {
            gate,
            kind: GateKind::Or,
        };
        assert!(session.what_if(&[m, m], &faults).is_err());
        // Out-of-range id.
        let m = EcoMutation {
            gate: NodeId::from_index(circuit.num_nodes() + 7),
            kind: GateKind::Or,
        };
        assert!(session.what_if(&[m], &faults).is_err());
    }
}

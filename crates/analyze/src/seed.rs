//! SCOAP-seeded starting weights for the input-probability optimizer.
//!
//! The optimizer's default start is the equiprobable point (all weights
//! 0.5).  A better simulation-free start biases each primary input toward
//! the *non-controlling* values of the gates it drives: an `n`-input AND
//! toggles most under `p(1) = 2^{-1/n}` per input, an OR under the
//! complement, and XOR-dominated logic stays at 0.5.  Each sink's vote is
//! weighted by its width and by how hard it is to observe (SCOAP CO), so
//! buried wide gates — the classic random-pattern-resistant structures —
//! dominate the seed.

use wrt_circuit::{Circuit, GateKind};

use crate::scoap::{Scoap, SCOAP_INF};

/// Per-input starting weights (1-probabilities) derived from SCOAP
/// measures, in primary-input position order.
///
/// Weights are clamped to `[0.05, 0.95]`; inputs whose every sink is
/// unobservable (or that drive nothing) stay at 0.5.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_analyze::{scoap_seed_weights, Scoap};
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench(
///     "INPUT(a)\nINPUT(b)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\ny = AND(a, b, d, e)\n",
/// )?;
/// let w = scoap_seed_weights(&c, &Scoap::compute(&c));
/// // Every input feeds a wide AND: biased well above 0.5.
/// assert!(w.iter().all(|&p| p > 0.7));
/// # Ok(())
/// # }
/// ```
pub fn scoap_seed_weights(circuit: &Circuit, scoap: &Scoap) -> Vec<f64> {
    let mut weights = vec![0.5f64; circuit.num_inputs()];
    for (id, node) in circuit.iter() {
        if node.kind() != GateKind::Input {
            continue;
        }
        let pos = circuit
            .input_position(id)
            .expect("input nodes have a position");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &sink in circuit.fanout(id) {
            let gate = circuit.node(sink);
            let width = gate.fanin().len();
            #[allow(clippy::cast_precision_loss)]
            let target = match gate.kind() {
                GateKind::And | GateKind::Nand => 0.5f64.powf(1.0 / width as f64),
                GateKind::Or | GateKind::Nor => 1.0 - 0.5f64.powf(1.0 / width as f64),
                _ => 0.5,
            };
            let co = scoap.co(sink);
            if co == SCOAP_INF {
                continue; // the sink can never be observed; no vote
            }
            // Wide gates need the stronger bias; deeply buried (high-CO)
            // sinks are where random-resistance lives, so they get more
            // say than near-output logic.
            #[allow(clippy::cast_precision_loss)]
            let influence =
                (width as f64 - 1.0).max(1.0) * (1.0 + f64::from(co.min(256)) / 32.0);
            num += target * influence;
            den += influence;
        }
        if den > 0.0 {
            weights[pos] = (num / den).clamp(0.05, 0.95);
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn wide_and_pulls_weights_up_wide_nor_pulls_down() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\nOUTPUT(z)\n\
             y = AND(a, b)\nz = NOR(d, e)\n",
        )
        .unwrap();
        let w = scoap_seed_weights(&c, &Scoap::compute(&c));
        // a, b feed the AND: p > 0.5; d, e feed the NOR: p < 0.5.
        assert!(w[0] > 0.5 && w[1] > 0.5, "{w:?}");
        assert!(w[2] < 0.5 && w[3] < 0.5, "{w:?}");
    }

    #[test]
    fn xor_only_inputs_stay_balanced() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let w = scoap_seed_weights(&c, &Scoap::compute(&c));
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn floating_input_defaults_to_half() {
        let c = parse_bench("INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let w = scoap_seed_weights(&c, &Scoap::compute(&c));
        let pos = c
            .input_position(c.node_id("unused").unwrap())
            .unwrap();
        assert_eq!(w[pos], 0.5);
    }

    #[test]
    fn weights_are_clamped_and_finite() {
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..48 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let w = scoap_seed_weights(&c, &Scoap::compute(&c));
        for &p in &w {
            assert!(p.is_finite());
            assert!((0.05..=0.95).contains(&p));
        }
        // 48-wide AND: the unclamped target 2^(-1/48) ≈ 0.9857 clamps to 0.95.
        assert!(w.iter().all(|&p| (p - 0.95).abs() < 1e-12), "{w:?}");
    }
}

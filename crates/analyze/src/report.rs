//! Combined analysis report: SCOAP summary + census + lint findings.
//!
//! [`analyze`] is the one-call entry point the CLI uses: it computes the
//! SCOAP measures once, runs every built-in lint against them, takes the
//! structural census, and summarizes fault difficulty over the collapsed
//! checkpoint fault set.  The report renders as a human-readable block
//! ([`fmt::Display`]) or machine-readable JSON ([`AnalysisReport::to_json`],
//! hand-rolled like the bench artifacts — no serde in the workspace).

use std::fmt;

use wrt_circuit::Circuit;
use wrt_fault::FaultList;

use crate::census::{census, StructureCensus};
use crate::lint::{lint_circuit, Finding};
use crate::scoap::{Scoap, SCOAP_INF};

/// Summary of per-fault SCOAP costs over the collapsed checkpoint faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoapSummary {
    /// Number of faults summarized.
    pub faults: usize,
    /// Faults with infinite cost (structurally undetectable).
    pub undetectable: usize,
    /// Median finite cost (0 when no finite costs exist).
    pub median_cost: u32,
    /// Maximum finite cost (0 when no finite costs exist).
    pub max_cost: u32,
    /// The hardest finite-cost faults, as `(description, cost)`, hardest
    /// first (at most five).
    pub hardest: Vec<(String, u32)>,
}

/// Everything the static analysis pass knows about one circuit.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Circuit name.
    pub circuit: String,
    /// Process-local circuit uid (registry handle; not stable across
    /// processes).
    pub uid: u64,
    /// Stable structural digest of the netlist.
    pub digest: u64,
    /// Node, input, and output counts.
    pub nodes: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Levelized depth.
    pub depth: u32,
    /// SCOAP fault-difficulty summary.
    pub scoap: ScoapSummary,
    /// FFR / reconvergence census.
    pub census: StructureCensus,
    /// Circuit-level lint findings.
    pub findings: Vec<Finding>,
}

/// Runs the full simulation-free analysis pass over a circuit.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let report = wrt_analyze::analyze(&c);
/// assert!(report.findings.is_empty());
/// assert!(report.census.cop_exact);
/// # Ok(())
/// # }
/// ```
pub fn analyze(circuit: &Circuit) -> AnalysisReport {
    let scoap = Scoap::compute(circuit);
    let findings = lint_circuit(circuit, &scoap);
    let census = census(circuit);

    let faults = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let mut costed: Vec<(u32, String)> = faults
        .as_slice()
        .iter()
        .map(|&f| (scoap.fault_cost(circuit, f), f.describe(circuit)))
        .collect();
    let undetectable = costed.iter().filter(|&&(c, _)| c == SCOAP_INF).count();
    let mut finite: Vec<u32> = costed
        .iter()
        .filter(|&&(c, _)| c < SCOAP_INF)
        .map(|&(c, _)| c)
        .collect();
    finite.sort_unstable();
    let median_cost = finite.get(finite.len() / 2).copied().unwrap_or(0);
    let max_cost = finite.last().copied().unwrap_or(0);
    costed.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let hardest: Vec<(String, u32)> = costed
        .iter()
        .filter(|&&(c, _)| c < SCOAP_INF)
        .take(5)
        .map(|(c, d)| (d.clone(), *c))
        .collect();

    AnalysisReport {
        circuit: circuit.name().to_string(),
        uid: circuit.uid(),
        digest: circuit.structural_digest(),
        nodes: circuit.num_nodes(),
        inputs: circuit.num_inputs(),
        outputs: circuit.num_outputs(),
        depth: circuit.levels().depth(),
        scoap: ScoapSummary {
            faults: faults.len(),
            undetectable,
            median_cost,
            max_cost,
            hardest,
        },
        census,
        findings,
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} nodes, {} inputs, {} outputs, depth {}",
            self.circuit, self.nodes, self.inputs, self.outputs, self.depth
        )?;
        writeln!(
            f,
            "  structure: {} FFRs (largest {}), {} fanout stems, {} reconvergent — COP {}",
            self.census.ffr_count,
            self.census.max_ffr_size,
            self.census.fanout_stems,
            self.census.reconvergent_stems,
            if self.census.cop_exact {
                "exact"
            } else {
                "heuristic"
            }
        )?;
        writeln!(
            f,
            "  scoap: {} checkpoint faults, median cost {}, max {}, {} undetectable",
            self.scoap.faults, self.scoap.median_cost, self.scoap.max_cost, self.scoap.undetectable
        )?;
        for (desc, cost) in &self.scoap.hardest {
            writeln!(f, "    hard: {desc} (cost {cost})")?;
        }
        if self.findings.is_empty() {
            writeln!(f, "  lints: clean")?;
        } else {
            writeln!(f, "  lints: {} finding(s)", self.findings.len())?;
            for finding in &self.findings {
                writeln!(f, "    {finding}")?;
            }
        }
        Ok(())
    }
}

impl AnalysisReport {
    /// Machine-readable JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let hardest: Vec<String> = self
            .scoap
            .hardest
            .iter()
            .map(|(d, c)| format!("{{\"fault\": {}, \"cost\": {c}}}", json_str(d)))
            .collect();
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|fd| {
                format!(
                    "{{\"lint\": {}, \"severity\": {}, \"signal\": {}, \"message\": {}}}",
                    json_str(fd.lint),
                    json_str(&fd.severity.to_string()),
                    json_str(&fd.signal),
                    json_str(&fd.message)
                )
            })
            .collect();
        format!(
            "{{\n  \"circuit\": {},\n  \"uid\": {},\n  \"digest\": \"{:016x}\",\n  \"nodes\": {},\n  \"inputs\": {},\n  \"outputs\": {},\n  \"depth\": {},\n  \"ffr_count\": {},\n  \"max_ffr_size\": {},\n  \"fanout_stems\": {},\n  \"reconvergent_stems\": {},\n  \"cop_exact\": {},\n  \"scoap_faults\": {},\n  \"scoap_undetectable\": {},\n  \"scoap_median_cost\": {},\n  \"scoap_max_cost\": {},\n  \"scoap_hardest\": [{}],\n  \"findings\": [{}]\n}}\n",
            json_str(&self.circuit),
            self.uid,
            self.digest,
            self.nodes,
            self.inputs,
            self.outputs,
            self.depth,
            self.census.ffr_count,
            self.census.max_ffr_size,
            self.census.fanout_stems,
            self.census.reconvergent_stems,
            self.census.cop_exact,
            self.scoap.faults,
            self.scoap.undetectable,
            self.scoap.median_cost,
            self.scoap.max_cost,
            hardest.join(", "),
            findings.join(", ")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn report_summarizes_a_clean_circuit() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap();
        let r = analyze(&c);
        assert_eq!(r.inputs, 3);
        assert!(r.findings.is_empty());
        assert_eq!(r.scoap.undetectable, 0);
        assert!(r.scoap.max_cost >= r.scoap.median_cost);
        assert!(!r.scoap.hardest.is_empty());
    }

    #[test]
    fn report_counts_undetectable_faults_on_tied_logic() {
        use wrt_circuit::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let zero = b.const0();
        let g = b.gate(GateKind::And, "g", &[a, zero]).unwrap();
        let y = b.gate(GateKind::Or, "y", &[g, a]).unwrap();
        b.mark_output(y);
        let c = b.build().unwrap();
        let r = analyze(&c);
        assert!(r.scoap.undetectable > 0);
        assert!(r.findings.iter().any(|f| f.lint == "constant-gate"));
    }

    #[test]
    fn display_and_json_render() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let r = analyze(&c);
        let text = r.to_string();
        assert!(text.contains("lints: clean"), "{text}");
        assert!(text.contains("COP exact"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"cop_exact\": true"), "{json}");
        assert!(json.contains("\"findings\": []"), "{json}");
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}

//! SCOAP testability measures: integer controllabilities and observabilities.
//!
//! Goldstein's SCOAP [Go79] assigns every line three integer costs:
//! CC0/CC1 — how many line assignments it takes to force the line to 0/1 —
//! and CO — how many assignments it takes to propagate the line's value to
//! a primary output.  Unlike the probabilistic COP model, the costs are
//! purely structural (no signal probabilities), which makes them a
//! simulation-free ranking of fault difficulty: a stuck-at fault is hard
//! exactly when exciting it (opposite-value controllability) plus
//! observing the site (CO) is expensive.
//!
//! Finite cost arithmetic saturates at [`SCOAP_MAX`]; the distinct marker
//! [`SCOAP_INF`] is reserved for structural impossibility — a cost of
//! `SCOAP_INF` is a proof that the line cannot take that value (or cannot
//! be observed) at all, which the structural lints exploit.

use wrt_circuit::{Circuit, GateKind, NodeId};
use wrt_fault::{Fault, FaultSite};

/// The "unachievable" SCOAP cost.
///
/// A controllability of `SCOAP_INF` means the line can never take that
/// value; an observability of `SCOAP_INF` means no sensitizable structural
/// path to a primary output exists.  `SCOAP_INF` only ever *originates*
/// from genuine structural impossibility (constant sources, no path to an
/// output) — finite costs that overflow saturate at [`SCOAP_MAX`] instead,
/// so saturation is never mistaken for redundancy.
pub const SCOAP_INF: u32 = u32::MAX;

/// The ceiling for *finite* SCOAP costs.
///
/// SCOAP costs grow multiplicatively with depth (a gate sums its fanin
/// costs), so deep arithmetic arrays overflow any fixed-width integer.
/// Finite cost arithmetic saturates here, one below [`SCOAP_INF`]: a cost
/// of `SCOAP_MAX` means "astronomically hard but structurally possible",
/// which is a different claim than `SCOAP_INF`'s "impossible".  Ranking
/// collapses into one tie at the ceiling, which the rank-correlation
/// checks tolerate.
pub const SCOAP_MAX: u32 = u32::MAX - 1;

/// Cost addition: `SCOAP_INF` is absorbing, finite sums cap at
/// [`SCOAP_MAX`].
#[inline]
fn sadd(a: u32, b: u32) -> u32 {
    if a == SCOAP_INF || b == SCOAP_INF {
        SCOAP_INF
    } else {
        a.saturating_add(b).min(SCOAP_MAX)
    }
}

/// SCOAP testability measures for every line of a circuit.
///
/// Computed by [`Scoap::compute`] in one forward pass (controllabilities,
/// in topological node order) and one backward pass (observabilities, in
/// reverse order) — both O(edges).
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_analyze::Scoap;
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let s = Scoap::compute(&c);
/// let y = c.node_id("y").unwrap();
/// assert_eq!(s.cc1(y), 3); // both inputs to 1, plus the line itself
/// assert_eq!(s.cc0(y), 2); // one input to 0, plus the line itself
/// assert_eq!(s.co(y), 0);  // primary output
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
    /// Fanin-CSR pin offsets copied from the circuit, so [`Self::pin_co`]
    /// keeps its `(gate, pin)` signature without holding a circuit
    /// borrow: pin `p` of gate `g` is edge `pin_offsets[g] + p`.
    pin_offsets: Vec<u32>,
    /// Edge-indexed observability of each fanin *pin* (branch
    /// observability); see [`Self::pin_offsets`].
    pin_co: Vec<u32>,
}

impl Scoap {
    /// Computes all four measure vectors for a circuit.
    pub fn compute(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut cc0 = vec![0u32; n];
        let mut cc1 = vec![0u32; n];

        // Forward pass: node ids are topological, so fanin costs are ready.
        for (id, node) in circuit.iter() {
            let i = id.index();
            let fanin = node.fanin();
            let (c0, c1) = match node.kind() {
                GateKind::Input => (1, 1),
                GateKind::Const0 => (0, SCOAP_INF),
                GateKind::Const1 => (SCOAP_INF, 0),
                GateKind::And => (
                    sadd(1, min_over(fanin, &cc0)),
                    sadd(1, sum_over(fanin, &cc1)),
                ),
                GateKind::Nand => (
                    sadd(1, sum_over(fanin, &cc1)),
                    sadd(1, min_over(fanin, &cc0)),
                ),
                GateKind::Or => (
                    sadd(1, sum_over(fanin, &cc0)),
                    sadd(1, min_over(fanin, &cc1)),
                ),
                GateKind::Nor => (
                    sadd(1, min_over(fanin, &cc1)),
                    sadd(1, sum_over(fanin, &cc0)),
                ),
                GateKind::Not => {
                    let f = fanin[0].index();
                    (sadd(1, cc1[f]), sadd(1, cc0[f]))
                }
                GateKind::Buf => {
                    let f = fanin[0].index();
                    (sadd(1, cc0[f]), sadd(1, cc1[f]))
                }
                GateKind::Xor | GateKind::Xnor => {
                    let (e0, e1) = parity_costs(fanin, &cc0, &cc1);
                    if node.kind() == GateKind::Xor {
                        (sadd(1, e0), sadd(1, e1))
                    } else {
                        (sadd(1, e1), sadd(1, e0))
                    }
                }
            };
            cc0[i] = c0;
            cc1[i] = c1;
        }

        // Backward pass: reverse topological order, mirroring the COP
        // observability sweep.
        let mut co = vec![SCOAP_INF; n];
        let pin_offsets: Vec<u32> = circuit
            .ids()
            .map(|id| circuit.fanin_offset(id) as u32)
            .collect();
        let mut pin_co = vec![SCOAP_INF; circuit.num_edges()];
        for idx in (0..n).rev() {
            let id = NodeId::from_index(idx);
            let mut best = if circuit.is_output(id) { 0 } else { SCOAP_INF };
            for &sink in circuit.fanout(id) {
                let sink_base = circuit.fanin_offset(sink);
                for (pin, &f) in circuit.node(sink).fanin().iter().enumerate() {
                    if f == id {
                        best = best.min(pin_co[sink_base + pin]);
                    }
                }
            }
            co[idx] = best;

            // Pin observabilities of this node's own fanin: gate CO plus
            // the cost of holding every *other* pin at its non-controlling
            // value.
            let node = circuit.node(id);
            let fanin = node.fanin();
            let o = co[idx];
            let base = circuit.fanin_offset(id);
            for pin in 0..fanin.len() {
                let side = match node.kind() {
                    GateKind::And | GateKind::Nand => sum_except(fanin, pin, &cc1),
                    GateKind::Or | GateKind::Nor => sum_except(fanin, pin, &cc0),
                    GateKind::Xor | GateKind::Xnor => {
                        // Any fixed values on the other pins propagate;
                        // pick the cheaper of 0/1 per side pin.
                        let mut acc = 0u32;
                        for (k, &f) in fanin.iter().enumerate() {
                            if k != pin {
                                acc = sadd(acc, cc0[f.index()].min(cc1[f.index()]));
                            }
                        }
                        acc
                    }
                    GateKind::Not | GateKind::Buf => 0,
                    GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
                };
                pin_co[base + pin] = sadd(o, sadd(1, side));
            }
        }

        Scoap {
            cc0,
            cc1,
            co,
            pin_offsets,
            pin_co,
        }
    }

    /// 0-controllability of a node's output line.
    pub fn cc0(&self, id: NodeId) -> u32 {
        self.cc0[id.index()]
    }

    /// 1-controllability of a node's output line.
    pub fn cc1(&self, id: NodeId) -> u32 {
        self.cc1[id.index()]
    }

    /// Controllability of a node to the given value.
    pub fn cc(&self, id: NodeId, value: bool) -> u32 {
        if value {
            self.cc1(id)
        } else {
            self.cc0(id)
        }
    }

    /// Observability of a node's output stem.
    pub fn co(&self, id: NodeId) -> u32 {
        self.co[id.index()]
    }

    /// Observability of one fanin pin (branch) of a gate.
    pub fn pin_co(&self, gate: NodeId, pin: usize) -> u32 {
        self.pin_co[self.pin_offsets[gate.index()] as usize + pin]
    }

    /// All 0-controllabilities, indexed by [`NodeId::index`].
    pub fn cc0_all(&self) -> &[u32] {
        &self.cc0
    }

    /// All 1-controllabilities, indexed by [`NodeId::index`].
    pub fn cc1_all(&self) -> &[u32] {
        &self.cc1
    }

    /// All stem observabilities, indexed by [`NodeId::index`].
    pub fn co_all(&self) -> &[u32] {
        &self.co
    }

    /// SCOAP detection cost of a stuck-at fault: the cost of *exciting* it
    /// (driving the faulty line to the opposite of its stuck value) plus
    /// the cost of *observing* the fault site.
    ///
    /// `SCOAP_INF` is a structural redundancy certificate: the fault can
    /// never be excited or never be observed.
    ///
    /// # Example
    ///
    /// ```
    /// use wrt_circuit::parse_bench;
    /// use wrt_fault::Fault;
    /// use wrt_analyze::{Scoap, SCOAP_INF};
    ///
    /// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
    /// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
    /// let s = Scoap::compute(&c);
    /// let y = c.node_id("y").unwrap();
    /// // y s-a-0: excite by setting y to 1 (cost 3), observe a PO (0).
    /// assert_eq!(s.fault_cost(&c, Fault::output(y, false)), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fault_cost(&self, circuit: &Circuit, fault: Fault) -> u32 {
        let excite_value = !fault.stuck_value;
        match fault.site {
            FaultSite::Output(n) => sadd(self.cc(n, excite_value), self.co(n)),
            FaultSite::InputPin { gate, pin } => {
                let driver = circuit.node(gate).fanin()[pin];
                sadd(self.cc(driver, excite_value), self.pin_co(gate, pin))
            }
        }
    }
}

/// Per-fault SCOAP costs for a fault list, in list order.
pub fn scoap_costs(circuit: &Circuit, scoap: &Scoap, faults: &[Fault]) -> Vec<u32> {
    faults
        .iter()
        .map(|&f| scoap.fault_cost(circuit, f))
        .collect()
}

fn min_over(fanin: &[NodeId], cc: &[u32]) -> u32 {
    fanin
        .iter()
        .map(|f| cc[f.index()])
        .min()
        .unwrap_or(SCOAP_INF)
}

fn sum_over(fanin: &[NodeId], cc: &[u32]) -> u32 {
    fanin.iter().fold(0u32, |acc, f| sadd(acc, cc[f.index()]))
}

fn sum_except(fanin: &[NodeId], pin: usize, cc: &[u32]) -> u32 {
    fanin
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != pin)
        .fold(0u32, |acc, (_, f)| sadd(acc, cc[f.index()]))
}

/// Cheapest costs of making the XOR of the fanin lines even (`e0`) or odd
/// (`e1`), by dynamic programming over the pins.
fn parity_costs(fanin: &[NodeId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let (mut e0, mut e1) = (0u32, SCOAP_INF);
    for f in fanin {
        let (c0, c1) = (cc0[f.index()], cc1[f.index()]);
        let n0 = sadd(e0, c0).min(sadd(e1, c1));
        let n1 = sadd(e0, c1).min(sadd(e1, c0));
        e0 = n0;
        e1 = n1;
    }
    (e0, e1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    fn id(c: &Circuit, name: &str) -> NodeId {
        c.node_id(name).expect("signal exists")
    }

    #[test]
    fn primary_inputs_cost_one() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        let s = Scoap::compute(&c);
        let a = id(&c, "a");
        assert_eq!((s.cc0(a), s.cc1(a)), (1, 1));
        assert_eq!(s.co(a), 1); // through the BUF
    }

    #[test]
    fn and_or_recurrences_match_goldstein() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(m, d)\n",
        )
        .unwrap();
        let s = Scoap::compute(&c);
        let m = id(&c, "m");
        let y = id(&c, "y");
        // m: AND of two PIs.
        assert_eq!(s.cc1(m), 1 + 1 + 1);
        assert_eq!(s.cc0(m), 1 + 1);
        // y: OR(m, d) — cc1 = 1 + min(cc1 m, cc1 d) = 1 + 1; cc0 = 1 + cc0(m) + cc0(d).
        assert_eq!(s.cc1(y), 2);
        assert_eq!(s.cc0(y), 1 + 2 + 1);
        // Observability: m observed through the OR needs d = 0 (cc0 = 1).
        assert_eq!(s.co(y), 0);
        assert_eq!(s.co(m), s.co(y) + 1 + 1);
        // a observed needs b = 1 through the AND, then m's branch cost.
        assert_eq!(s.co(id(&c, "a")), s.co(m) + 1 + s.cc1(id(&c, "b")));
    }

    #[test]
    fn inverting_gates_swap_controllabilities() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = NAND(a, b)\nz = NOT(a)\n")
            .unwrap();
        let s = Scoap::compute(&c);
        let y = id(&c, "y");
        let z = id(&c, "z");
        assert_eq!(s.cc0(y), 1 + 1 + 1); // all inputs 1
        assert_eq!(s.cc1(y), 1 + 1); // one input 0
        assert_eq!(s.cc0(z), 2);
        assert_eq!(s.cc1(z), 2);
    }

    #[test]
    fn xor_parity_dp() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let s = Scoap::compute(&c);
        let y = id(&c, "y");
        // Even: 00 or 11, both cost 2; odd likewise.
        assert_eq!(s.cc0(y), 3);
        assert_eq!(s.cc1(y), 3);
        // XOR side pins propagate at either value: co(a) = 0 + 1 + min(1,1).
        assert_eq!(s.co(id(&c, "a")), 2);
    }

    #[test]
    fn constants_have_infinite_opposite_controllability() {
        use wrt_circuit::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let zero = b.const0();
        let g = b.gate(GateKind::And, "g", &[a, zero]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        let s = Scoap::compute(&c);
        assert_eq!(s.cc0(zero), 0);
        assert_eq!(s.cc1(zero), SCOAP_INF);
        // g can never be 1.
        assert_eq!(s.cc1(g), SCOAP_INF);
        assert_eq!(s.cc0(g), 1);
        // a is unobservable: the AND side pin needs the constant at 1.
        assert_eq!(s.co(a), SCOAP_INF);
    }

    #[test]
    fn dead_gate_is_unobservable() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        )
        .unwrap();
        let s = Scoap::compute(&c);
        assert_eq!(s.co(id(&c, "dead")), SCOAP_INF);
        // a still observable through y.
        assert!(s.co(id(&c, "a")) < SCOAP_INF);
    }

    #[test]
    fn fanout_stem_takes_cheapest_branch() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             y = BUFF(a)\nz = AND(a, b, d)\n",
        )
        .unwrap();
        let s = Scoap::compute(&c);
        // a's cheap branch is the BUF (cost 1), not the wide AND.
        assert_eq!(s.co(id(&c, "a")), 1);
    }

    #[test]
    fn fault_costs_compose_excitation_and_observation() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let s = Scoap::compute(&c);
        let y = id(&c, "y");
        let a = id(&c, "a");
        // y s-a-1: excite with y = 0 (cost 2), observe free.
        assert_eq!(s.fault_cost(&c, Fault::output(y, true)), 2);
        // a->y pin s-a-0: excite a = 1 (1), observe pin: co(y)+1+cc1(b) = 0+1+1.
        assert_eq!(s.fault_cost(&c, Fault::input_pin(y, 0, false)), 1 + 2);
        // Stem fault on a: cheapest branch is the only branch.
        assert_eq!(
            s.fault_cost(&c, Fault::output(a, false)),
            s.cc1(a) + s.co(a)
        );
    }

    #[test]
    fn finite_overflow_saturates_below_infinity() {
        // A deep chain of 2-input ANDs over the same inputs doubles cc1
        // every level: past 32 levels the cost overflows u32.  It must cap
        // at SCOAP_MAX (achievable-but-astronomical), NOT at SCOAP_INF
        // (structural impossibility) — conflating the two made the
        // constant-gate lint misfire on deep arithmetic arrays.
        use wrt_circuit::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let mut cur = b.gate(GateKind::And, "g0", &[a, x]).unwrap();
        let mut prev = cur;
        for i in 1..80 {
            cur = b
                .gate(GateKind::And, format!("g{i}"), &[cur, prev])
                .unwrap();
            prev = cur;
        }
        b.mark_output(cur);
        let c = b.build().unwrap();
        let s = Scoap::compute(&c);
        assert_eq!(s.cc1(cur), SCOAP_MAX);
        assert_ne!(s.cc1(cur), SCOAP_INF);
        assert!(s.cc0(cur) < SCOAP_MAX);
    }

    #[test]
    fn saturation_never_wraps_on_deep_chains() {
        // A chain of ANDs with a constant-0 side pin keeps cc1 at INF
        // without wrapping, and costs only grow along the chain.
        use wrt_circuit::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let zero = b.const0();
        let mut cur = b.gate(GateKind::And, "g0", &[a, zero]).unwrap();
        for i in 1..64 {
            cur = b.gate(GateKind::And, format!("g{i}"), &[cur, a]).unwrap();
        }
        b.mark_output(cur);
        let c = b.build().unwrap();
        let s = Scoap::compute(&c);
        assert_eq!(s.cc1(cur), SCOAP_INF);
        assert!(s.cc0(cur) < SCOAP_INF);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wrt_circuit::CircuitBuilder;

    fn arb_circuit() -> impl Strategy<Value = Circuit> {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ]);
        proptest::collection::vec((kinds, proptest::collection::vec(0usize..64, 1..4)), 4..24)
            .prop_map(|specs| {
                let mut b = CircuitBuilder::named("rand");
                let mut ids = Vec::new();
                for i in 0..6 {
                    ids.push(b.input(format!("i{i}")));
                }
                for (kind, picks) in specs {
                    let fanin: Vec<_> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                        vec![ids[picks[0] % ids.len()]]
                    } else {
                        picks.iter().map(|&p| ids[p % ids.len()]).collect()
                    };
                    ids.push(b.gate_auto(kind, &fanin).expect("valid"));
                }
                b.mark_output(*ids.last().expect("non-empty"));
                b.mark_output(ids[6.min(ids.len() - 1)]);
                b.build().expect("valid circuit")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Controllability monotonicity: a gate's cost strictly exceeds
        /// the cheapest way to control its fanins — every recurrence adds
        /// the `+1` for the line itself, so costs can only grow along any
        /// forward path (until they saturate).
        #[test]
        fn controllability_grows_monotonically_along_paths(circuit in arb_circuit()) {
            let s = Scoap::compute(&circuit);
            for (id, node) in circuit.iter() {
                if node.kind() == GateKind::Input {
                    prop_assert_eq!(s.cc0(id), 1);
                    prop_assert_eq!(s.cc1(id), 1);
                    continue;
                }
                let cheapest_fanin = node
                    .fanin()
                    .iter()
                    .map(|&f| s.cc0(f).min(s.cc1(f)))
                    .min()
                    .expect("gates have fanin");
                for cost in [s.cc0(id), s.cc1(id)] {
                    if cost < SCOAP_MAX {
                        prop_assert!(
                            cost > cheapest_fanin,
                            "node {:?}: cost {} not above cheapest fanin {}",
                            id, cost, cheapest_fanin
                        );
                    }
                }
            }
        }

        /// Observability monotonicity: a pin's branch observability
        /// strictly exceeds the gate's output observability (propagating
        /// through the gate costs the `+1` plus side-input conditions),
        /// and a stem's observability is the min over its branches.
        #[test]
        fn observability_grows_monotonically_toward_inputs(circuit in arb_circuit()) {
            let s = Scoap::compute(&circuit);
            for (id, node) in circuit.iter() {
                for pin in 0..node.fanin().len() {
                    let pco = s.pin_co(id, pin);
                    if pco < SCOAP_MAX {
                        prop_assert!(
                            pco > s.co(id),
                            "pin ({:?}, {}): {} not above gate co {}",
                            id, pin, pco, s.co(id)
                        );
                    }
                }
                // Stem observability is the cheapest sink branch.
                let mut sink_min: Option<u32> = None;
                for &g in circuit.fanout(id) {
                    for (p, &f) in circuit.node(g).fanin().iter().enumerate() {
                        if f == id {
                            let pco = s.pin_co(g, p);
                            sink_min = Some(sink_min.map_or(pco, |m: u32| m.min(pco)));
                        }
                    }
                }
                if let Some(m) = sink_min {
                    if circuit.is_output(id) {
                        // Output stems observe directly at cost 0.
                        prop_assert_eq!(s.co(id), 0);
                    } else {
                        prop_assert_eq!(s.co(id), m);
                    }
                }
            }
        }

        /// Deepening a line under a BUF chain raises its controllability
        /// by exactly 1 per level: the depth-monotonicity the backtrace
        /// cost model relies on.
        #[test]
        fn buffer_chains_add_unit_cost_per_level(depth in 1usize..40) {
            let mut b = CircuitBuilder::named("chain");
            let a = b.input("a");
            let mut cur = a;
            for i in 0..depth {
                cur = b.gate(GateKind::Buf, format!("b{i}"), &[cur]).expect("valid");
            }
            b.mark_output(cur);
            let c = b.build().expect("valid");
            let s = Scoap::compute(&c);
            let tip = c.outputs()[0];
            prop_assert_eq!(s.cc0(tip), 1 + depth as u32);
            prop_assert_eq!(s.cc1(tip), 1 + depth as u32);
            // And the input's observability pays the same chain back.
            prop_assert_eq!(s.co(c.node_id("a").expect("exists")), depth as u32);
        }

        /// Fault costs are consistent with their ingredients: finite when
        /// excitation and observation are both finite, and never below
        /// either component.
        #[test]
        fn fault_cost_dominates_components(circuit in arb_circuit()) {
            use wrt_fault::FaultList;
            let s = Scoap::compute(&circuit);
            for (_, fault) in FaultList::checkpoints(&circuit).iter() {
                let cost = s.fault_cost(&circuit, fault);
                let driver = fault.site.driver(&circuit);
                let excite = s.cc(driver, !fault.stuck_value);
                if cost < SCOAP_INF && excite < SCOAP_INF {
                    prop_assert!(cost >= excite);
                }
                if excite == SCOAP_INF {
                    prop_assert_eq!(cost, SCOAP_INF);
                }
            }
        }
    }
}

//! Simulation-free static analysis of gate-level netlists.
//!
//! The estimation and simulation crates answer "how likely is this fault
//! to be detected" by propagating probabilities or patterns.  This crate
//! answers the *structural* questions that need no simulation at all:
//!
//! * [`Scoap`] — SCOAP testability measures \[Go79\]: integer CC0/CC1
//!   controllability and CO observability in one forward + one backward
//!   sweep, with a per-fault difficulty cost
//!   ([`Scoap::fault_cost`]) whose saturated value is a structural
//!   redundancy certificate;
//! * the [`Lint`] engine — named structural checks: combinational loops
//!   and undriven nets (text level, reusing the parser's detectors), plus
//!   floating inputs, dead gates, and constant-valued gates (circuit
//!   level, via SCOAP degeneracy);
//! * [`census`] — a fanout-free-region and reconvergent-fanout census
//!   that bounds where COP's independence assumption is exact versus
//!   heuristic;
//! * integration seeds — [`scoap_seed_weights`] gives the optimizer a
//!   biased starting point, and the ATPG crate consumes [`Scoap`] for
//!   backtrace guidance (`Podem::with_backtrace_costs`).
//!
//! [`analyze`] bundles all of it into one report for the `wrt analyze`
//! CLI subcommand.
//!
//! # Example
//!
//! ```
//! use wrt_circuit::parse_bench;
//! use wrt_analyze::{analyze, Scoap};
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")?;
//! let scoap = Scoap::compute(&c);
//! assert_eq!(scoap.cc0(c.node_id("y").unwrap()), 3);
//! let report = analyze(&c);
//! assert!(report.findings.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod census;
mod lint;
mod report;
mod scoap;
mod seed;

pub use census::{census, StructureCensus};
pub use lint::{
    builtin_lints, lint_bench_text, lint_circuit, ConstantGateLint, DeadGateLint, Finding,
    FloatingInputLint, Lint, Severity,
};
pub use report::{analyze, AnalysisReport, ScoapSummary};
pub use scoap::{scoap_costs, Scoap, SCOAP_INF, SCOAP_MAX};
pub use seed::scoap_seed_weights;

//! Fanout-free-region and reconvergent-fanout census.
//!
//! COP's independence assumption is exact on trees and inside fanout-free
//! regions; its estimation error comes entirely from reconvergent fanout.
//! This census measures both, giving a structural bound on where the
//! analytic estimators are exact versus heuristic: a circuit with zero
//! reconvergent stems has exact COP probabilities everywhere.

use wrt_circuit::{Circuit, NodeId};

/// Structural statistics of a circuit: fanout-free regions and
/// reconvergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureCensus {
    /// Total nodes (inputs, constants, gates).
    pub nodes: usize,
    /// Nodes with two or more fanout branches.
    pub fanout_stems: usize,
    /// Fanout stems whose branches reconverge at some downstream node.
    pub reconvergent_stems: usize,
    /// Number of fanout-free regions (maximal single-sink subtrees).
    pub ffr_count: usize,
    /// Size of the largest fanout-free region, in nodes.
    pub max_ffr_size: usize,
    /// `true` when the circuit has no reconvergent stems, i.e. the COP
    /// signal probabilities and observabilities are exact, not heuristic.
    pub cop_exact: bool,
}

/// Computes the census in O(stems × edges) worst case (each stem's
/// reconvergence check is one forward sweep over its fanout cone).
pub fn census(circuit: &Circuit) -> StructureCensus {
    let n = circuit.num_nodes();

    // FFR assignment: a node heads its own region when its stem branches
    // (fanout ≠ 1) or it is observed directly (primary output); otherwise
    // it belongs to the region of its unique sink.  Sinks have higher ids
    // (topological order), so one reverse sweep resolves every head.
    let mut head: Vec<usize> = (0..n).collect();
    for idx in (0..n).rev() {
        let id = NodeId::from_index(idx);
        let fanout = circuit.fanout(id);
        if fanout.len() == 1 && !circuit.is_output(id) {
            head[idx] = head[fanout[0].index()];
        }
    }
    let mut ffr_size = vec![0usize; n];
    for &h in &head {
        ffr_size[h] += 1;
    }
    let ffr_count = ffr_size.iter().filter(|&&s| s > 0).count();
    let max_ffr_size = ffr_size.iter().copied().max().unwrap_or(0);

    // Reconvergence: a stem is reconvergent iff some downstream node is
    // reachable through two *different* fanout branches.  For each stem,
    // propagate a branch label through its fanout cone in topological
    // order; a node that would receive a second distinct label proves
    // reconvergence.  Scratch arrays are epoch-stamped so each stem's
    // sweep starts clean without clearing.
    let mut label = vec![0u32; n];
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;
    let mut worklist: Vec<usize> = Vec::new();
    let mut fanout_stems = 0usize;
    let mut reconvergent_stems = 0usize;

    for idx in 0..n {
        let id = NodeId::from_index(idx);
        let branches = circuit.fanout(id);
        if branches.len() < 2 {
            continue;
        }
        fanout_stems += 1;
        epoch += 1;
        worklist.clear();
        let mut reconverges = false;
        for (b, &sink) in branches.iter().enumerate() {
            let si = sink.index();
            if stamp[si] == epoch {
                // Two branches enter the same sink gate directly.
                reconverges = true;
                break;
            }
            stamp[si] = epoch;
            label[si] = u32::try_from(b).expect("branch count fits in u32");
            worklist.push(si);
        }
        if !reconverges {
            // Topological propagation: labeled nodes in ascending id order.
            worklist.sort_unstable();
            let mut w = 0;
            'sweep: while w < worklist.len() {
                let cur = worklist[w];
                w += 1;
                let cur_label = label[cur];
                for &sink in circuit.fanout(NodeId::from_index(cur)) {
                    let si = sink.index();
                    if stamp[si] == epoch {
                        if label[si] != cur_label {
                            reconverges = true;
                            break 'sweep;
                        }
                    } else {
                        stamp[si] = epoch;
                        label[si] = cur_label;
                        // Insert keeping ascending order: fanout ids are
                        // all greater than `cur`, so a sorted insert from
                        // the back stays cheap (usually a push).
                        let pos = worklist[w..]
                            .iter()
                            .position(|&x| x > si)
                            .map_or(worklist.len(), |p| w + p);
                        worklist.insert(pos, si);
                    }
                }
            }
        }
        if reconverges {
            reconvergent_stems += 1;
        }
    }

    StructureCensus {
        nodes: n,
        fanout_stems,
        reconvergent_stems,
        ffr_count,
        max_ffr_size,
        cop_exact: reconvergent_stems == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn tree_circuit_is_cop_exact() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n\
             m = NAND(a, b)\nn = NOR(d, e)\ny = OR(m, n)\n",
        )
        .unwrap();
        let s = census(&c);
        assert_eq!(s.fanout_stems, 0);
        assert_eq!(s.reconvergent_stems, 0);
        assert!(s.cop_exact);
        // One region: everything funnels into y.
        assert_eq!(s.ffr_count, 1);
        assert_eq!(s.max_ffr_size, 7);
    }

    #[test]
    fn reconvergent_diamond_is_detected() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
             p = AND(a, b)\nq = OR(a, b)\ny = XOR(p, q)\n",
        )
        .unwrap();
        let s = census(&c);
        // Both a and b branch and reconverge at y.
        assert_eq!(s.fanout_stems, 2);
        assert_eq!(s.reconvergent_stems, 2);
        assert!(!s.cop_exact);
    }

    #[test]
    fn nonreconvergent_fanout_is_not_flagged() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             y = AND(a, b)\nz = OR(a, d)\n",
        )
        .unwrap();
        let s = census(&c);
        assert_eq!(s.fanout_stems, 1); // a
        assert_eq!(s.reconvergent_stems, 0);
        assert!(s.cop_exact);
    }

    #[test]
    fn direct_double_edge_reconverges() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = XOR(a, a)\n").unwrap();
        let s = census(&c);
        assert_eq!(s.fanout_stems, 1);
        assert_eq!(s.reconvergent_stems, 1);
    }

    #[test]
    fn ffr_heads_are_stems_and_outputs() {
        // a fans out -> two regions headed by the two outputs, plus the
        // stem's own region.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
             m = NOT(a)\ny = AND(m, b)\nz = OR(a, b)\n",
        )
        .unwrap();
        let s = census(&c);
        // Heads: a (fanout 2), b (fanout 2), y (output), z (output).
        assert_eq!(s.ffr_count, 4);
    }
}

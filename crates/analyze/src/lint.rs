//! Structural lint engine: named checks over netlists and circuits.
//!
//! Two sources feed one [`Finding`] stream:
//!
//! * **Text-level lints** ([`lint_bench_text`]) reuse the parser's own
//!   structural detectors ([`wrt_circuit::scan_bench_issues`]) to report
//!   every combinational loop, undriven net, and syntax problem in a
//!   `.bench` netlist — conditions a built [`Circuit`] cannot represent.
//! * **Circuit-level lints** ([`lint_circuit`], the [`Lint`] trait) check
//!   invariant-safe circuits for *semantic* defects: floating inputs,
//!   dead gates, and constant-valued gates (detected as SCOAP
//!   controllability degeneracy).
//!
//! A clean netlist produces an empty finding list; `wrt analyze --lint`
//! turns a non-empty list into a non-zero exit status.

use std::fmt;

use wrt_circuit::{Circuit, GateKind, NodeId, ParseBenchError};

use crate::scoap::{Scoap, SCOAP_INF};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but representable structure (dead logic, constants).
    Warning,
    /// The netlist is malformed (loops, undriven nets, syntax).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding, anchored to a signal and (for text lints) a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint identifier, e.g. `"dead-gate"`.
    pub lint: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// The primary signal the finding is about.
    pub signal: String,
    /// The node, when the finding came from a built circuit.
    pub node: Option<NodeId>,
    /// 1-based netlist line, when the finding came from text scanning.
    pub line: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, " `{}`: {}", self.signal, self.message)
    }
}

/// A named structural check over a built circuit.
///
/// Implementations receive the circuit plus precomputed SCOAP measures
/// (shared across all lints so each check stays O(circuit)).
pub trait Lint {
    /// Stable identifier used in reports and filtering.
    fn name(&self) -> &'static str;
    /// Runs the check, returning zero or more findings.
    fn check(&self, circuit: &Circuit, scoap: &Scoap) -> Vec<Finding>;
}

/// Primary inputs that drive nothing and are not outputs: a floating net.
pub struct FloatingInputLint;

impl Lint for FloatingInputLint {
    fn name(&self) -> &'static str {
        "floating-input"
    }

    fn check(&self, circuit: &Circuit, _scoap: &Scoap) -> Vec<Finding> {
        let mut out = Vec::new();
        for (id, node) in circuit.iter() {
            if node.kind() == GateKind::Input
                && circuit.fanout(id).is_empty()
                && !circuit.is_output(id)
            {
                out.push(Finding {
                    lint: self.name(),
                    severity: Severity::Warning,
                    signal: node.name().to_string(),
                    node: Some(id),
                    line: None,
                    message: "primary input drives no gate and is not an output".to_string(),
                });
            }
        }
        out
    }
}

/// Non-output gates with no fanout: their value can never be observed.
pub struct DeadGateLint;

impl Lint for DeadGateLint {
    fn name(&self) -> &'static str {
        "dead-gate"
    }

    fn check(&self, circuit: &Circuit, _scoap: &Scoap) -> Vec<Finding> {
        let mut out = Vec::new();
        for (id, node) in circuit.iter() {
            if node.kind() != GateKind::Input
                && circuit.fanout(id).is_empty()
                && !circuit.is_output(id)
            {
                out.push(Finding {
                    lint: self.name(),
                    severity: Severity::Warning,
                    signal: node.name().to_string(),
                    node: Some(id),
                    line: None,
                    message: "gate output is neither observed nor used".to_string(),
                });
            }
        }
        out
    }
}

/// Gates whose output provably cannot take one of the two logic values.
///
/// Detected as SCOAP controllability degeneracy: `cc0` or `cc1` saturated
/// at [`SCOAP_INF`] means no input assignment produces that value, so the
/// gate computes a constant.  Intentional `Const0`/`Const1` ties are not
/// flagged — the lint is about gates that *compute* a constant, which
/// usually means tied-off or miswired logic that [`wrt_circuit::simplify`]
/// would fold away.
pub struct ConstantGateLint;

impl Lint for ConstantGateLint {
    fn name(&self) -> &'static str {
        "constant-gate"
    }

    fn check(&self, circuit: &Circuit, scoap: &Scoap) -> Vec<Finding> {
        let mut out = Vec::new();
        for (id, node) in circuit.iter() {
            if matches!(
                node.kind(),
                GateKind::Input | GateKind::Const0 | GateKind::Const1
            ) {
                continue;
            }
            let (c0, c1) = (scoap.cc0(id), scoap.cc1(id));
            if c0 == SCOAP_INF || c1 == SCOAP_INF {
                let value = u8::from(c0 == SCOAP_INF);
                out.push(Finding {
                    lint: self.name(),
                    severity: Severity::Warning,
                    signal: node.name().to_string(),
                    node: Some(id),
                    line: None,
                    message: format!("gate output is constant {value} for every input assignment"),
                });
            }
        }
        out
    }
}

/// The built-in circuit-level lints, in reporting order.
pub fn builtin_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(FloatingInputLint),
        Box::new(DeadGateLint),
        Box::new(ConstantGateLint),
    ]
}

/// Runs every built-in circuit-level lint with shared SCOAP measures.
pub fn lint_circuit(circuit: &Circuit, scoap: &Scoap) -> Vec<Finding> {
    let mut out = Vec::new();
    for lint in builtin_lints() {
        out.extend(lint.check(circuit, scoap));
    }
    out
}

/// Text-level lints over a `.bench` netlist: combinational loops, undriven
/// nets, and syntax problems, each anchored to its netlist line.
///
/// Reuses the parser's structural detectors, so a netlist with no findings
/// here is guaranteed to get past [`wrt_circuit::parse_bench`]'s scanning
/// and dependency-resolution stages.
pub fn lint_bench_text(text: &str) -> Vec<Finding> {
    wrt_circuit::scan_bench_issues(text)
        .into_iter()
        .map(|issue| match issue {
            ParseBenchError::Cycle { path, line } => Finding {
                lint: "combinational-loop",
                severity: Severity::Error,
                signal: path.first().cloned().unwrap_or_default(),
                node: None,
                line: Some(line),
                message: format!("combinational cycle: {}", path.join(" -> ")),
            },
            ParseBenchError::UndefinedSignal { signal, sink, line } => Finding {
                lint: "undriven-net",
                severity: Severity::Error,
                signal,
                node: None,
                line: Some(line),
                message: format!("referenced by `{sink}` but never defined"),
            },
            ParseBenchError::Syntax { line, message } => Finding {
                lint: "syntax",
                severity: Severity::Error,
                signal: String::new(),
                node: None,
                line: Some(line),
                message,
            },
            ParseBenchError::Build(e) => Finding {
                lint: "structure",
                severity: Severity::Error,
                signal: String::new(),
                node: None,
                line: None,
                message: e.to_string(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    fn circuit_findings(text: &str) -> Vec<Finding> {
        let c = parse_bench(text).unwrap();
        let s = Scoap::compute(&c);
        lint_circuit(&c, &s)
    }

    #[test]
    fn clean_circuit_has_no_findings() {
        let f = circuit_findings("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn floating_input_is_flagged_with_its_name() {
        let f = circuit_findings("INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "floating-input");
        assert_eq!(f[0].signal, "unused");
        assert!(f[0].node.is_some());
    }

    #[test]
    fn input_wired_straight_to_output_is_not_floating() {
        let f = circuit_findings("INPUT(a)\nINPUT(b)\nOUTPUT(a)\nOUTPUT(y)\ny = NOT(b)\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dead_gate_is_flagged() {
        let f = circuit_findings(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ndead = XOR(a, b)\ny = AND(a, b)\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "dead-gate");
        assert_eq!(f[0].signal, "dead");
    }

    #[test]
    fn constant_gate_is_flagged_via_scoap_degeneracy() {
        use wrt_circuit::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let zero = b.const0();
        let g = b.gate(GateKind::And, "tied", &[a, zero]).unwrap();
        let y = b.gate(GateKind::Or, "y", &[g, a]).unwrap();
        b.mark_output(y);
        let c = b.build().unwrap();
        let s = Scoap::compute(&c);
        let f = lint_circuit(&c, &s);
        let constant: Vec<_> = f.iter().filter(|f| f.lint == "constant-gate").collect();
        assert_eq!(constant.len(), 1, "{f:?}");
        assert_eq!(constant[0].signal, "tied");
        assert!(constant[0].message.contains("constant 0"));
    }

    #[test]
    fn text_lint_reports_loop_with_line_and_path() {
        let f = lint_bench_text("INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = NOT(p)\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "combinational-loop");
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].line, Some(4));
        assert!(f[0].message.contains("->"));
    }

    #[test]
    fn text_lint_reports_undriven_net_with_sink() {
        let f = lint_bench_text("INPUT(a)\nOUTPUT(y)\ny = OR(a, ghost)\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "undriven-net");
        assert_eq!(f[0].signal, "ghost");
        assert_eq!(f[0].line, Some(3));
        assert!(f[0].message.contains("`y`"));
    }

    #[test]
    fn findings_render_with_span() {
        let f = lint_bench_text("INPUT(a)\nOUTPUT(y)\ny = OR(a, ghost)\n");
        let s = f[0].to_string();
        assert!(s.contains("error[undriven-net]"), "{s}");
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("`ghost`"), "{s}");
    }
}

//! Subcommand wrappers.
//!
//! Every verb's argument parsing and rendering lives in
//! [`wrt_serve::exec`], where the resident server runs the *same*
//! functions — that single source of truth is what makes a served
//! response byte-identical to batch output.  This module only adapts
//! them to the process: one shared [`ExecContext`] wired to the Ctrl-C
//! flag, results printed to stdout, plus the `serve`/`client`/`--remote`
//! process-level verbs that have no meaning inside a request.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use wrt_serve::exec::{self, flag_value, parse_flag, ExecContext};
use wrt_serve::Registry;

pub use wrt_serve::exec::USAGE;

#[cfg(test)]
use wrt_atpg::ATPG_CHECKPOINT_KIND;
#[cfg(test)]
use wrt_core::OPTIMIZE_CHECKPOINT_KIND;
#[cfg(test)]
use wrt_robust::Checkpoint;
#[cfg(test)]
use wrt_serve::exec::{circuit_arg, engine_arg, load_circuit, sim_options_arg};
#[cfg(test)]
use wrt_sim::SimOptions;

/// The process-wide execution context: one registry (so repeated
/// in-process calls share parsed circuits and cached baselines, exactly
/// like a server session) with the Ctrl-C flag attached, so every
/// budgeted run cancels into its structured `Interrupted` path — partial
/// result plus checkpoint — instead of dying mid-write.
fn context() -> &'static ExecContext {
    static CTX: OnceLock<ExecContext> = OnceLock::new();
    CTX.get_or_init(|| {
        ExecContext::new(Arc::new(Registry::new())).with_cancel(wrt_signal::ctrl_c_flag())
    })
}

fn emit(result: Result<String, String>) -> Result<(), String> {
    let text = result?;
    print!("{text}");
    Ok(())
}

pub fn stats(args: &[String]) -> Result<(), String> {
    emit(exec::stats(context(), args))
}

pub fn analyze(args: &[String]) -> Result<(), String> {
    emit(exec::analyze(context(), args))
}

pub fn estimate(args: &[String]) -> Result<(), String> {
    emit(exec::estimate(context(), args))
}

pub fn eco(args: &[String]) -> Result<(), String> {
    emit(exec::eco(context(), args))
}

pub fn optimize(args: &[String]) -> Result<(), String> {
    emit(exec::optimize(context(), args))
}

pub fn simulate(args: &[String]) -> Result<(), String> {
    emit(exec::simulate(context(), args))
}

pub fn atpg(args: &[String]) -> Result<(), String> {
    emit(exec::atpg(context(), args))
}

pub fn generate(args: &[String]) -> Result<(), String> {
    emit(exec::generate(args))
}

pub fn load(args: &[String]) -> Result<(), String> {
    emit(exec::load(context(), args))
}

pub fn stat() -> Result<(), String> {
    emit(Ok(exec::stat(context())))
}

pub fn workloads() {
    print!("{}", exec::workloads_list());
}

/// `wrt serve [--addr HOST:PORT] [--deadline SECS]`: run the resident
/// server until `shutdown` arrives on a session or Ctrl-C lands here.
pub fn serve(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7117");
    let deadline: f64 = parse_flag(args, "--deadline", 0.0)?;
    if !deadline.is_finite() || deadline < 0.0 {
        return Err("--deadline is a non-negative number of seconds (0 = none)".into());
    }
    let deadline = (deadline > 0.0).then(|| Duration::from_secs_f64(deadline));
    let handle = wrt_serve::server::spawn(Arc::new(Registry::new()), addr, deadline)?;
    println!(
        "wrt serve: listening on {} (per-request deadline: {}); `wrt client {} shutdown` or Ctrl-C stops it",
        handle.addr(),
        deadline.map_or_else(|| "none".to_string(), |d| format!("{}s", d.as_secs_f64())),
        handle.addr(),
    );
    let cancel = wrt_signal::ctrl_c_flag();
    while !handle.finished() {
        if cancel.load(Ordering::SeqCst) {
            handle.trigger_shutdown();
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.wait();
    println!("wrt serve: stopped");
    Ok(())
}

/// `wrt client <addr> <command ...>`: one request to a running server.
pub fn client(args: &[String]) -> Result<(), String> {
    let Some((addr, argv)) = args.split_first() else {
        return Err(format!("client requires <addr> <command ...>\n{USAGE}"));
    };
    remote(addr, argv)
}

/// The `wrt --remote <addr> <command ...>` form: identical to `client`.
pub fn remote(addr: &str, argv: &[String]) -> Result<(), String> {
    let out = wrt_serve::client::run(addr, argv)?;
    print!("{out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn load_circuit_resolves_workloads_and_files() {
        assert!(load_circuit("s1").is_ok());
        assert!(load_circuit("definitely-not-a-circuit").is_err());
        let dir = std::env::temp_dir().join("wrt_cli_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").expect("write");
        let circuit = load_circuit(path.to_str().expect("utf8 path")).expect("parses");
        assert_eq!(circuit.num_gates(), 1);
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["s1", "--patterns", "128", "--seed", "7"]);
        assert_eq!(parse_flag(&a, "--patterns", 0u64).unwrap(), 128);
        assert_eq!(parse_flag(&a, "--seed", 0u64).unwrap(), 7);
        assert_eq!(parse_flag(&a, "--missing", 42u64).unwrap(), 42);
        assert!(parse_flag::<u64>(&args(&["--patterns", "xyz"]), "--patterns", 0).is_err());
    }

    #[test]
    fn circuit_arg_skips_flag_values() {
        // `128` must not be mistaken for the circuit name.
        let a = args(&["--patterns", "128", "c880ish"]);
        let circuit = circuit_arg(&a).expect("resolves");
        assert_eq!(circuit.name(), "c880ish");
    }

    #[test]
    fn commands_run_end_to_end_on_a_small_workload() {
        workloads();
        assert!(stats(&args(&["c880ish"])).is_ok());
        assert!(simulate(&args(&["c880ish", "--patterns", "256"])).is_ok());
        assert!(simulate(&args(&["c880ish"])).is_err()); // missing --patterns
        assert!(atpg(&args(&["c880ish"])).is_ok());
    }

    #[test]
    fn analyze_modes_run_and_lint_gates() {
        // Human, JSON, lint, and `all`-sweep modes all run; the registry
        // is lint-clean so --lint succeeds.
        assert!(analyze(&args(&["s1"])).is_ok());
        assert!(analyze(&args(&["s1", "--json"])).is_ok());
        assert!(analyze(&args(&["s1", "--lint"])).is_ok());
        assert!(analyze(&args(&["all", "--lint"])).is_ok());
        assert!(analyze(&args(&[])).is_err());
        assert!(analyze(&args(&["no-such-circuit"])).is_err());
    }

    #[test]
    fn analyze_lint_fails_on_defective_bench_file() {
        let dir = std::env::temp_dir().join("wrt_cli_lint_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        // Undriven net `ghost`: text-level lint fires and the run fails.
        let path = dir.join("bad.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").expect("write");
        let p = path.to_str().expect("utf8").to_string();
        assert!(analyze(&[p, "--lint".into()]).is_err());
        // A clean file passes.
        let good = dir.join("good.bench");
        std::fs::write(&good, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").expect("write");
        let g = good.to_str().expect("utf8").to_string();
        assert!(analyze(&[g.clone(), "--lint".into()]).is_ok());
        assert!(analyze(&[g]).is_ok());
    }

    #[test]
    fn atpg_guidance_flag() {
        for g in ["cop", "scoap", "unguided"] {
            assert!(atpg(&args(&["s1", "--guidance", g])).is_ok(), "--guidance {g}");
        }
        assert!(atpg(&args(&["s1", "--guidance", "psychic"])).is_err());
    }

    #[test]
    fn optimize_seed_weights_flag() {
        assert!(optimize(&args(&["s1", "--seed-weights", "scoap"])).is_ok());
        assert!(optimize(&args(&["s1", "--seed-weights", "uniform"])).is_ok());
        assert!(optimize(&args(&["s1", "--seed-weights", "psychic"])).is_err());
    }

    #[test]
    fn simulate_rejects_wrong_weight_count() {
        let a = args(&["c880ish", "--patterns", "64", "--weights", "0.5,0.5"]);
        assert!(simulate(&a).is_err());
    }

    #[test]
    fn simulate_sim_engine_flags() {
        assert_eq!(sim_options_arg(&args(&[])).unwrap(), SimOptions::event(4));
        assert_eq!(
            sim_options_arg(&args(&["--engine", "dense"])).unwrap(),
            SimOptions::dense()
        );
        assert_eq!(
            sim_options_arg(&args(&["--engine", "event", "--block-words", "8"])).unwrap(),
            SimOptions::event(8)
        );
        assert!(sim_options_arg(&args(&["--engine", "dense", "--block-words", "4"])).is_err());
        assert!(sim_options_arg(&args(&["--block-words", "3"])).is_err());
        assert!(sim_options_arg(&args(&["--engine", "psychic"])).is_err());
        // End-to-end: both engines run and the widths are accepted.
        for engine in ["dense", "event"] {
            let a = args(&["c880ish", "--patterns", "256", "--engine", engine]);
            assert!(simulate(&a).is_ok(), "--engine {engine}");
        }
        let a = args(&["c880ish", "--patterns", "256", "--engine", "event", "--block-words", "2"]);
        assert!(simulate(&a).is_ok());
    }

    #[test]
    fn simulate_pattern_stripes_flag() {
        // Explicit stripe counts, the 0 = auto form, and oversized
        // requests (clamped internally) all run the 2D tiled engine.
        for stripes in ["2", "0", "100000"] {
            let a = args(&["c880ish", "--patterns", "256", "--pattern-stripes", stripes]);
            assert!(simulate(&a).is_ok(), "--pattern-stripes {stripes}");
        }
        // Composes with the other simulate knobs.
        let a = args(&[
            "c880ish", "--patterns", "256", "--pattern-stripes", "2", "--threads", "2",
            "--block-words", "2", "--seed", "7",
        ]);
        assert!(simulate(&a).is_ok());
        // The tiled engine's pattern axis is the event engine; the dense
        // reference engine has no stripes.
        let a = args(&[
            "c880ish", "--patterns", "256", "--engine", "dense", "--pattern-stripes", "2",
        ]);
        let err = simulate(&a).expect_err("dense + stripes must be rejected");
        assert!(err.contains("--engine event"), "{err}");
        // Garbage values are parse errors, not panics.
        let a = args(&["c880ish", "--patterns", "256", "--pattern-stripes", "many"]);
        assert!(simulate(&a).is_err());
    }

    #[test]
    fn simulate_accepts_thread_counts() {
        for t in ["1", "2", "0"] {
            let a = args(&["c880ish", "--patterns", "256", "--threads", t]);
            assert!(simulate(&a).is_ok(), "--threads {t}");
        }
    }

    #[test]
    fn threads_zero_is_the_documented_auto_fallback() {
        // `--threads 0` means "all cores" everywhere, never a panic or a
        // zero-worker deadlock — on simulate and on the monte-carlo
        // optimize path alike.
        let a = args(&["c880ish", "--patterns", "128", "--threads", "0"]);
        assert!(simulate(&a).is_ok());
        let o = args(&[
            "s1",
            "--engine",
            "monte-carlo",
            "--threads",
            "0",
            "--mc-patterns",
            "256",
        ]);
        assert!(optimize(&o).is_ok());
    }

    #[test]
    fn thread_counts_beyond_the_fault_list_are_clamped_not_fatal() {
        // s1 has a handful of faults; 64 requested shards exceed the
        // fault-list length.  The sharded engine clamps (empty shards
        // are simply never created) instead of panicking.
        let a = args(&["s1", "--patterns", "128", "--threads", "64"]);
        assert!(simulate(&a).is_ok());
        let o = args(&[
            "s1",
            "--engine",
            "monte-carlo",
            "--threads",
            "64",
            "--mc-patterns",
            "256",
        ]);
        assert!(optimize(&o).is_ok());
    }

    #[test]
    fn commit_batch_edge_values_degrade_to_per_move_mode() {
        // 0 and 1 are the documented per-move (PR 3) fallbacks; both
        // must run end to end, as must the batched default.
        for batch in ["0", "1", "4"] {
            let a = args(&["s1", "--commit-batch", batch]);
            assert!(optimize(&a).is_ok(), "--commit-batch {batch}");
        }
        // Malformed values are clean errors, not panics.
        assert!(optimize(&args(&["s1", "--commit-batch", "lots"])).is_err());
        // The flag is tied to the engine that implements it.
        assert!(engine_arg(&args(&["--engine", "cop", "--commit-batch", "4"])).is_err());
        assert!(
            engine_arg(&args(&["--engine", "stafan", "--commit-batch", "2"])).is_err()
        );
    }

    #[test]
    fn time_limit_zero_interrupts_cleanly_everywhere() {
        // A zero wall-clock budget trips at the first check-in: the run
        // reports an interruption and exits cleanly — never a hang, a
        // panic, or a garbage result.
        let a = args(&["c880ish", "--patterns", "4096", "--time-limit", "0"]);
        assert!(simulate(&a).is_ok());
        assert!(atpg(&args(&["s1", "--time-limit", "0"])).is_ok());
        // Malformed limits are clean errors.
        assert!(simulate(&args(&["s1", "--patterns", "64", "--time-limit", "-1"])).is_err());
        assert!(simulate(&args(&["s1", "--patterns", "64", "--time-limit", "soon"])).is_err());
    }

    #[test]
    fn max_evals_smaller_than_one_block_is_an_empty_run_not_a_crash() {
        // One pattern of c880ish costs ~num_nodes evals; a 1-eval budget
        // resolves to a zero-pattern clip — reported as an interruption
        // with an empty (but well-formed) coverage result.
        let a = args(&["c880ish", "--patterns", "4096", "--max-evals", "1"]);
        assert!(simulate(&a).is_ok());
    }

    #[test]
    fn backtrack_budget_is_atpg_only() {
        let a = args(&["s1", "--patterns", "64", "--max-backtracks-total", "5"]);
        assert!(simulate(&a).is_err());
        assert!(atpg(&args(&["s1", "--max-backtracks-total", "100000"])).is_ok());
    }

    #[test]
    fn atpg_degrade_flag_runs() {
        assert!(atpg(&args(&["s1", "--degrade"])).is_ok());
    }

    #[test]
    fn resume_from_missing_corrupt_or_foreign_checkpoint_is_a_clean_error() {
        let dir = std::env::temp_dir().join("wrt_cli_resume_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");

        // Missing file.
        let missing = dir.join("never-written.ckpt");
        let m = missing.to_str().expect("utf8").to_string();
        let err = optimize(&args(&["s1", "--resume", &m])).unwrap_err();
        assert!(err.contains("cannot resume"), "{err}");

        // Corrupt file (tampered checksum): never deserialized.
        let corrupt = dir.join("corrupt.ckpt");
        let mut c = Checkpoint::new(OPTIMIZE_CHECKPOINT_KIND);
        c.put("fingerprint", "0000000000000000");
        let tampered = c
            .render()
            .replace("fingerprint=0000", "fingerprint=1111");
        std::fs::write(&corrupt, tampered).expect("write");
        let p = corrupt.to_str().expect("utf8").to_string();
        let err = optimize(&args(&["s1", "--resume", &p])).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");

        // Version from the future: reported, not guessed at.
        let future = dir.join("future.ckpt");
        std::fs::write(&future, "wrt-checkpoint v99\nkind=atpg\n").expect("write");
        let p = future.to_str().expect("utf8").to_string();
        let err = atpg(&args(&["s1", "--resume", &p])).unwrap_err();
        assert!(err.contains("v99") && err.contains("not supported"), "{err}");

        // A checkpoint of the other subsystem.
        let foreign = dir.join("foreign.ckpt");
        let mut c = Checkpoint::new(ATPG_CHECKPOINT_KIND);
        c.put("fingerprint", "0000000000000000");
        c.write_atomic(&foreign).expect("write");
        let p = foreign.to_str().expect("utf8").to_string();
        let err = optimize(&args(&["s1", "--resume", &p])).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn interrupted_optimize_writes_a_checkpoint_that_resumes() {
        let dir = std::env::temp_dir().join("wrt_cli_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("opt.ckpt");
        let p = ckpt.to_str().expect("utf8").to_string();
        let _ = std::fs::remove_file(&ckpt);

        // A 1-engine-call budget trips right after the initial ANALYSIS.
        let interrupted = args(&["s1", "--max-evals", "1", "--checkpoint", &p]);
        assert!(optimize(&interrupted).is_ok());
        assert!(ckpt.exists(), "interruption must persist resume state");

        // Resuming with the same inputs completes.
        assert!(optimize(&args(&["s1", "--resume", &p])).is_ok());

        // Resuming under a different config is refused via fingerprint.
        let err = optimize(&args(&["s1", "--confidence", "0.9", "--resume", &p])).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn interrupted_atpg_writes_a_checkpoint_that_resumes() {
        let dir = std::env::temp_dir().join("wrt_cli_atpg_ckpt");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("atpg.ckpt");
        let p = ckpt.to_str().expect("utf8").to_string();
        let _ = std::fs::remove_file(&ckpt);

        let interrupted = args(&["s1", "--max-evals", "2", "--checkpoint", &p]);
        assert!(atpg(&interrupted).is_ok());
        assert!(ckpt.exists(), "interruption must persist resume state");
        assert!(atpg(&args(&["s1", "--resume", &p])).is_ok());
    }

    #[test]
    fn engine_selection() {
        assert_eq!(engine_arg(&args(&[])).unwrap().name(), "incremental-cop");
        assert_eq!(engine_arg(&args(&["--engine", "cop"])).unwrap().name(), "cop");
        assert_eq!(
            engine_arg(&args(&["--engine", "incremental-cop"]))
                .unwrap()
                .name(),
            "incremental-cop"
        );
        assert_eq!(
            engine_arg(&args(&["--engine", "stafan"])).unwrap().name(),
            "stafan"
        );
        assert_eq!(
            engine_arg(&args(&["--engine", "monte-carlo", "--threads", "2"]))
                .unwrap()
                .name(),
            "monte-carlo"
        );
        assert!(engine_arg(&args(&["--engine", "psychic"])).is_err());
        // Sampling-only flags are rejected rather than silently ignored.
        assert!(engine_arg(&args(&["--threads", "4"])).is_err());
        assert!(engine_arg(&args(&["--engine", "stafan", "--mc-patterns", "64"])).is_err());
        assert!(engine_arg(&args(&["--seed", "7"])).is_err());
        assert!(engine_arg(&args(&["--engine", "stafan", "--seed", "7"])).is_ok());
    }
}

//! Subcommand implementations.

use std::path::{Path, PathBuf};
use std::time::Duration;

use wrt_atpg::{generate_tests_budgeted, AtpgConfig, BacktraceGuidance, ATPG_CHECKPOINT_KIND};
use wrt_circuit::{Circuit, CircuitStats};
use wrt_core::{optimize_budgeted, quantize_weights, OptimizeConfig, OPTIMIZE_CHECKPOINT_KIND};
use wrt_estimate::{
    constant_line_faults, CopEngine, DetectionProbabilityEngine, IncrementalCop,
    MonteCarloEngine, StafanEngine,
};
use wrt_fault::FaultList;
use wrt_robust::{Budget, BudgetExceeded, Checkpoint, Progress, RunOutcome};
use wrt_sim::{
    fault_coverage_robust, fault_coverage_tiled_robust, BatchMode, SimEngineKind, SimOptions,
    TileOptions, WeightedPatterns,
};

pub const USAGE: &str = "usage: wrt <command> [args]

commands:
  stats    <circuit>                              circuit statistics
  analyze  <circuit | all> [--lint] [--json]
           static testability report: SCOAP controllability/observability
           summary, FFR/reconvergence census, and structural lints.
           `all` sweeps every built-in workload.  --lint prints findings
           only and exits nonzero if any lint fires (CI gate); --json
           emits the machine-readable report.  A .bench file path is
           additionally linted at the text level (combinational loops,
           undriven nets) before parsing.
  optimize <circuit> [--grid G] [--confidence C] [--engine E] [--threads T]
           [--seed S] [--mc-patterns N] [--commit-batch K]
           [--seed-weights uniform|scoap]
           [--time-limit SECS] [--max-evals N] [--checkpoint F] [--resume F]
           optimized input probabilities;
           E = incremental-cop (default; cone-restricted per-coordinate
           recompute, bit-identical to cop) | cop | stafan | monte-carlo
           (--seed and --mc-patterns apply to the sampling engines).
           --commit-batch K (incremental-cop only, default 4) defers up
           to K coordinate moves in a pending overlay before
           materializing; K = 0 or 1 commits every move immediately.
           Results are bit-identical for every K.
           --seed-weights scoap starts the descent at the SCOAP-derived
           input bias instead of the jittered equiprobable point.
  simulate <circuit> --patterns N [--weights w1,w2,...] [--seed S] [--threads T]
           [--engine dense|event] [--block-words W] [--pattern-stripes P]
           [--time-limit SECS] [--max-evals N]
           weighted-random fault simulation;
           --engine event (default) runs event-driven sparse propagation
           over W-word superblocks (--block-words 1|2|4|8|16, default 4);
           --engine dense is the single-word reference cone walk.
           --pattern-stripes P switches to the 2D tiled engine (fault
           shards × pattern stripes with work stealing and dense
           multi-fault batching; requires --engine event): P = 0 picks
           the stripe count automatically, oversized P is clamped, and
           --block-words defaults to auto instead of 4.
           Coverage is bit-identical for every engine/width/thread/stripe
           choice.
  atpg     <circuit> [--backtracks B] [--guidance cop|scoap|unguided]
           [--degrade] [--time-limit SECS] [--max-evals N]
           [--max-backtracks-total N] [--checkpoint F] [--resume F]
           deterministic test generation; --guidance picks the backtrace
           controllability model (default cop — conclusions are identical
           either way, only the backtrack spend differs).  --degrade
           retries guided aborts once with the unguided backtrace.
  generate [--gates N] [--seed S] [--out FILE]
           tiled synthetic netlist for scale work: composes the built-in
           workloads into a lint-clean circuit of at least N gates
           (default 10000, seed 42), deterministic by (N, seed), written
           as .bench to FILE or stdout.
  workloads                                       list built-in circuits

<circuit> is a workload name (see `wrt workloads`) or a .bench file path.
--threads T runs PPSFP fault simulation on T sharded worker threads
(default: auto; results are identical for any T).  For optimize it
requires --engine monte-carlo, the engine that fault-simulates.

budgets: --time-limit SECS (wall clock, fractional ok) and --max-evals N
bound a run; --max-backtracks-total N additionally bounds atpg.  The
eval unit is deterministic per command: simulate counts gate evaluations
of fault-free simulation (node count × patterns), optimize counts engine
calls, atpg counts PODEM calls.  A tripped budget is not an error: the
partial result is reported, and optimize/atpg write their resume state
to the --checkpoint file (default: the --resume path).  --resume F
continues bit-identically from a checkpoint; a missing, corrupt, or
version-mismatched file is a clean error — garbage is never loaded.";

fn load_circuit(arg: &str) -> Result<Circuit, String> {
    if let Some(circuit) = wrt_workloads::by_name(arg) {
        return Ok(circuit);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("`{arg}` is neither a workload name nor a readable file: {e}"))?;
    wrt_circuit::parse_bench_named(&text, arg).map_err(|e| format!("parsing `{arg}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for {name}")),
    }
}

fn circuit_arg(args: &[String]) -> Result<Circuit, String> {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| format!("missing circuit argument\n{USAGE}"))?;
    load_circuit(name)
}

fn is_flag_value(args: &[String], candidate: &String) -> bool {
    args.iter()
        .position(|a| std::ptr::eq(a, candidate))
        .is_some_and(|i| i > 0 && args[i - 1].starts_with("--"))
}

/// Parses the shared budget flags.  `allow_backtracks` gates
/// `--max-backtracks-total`, which only the atpg search can honor.
fn budget_arg(args: &[String], allow_backtracks: bool) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    if let Some(raw) = flag_value(args, "--time-limit") {
        let secs: f64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --time-limit"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err("--time-limit is a non-negative number of seconds".into());
        }
        budget = budget.with_time_limit(Duration::from_secs_f64(secs));
    }
    if let Some(raw) = flag_value(args, "--max-evals") {
        let max: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --max-evals"))?;
        budget = budget.with_max_evals(max);
    }
    if let Some(raw) = flag_value(args, "--max-backtracks-total") {
        if !allow_backtracks {
            return Err("--max-backtracks-total only applies to atpg".into());
        }
        let max: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --max-backtracks-total"))?;
        budget = budget.with_max_backtracks(max);
    }
    Ok(budget)
}

/// Loads the `--resume` checkpoint of the given subsystem kind.
/// Missing, corrupt, truncated, version-mismatched, and foreign-kind
/// files are all clean errors; damaged state is never deserialized.
fn resume_arg(args: &[String], kind: &str) -> Result<Option<Checkpoint>, String> {
    match flag_value(args, "--resume") {
        None => Ok(None),
        Some(path) => Checkpoint::read(Path::new(path), kind)
            .map(Some)
            .map_err(|e| format!("cannot resume from `{path}`: {e}")),
    }
}

/// Where an interrupted run should write its resume state: the
/// `--checkpoint` path, or (so a crash-loop workflow needs one flag) the
/// `--resume` path it was loaded from.
fn checkpoint_path_arg(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--checkpoint")
        .or_else(|| flag_value(args, "--resume"))
        .map(PathBuf::from)
}

fn report_interrupt(what: &str, reason: BudgetExceeded, progress: &Progress) {
    let total = progress
        .total
        .map_or_else(String::new, |t| format!(" of {t}"));
    println!(
        "{what} interrupted ({reason}) after {}{total} {}",
        progress.done, progress.unit
    );
}

/// Persists an interrupted run's checkpoint, or says why it cannot.
fn write_checkpoint(ckpt: &Checkpoint, path: Option<&PathBuf>) -> Result<(), String> {
    match path {
        None => {
            println!("no --checkpoint path given; resume state discarded");
            Ok(())
        }
        Some(p) => {
            ckpt.write_atomic(p)
                .map_err(|e| format!("writing checkpoint: {e}"))?;
            println!("resume state written to `{}` (pass --resume to continue)", p.display());
            Ok(())
        }
    }
}

fn experiment_faults(circuit: &Circuit) -> FaultList {
    let checkpoints = FaultList::checkpoints(circuit).collapse_equivalent(circuit);
    let redundant = constant_line_faults(circuit, &checkpoints, 14);
    checkpoints
        .iter()
        .zip(&redundant)
        .filter(|(_, &r)| !r)
        .map(|((_, f), _)| f)
        .collect()
}

// Infallible, but every subcommand shares the Result signature the
// dispatcher in `main` expects.
#[allow(clippy::unnecessary_wraps)]
pub fn generate(args: &[String]) -> Result<(), String> {
    let gates: usize = parse_flag(args, "--gates", 10_000)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let circuit = wrt_workloads::tiled(gates, seed);
    let text = wrt_circuit::to_bench(&circuit);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing `{path}`: {e}"))?;
            eprintln!(
                "wrote {} ({} gates, {} inputs, {} outputs) to {path}",
                circuit.name(),
                circuit.num_gates(),
                circuit.num_inputs(),
                circuit.num_outputs()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

pub fn workloads() {
    for name in wrt_workloads::WORKLOAD_NAMES {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        println!(
            "{name:10} {:4} inputs {:4} outputs {:5} gates",
            circuit.num_inputs(),
            circuit.num_outputs(),
            circuit.num_gates()
        );
    }
}

pub fn stats(args: &[String]) -> Result<(), String> {
    let circuit = circuit_arg(args)?;
    print!("{}", CircuitStats::of(&circuit));
    let m = circuit.memory_footprint();
    println!("{m}");
    println!(
        "  bytes/gate: {:.1}",
        m.bytes_per_gate(circuit.num_gates())
    );
    Ok(())
}

pub fn analyze(args: &[String]) -> Result<(), String> {
    let lint_only = args.iter().any(|a| a == "--lint");
    let json = args.iter().any(|a| a == "--json");
    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| format!("missing circuit argument (or `all`)\n{USAGE}"))?;

    // (name, circuit, text-level findings for .bench files).
    let mut subjects: Vec<(String, Circuit, Vec<wrt_analyze::Finding>)> = Vec::new();
    if target == "all" {
        for name in wrt_workloads::WORKLOAD_NAMES {
            let circuit = wrt_workloads::by_name(name).expect("registered");
            subjects.push(((*name).to_string(), circuit, Vec::new()));
        }
    } else if let Some(circuit) = wrt_workloads::by_name(target) {
        subjects.push((target.clone(), circuit, Vec::new()));
    } else {
        let text = std::fs::read_to_string(target).map_err(|e| {
            format!("`{target}` is neither a workload name, `all`, nor a readable file: {e}")
        })?;
        // Text-level lints first: they catch loops and undriven nets that
        // would make parsing fail outright.
        let text_findings = wrt_analyze::lint_bench_text(&text);
        match wrt_circuit::parse_bench_named(&text, target) {
            Ok(circuit) => subjects.push((target.clone(), circuit, text_findings)),
            Err(e) => {
                if text_findings.is_empty() {
                    return Err(format!("parsing `{target}`: {e}"));
                }
                for finding in &text_findings {
                    println!("{finding}");
                }
                return Err(format!("{target}: netlist does not parse: {e}"));
            }
        }
    }

    let mut total_findings = 0usize;
    let mut json_reports = Vec::new();
    for (name, circuit, text_findings) in &subjects {
        let report = wrt_analyze::analyze(circuit);
        total_findings += text_findings.len() + report.findings.len();
        if lint_only {
            for finding in text_findings.iter().chain(&report.findings) {
                println!("{name}: {finding}");
            }
        } else if json {
            json_reports.push(report.to_json());
        } else {
            for finding in text_findings {
                println!("  text: {finding}");
            }
            print!("{report}");
            let m = circuit.memory_footprint();
            println!(
                "memory: {} bytes ({:.1} bytes/gate)",
                m.total(),
                m.bytes_per_gate(circuit.num_gates())
            );
        }
    }
    if json && !lint_only {
        if subjects.len() == 1 {
            print!("{}", json_reports[0]);
        } else {
            println!("[{}]", json_reports.join(", "));
        }
    }
    if lint_only {
        if total_findings == 0 {
            println!(
                "lint clean: {} circuit(s), 0 findings",
                subjects.len()
            );
            return Ok(());
        }
        return Err(format!("lint failed: {total_findings} finding(s)"));
    }
    Ok(())
}

/// Builds the detection-probability engine selected by `--engine`,
/// threading `--threads` into the Monte-Carlo simulation path.
///
/// Sampling-only flags are rejected for engines that cannot honor them,
/// instead of being silently ignored.
fn engine_arg(args: &[String]) -> Result<Box<dyn DetectionProbabilityEngine>, String> {
    let engine = flag_value(args, "--engine").unwrap_or("incremental-cop");
    if !["incremental-cop", "cop", "stafan", "monte-carlo"].contains(&engine) {
        return Err(format!(
            "unknown engine `{engine}` (expected incremental-cop, cop, stafan, or monte-carlo)"
        ));
    }
    if engine != "monte-carlo" {
        for flag in ["--threads", "--mc-patterns"] {
            if flag_value(args, flag).is_some() {
                return Err(format!(
                    "{flag} only applies to fault-simulating engines; add --engine monte-carlo"
                ));
            }
        }
    }
    if engine.ends_with("cop") && flag_value(args, "--seed").is_some() {
        return Err("--seed only applies to sampling engines (stafan, monte-carlo)".into());
    }
    if engine != "incremental-cop" && flag_value(args, "--commit-batch").is_some() {
        return Err(
            "--commit-batch only applies to the pending-overlay engine; use --engine incremental-cop"
                .into(),
        );
    }
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    Ok(match engine {
        "incremental-cop" => {
            // Default batch 4: the measured sweet spot on the wide- and
            // global-cone workloads; 0/1 fall back to per-move commits.
            let batch: usize = parse_flag(args, "--commit-batch", 4)?;
            Box::new(IncrementalCop::new().with_commit_batch(batch))
        }
        "cop" => Box::new(CopEngine::new()),
        "stafan" => Box::new(StafanEngine::new(64 * 256, seed)),
        "monte-carlo" => {
            let patterns: u64 = parse_flag(args, "--mc-patterns", 64 * 256)?;
            Box::new(MonteCarloEngine::new(patterns, seed).with_threads(threads))
        }
        _ => unreachable!("engine name validated above"),
    })
}

pub fn optimize(args: &[String]) -> Result<(), String> {
    let circuit = circuit_arg(args)?;
    let grid: f64 = parse_flag(args, "--grid", 0.05)?;
    if !(grid > 0.0 && grid < 0.5) {
        return Err("--grid is a spacing in (0, 0.5), e.g. 0.05".into());
    }
    let confidence: f64 = parse_flag(args, "--confidence", 0.999)?;
    if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
        return Err("--confidence must be in (0, 1)".into());
    }
    let faults = experiment_faults(&circuit);
    let config = OptimizeConfig {
        confidence,
        ..OptimizeConfig::default()
    };
    let config = match flag_value(args, "--seed-weights") {
        None | Some("uniform") => config,
        Some("scoap") => config.scoap_seeded(&circuit),
        Some(other) => {
            return Err(format!(
                "unknown --seed-weights `{other}` (expected uniform or scoap)"
            ))
        }
    };
    let mut engine = engine_arg(args)?;
    let budget = budget_arg(args, false)?;
    let resume = resume_arg(args, OPTIMIZE_CHECKPOINT_KIND)?;
    let run = optimize_budgeted(
        &circuit,
        &faults,
        engine.as_mut(),
        &config,
        &budget,
        resume.as_ref(),
    )
    .map_err(|e| format!("cannot resume: {e}"))?;
    let result = match run.outcome {
        RunOutcome::Complete(result) => result,
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            report_interrupt("optimization", reason, &progress);
            let ckpt = run.checkpoint.as_ref().expect("interrupted runs checkpoint");
            write_checkpoint(ckpt, checkpoint_path_arg(args).as_ref())?;
            partial
        }
    };
    println!(
        "test length: {:.3e} -> {:.3e}  (factor {:.1}, {} sweeps, {} engine calls)",
        result.initial_length,
        result.final_length,
        result.improvement_factor(),
        result.sweeps.len(),
        result.engine_calls
    );
    let weights = quantize_weights(&result.weights, grid);
    println!("optimized probabilities (grid {grid}):");
    for (&pi, w) in circuit.inputs().iter().zip(&weights) {
        println!("  {:<12} {w:.2}", circuit.node(pi).name());
    }
    Ok(())
}

pub fn simulate(args: &[String]) -> Result<(), String> {
    let circuit = circuit_arg(args)?;
    let patterns: u64 = parse_flag(args, "--patterns", 0)?;
    if patterns == 0 {
        return Err("simulate requires --patterns N".into());
    }
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let weights = match flag_value(args, "--weights") {
        None => vec![0.5; circuit.num_inputs()],
        Some(raw) => {
            let parsed: Result<Vec<f64>, _> = raw.split(',').map(str::parse).collect();
            let parsed = parsed.map_err(|_| "invalid --weights list".to_string())?;
            if parsed.len() != circuit.num_inputs() {
                return Err(format!(
                    "--weights needs {} values, got {}",
                    circuit.num_inputs(),
                    parsed.len()
                ));
            }
            parsed
        }
    };
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let opts = sim_options_arg(args)?;
    let budget = budget_arg(args, false)?;
    let faults = experiment_faults(&circuit);
    if flag_value(args, "--pattern-stripes").is_some() {
        let stripes: usize = parse_flag(args, "--pattern-stripes", 0)?;
        if opts.engine == SimEngineKind::Dense {
            return Err("--pattern-stripes requires --engine event (the 2D tiled \
                 engine's event axis); drop --engine dense"
                .into());
        }
        // With no explicit --block-words the tiled engine picks the
        // width itself (pattern count and cache budget), instead of
        // inheriting the 1D default of 4.
        let block_words = if flag_value(args, "--block-words").is_some() {
            opts.block_words
        } else {
            0
        };
        let topts = TileOptions {
            block_words,
            pattern_stripes: stripes,
            fault_shards: 0,
            threads,
            batch: BatchMode::Auto,
        };
        let outcome = fault_coverage_tiled_robust(
            &circuit,
            &faults,
            WeightedPatterns::new(weights, seed),
            patterns,
            true,
            &topts,
            &budget,
        );
        let robust = match outcome {
            RunOutcome::Complete(robust) => robust,
            RunOutcome::Interrupted {
                partial,
                reason,
                progress,
            } => {
                report_interrupt("simulation", reason, &progress);
                partial
            }
        };
        println!("{}", robust.result);
        if !robust.recovery.is_clean() {
            println!(
                "tile recovery: {} worker panic(s), {} replay(s), {} unresolved — {}",
                robust.recovery.worker_panics,
                robust.recovery.replays,
                robust.recovery.unresolved.len(),
                robust.recovery.ladder,
            );
        }
        let s = robust.stats;
        println!(
            "engine tiled-2d (W={}): {} stripe(s) × {} shard(s) on {} thread(s), \
             {} tile(s), {} steal(s), {} batched fault(s) in {} batch(es)",
            s.block_words, s.stripes, s.shards, s.threads, s.tiles, s.steals,
            s.batch_dense_faults, s.batches,
        );
        println!(
            "gate evals: {} total ({} event axis, {} batch axis, {} probe)",
            s.sim.node_evals, s.event_node_evals, s.batch_node_evals, s.probe_node_evals,
        );
        return Ok(());
    }
    let outcome = fault_coverage_robust(
        &circuit,
        &faults,
        WeightedPatterns::new(weights, seed),
        patterns,
        true,
        threads,
        opts,
        &budget,
    );
    let robust = match outcome {
        RunOutcome::Complete(robust) => robust,
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            report_interrupt("simulation", reason, &progress);
            partial
        }
    };
    println!("{}", robust.result);
    if !robust.recovery.is_clean() {
        println!(
            "shard recovery: {} worker panic(s), {} replay(s), {} unresolved — {}",
            robust.recovery.worker_panics,
            robust.recovery.replays,
            robust.recovery.unresolved.len(),
            robust.recovery.ladder,
        );
    }
    let detected = robust.result.num_detected();
    if detected > 0 {
        println!(
            "engine {}: {} gate evals ({:.1} per detected fault, {:.1} % frontier die-out)",
            opts.engine,
            robust.stats.node_evals,
            robust.stats.node_evals as f64 / detected as f64,
            robust.stats.frontier_dieout_rate() * 100.0,
        );
    }
    Ok(())
}

/// Parses the simulate subcommand's `--engine dense|event` and
/// `--block-words W` into validated [`SimOptions`].
fn sim_options_arg(args: &[String]) -> Result<SimOptions, String> {
    let engine: SimEngineKind = match flag_value(args, "--engine") {
        None => SimEngineKind::Event,
        Some(raw) => raw.parse()?,
    };
    let default_words = match engine {
        SimEngineKind::Event => 4,
        SimEngineKind::Dense => 1,
    };
    let block_words: usize = parse_flag(args, "--block-words", default_words)?;
    let opts = SimOptions {
        engine,
        block_words,
    };
    opts.validate()?;
    Ok(opts)
}

pub fn atpg(args: &[String]) -> Result<(), String> {
    let circuit = circuit_arg(args)?;
    let backtracks: usize = parse_flag(args, "--backtracks", 10_000)?;
    let guidance = match flag_value(args, "--guidance") {
        None | Some("cop") => BacktraceGuidance::Cop,
        Some("scoap") => BacktraceGuidance::Scoap,
        Some("unguided") => BacktraceGuidance::Unguided,
        Some(other) => {
            return Err(format!(
                "unknown --guidance `{other}` (expected cop, scoap, or unguided)"
            ))
        }
    };
    let faults = FaultList::checkpoints(&circuit).collapse_equivalent(&circuit);
    let config = AtpgConfig {
        backtrack_limit: backtracks,
        guidance,
        degrade_on_abort: args.iter().any(|a| a == "--degrade"),
        ..AtpgConfig::default()
    };
    let budget = budget_arg(args, true)?;
    let resume = resume_arg(args, ATPG_CHECKPOINT_KIND)?;
    let run = generate_tests_budgeted(&circuit, &faults, &config, &budget, resume.as_ref())
        .map_err(|e| format!("cannot resume: {e}"))?;
    let report = match run.outcome {
        RunOutcome::Complete(report) => report,
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            report_interrupt("atpg", reason, &progress);
            let ckpt = run.checkpoint.as_ref().expect("interrupted runs checkpoint");
            write_checkpoint(ckpt, checkpoint_path_arg(args).as_ref())?;
            partial
        }
    };
    println!(
        "{} faults: {} detected, {} redundant, {} aborted, {} not attempted",
        faults.len(),
        report.detected.len(),
        report.redundant.len(),
        report.aborted.len(),
        report.survivors.len()
    );
    println!(
        "{} tests generated with {} PODEM calls, {} backtracks (coverage {:.1} %)",
        report.tests.len(),
        report.podem_calls,
        report.backtracks,
        report.coverage() * 100.0
    );
    if !run.ladder.is_empty() {
        println!("degradation: {}", run.ladder);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn load_circuit_resolves_workloads_and_files() {
        assert!(load_circuit("s1").is_ok());
        assert!(load_circuit("definitely-not-a-circuit").is_err());
        let dir = std::env::temp_dir().join("wrt_cli_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").expect("write");
        let circuit = load_circuit(path.to_str().expect("utf8 path")).expect("parses");
        assert_eq!(circuit.num_gates(), 1);
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["s1", "--patterns", "128", "--seed", "7"]);
        assert_eq!(parse_flag(&a, "--patterns", 0u64).unwrap(), 128);
        assert_eq!(parse_flag(&a, "--seed", 0u64).unwrap(), 7);
        assert_eq!(parse_flag(&a, "--missing", 42u64).unwrap(), 42);
        assert!(parse_flag::<u64>(&args(&["--patterns", "xyz"]), "--patterns", 0).is_err());
    }

    #[test]
    fn circuit_arg_skips_flag_values() {
        // `128` must not be mistaken for the circuit name.
        let a = args(&["--patterns", "128", "c880ish"]);
        let circuit = circuit_arg(&a).expect("resolves");
        assert_eq!(circuit.name(), "c880ish");
    }

    #[test]
    fn commands_run_end_to_end_on_a_small_workload() {
        workloads();
        assert!(stats(&args(&["c880ish"])).is_ok());
        assert!(simulate(&args(&["c880ish", "--patterns", "256"])).is_ok());
        assert!(simulate(&args(&["c880ish"])).is_err()); // missing --patterns
        assert!(atpg(&args(&["c880ish"])).is_ok());
    }

    #[test]
    fn analyze_modes_run_and_lint_gates() {
        // Human, JSON, lint, and `all`-sweep modes all run; the registry
        // is lint-clean so --lint succeeds.
        assert!(analyze(&args(&["s1"])).is_ok());
        assert!(analyze(&args(&["s1", "--json"])).is_ok());
        assert!(analyze(&args(&["s1", "--lint"])).is_ok());
        assert!(analyze(&args(&["all", "--lint"])).is_ok());
        assert!(analyze(&args(&[])).is_err());
        assert!(analyze(&args(&["no-such-circuit"])).is_err());
    }

    #[test]
    fn analyze_lint_fails_on_defective_bench_file() {
        let dir = std::env::temp_dir().join("wrt_cli_lint_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        // Undriven net `ghost`: text-level lint fires and the run fails.
        let path = dir.join("bad.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").expect("write");
        let p = path.to_str().expect("utf8").to_string();
        assert!(analyze(&[p, "--lint".into()]).is_err());
        // A clean file passes.
        let good = dir.join("good.bench");
        std::fs::write(&good, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").expect("write");
        let g = good.to_str().expect("utf8").to_string();
        assert!(analyze(&[g.clone(), "--lint".into()]).is_ok());
        assert!(analyze(&[g]).is_ok());
    }

    #[test]
    fn atpg_guidance_flag() {
        for g in ["cop", "scoap", "unguided"] {
            assert!(atpg(&args(&["s1", "--guidance", g])).is_ok(), "--guidance {g}");
        }
        assert!(atpg(&args(&["s1", "--guidance", "psychic"])).is_err());
    }

    #[test]
    fn optimize_seed_weights_flag() {
        assert!(optimize(&args(&["s1", "--seed-weights", "scoap"])).is_ok());
        assert!(optimize(&args(&["s1", "--seed-weights", "uniform"])).is_ok());
        assert!(optimize(&args(&["s1", "--seed-weights", "psychic"])).is_err());
    }

    #[test]
    fn simulate_rejects_wrong_weight_count() {
        let a = args(&["c880ish", "--patterns", "64", "--weights", "0.5,0.5"]);
        assert!(simulate(&a).is_err());
    }

    #[test]
    fn simulate_sim_engine_flags() {
        assert_eq!(sim_options_arg(&args(&[])).unwrap(), SimOptions::event(4));
        assert_eq!(
            sim_options_arg(&args(&["--engine", "dense"])).unwrap(),
            SimOptions::dense()
        );
        assert_eq!(
            sim_options_arg(&args(&["--engine", "event", "--block-words", "8"])).unwrap(),
            SimOptions::event(8)
        );
        assert!(sim_options_arg(&args(&["--engine", "dense", "--block-words", "4"])).is_err());
        assert!(sim_options_arg(&args(&["--block-words", "3"])).is_err());
        assert!(sim_options_arg(&args(&["--engine", "psychic"])).is_err());
        // End-to-end: both engines run and the widths are accepted.
        for engine in ["dense", "event"] {
            let a = args(&["c880ish", "--patterns", "256", "--engine", engine]);
            assert!(simulate(&a).is_ok(), "--engine {engine}");
        }
        let a = args(&["c880ish", "--patterns", "256", "--engine", "event", "--block-words", "2"]);
        assert!(simulate(&a).is_ok());
    }

    #[test]
    fn simulate_pattern_stripes_flag() {
        // Explicit stripe counts, the 0 = auto form, and oversized
        // requests (clamped internally) all run the 2D tiled engine.
        for stripes in ["2", "0", "100000"] {
            let a = args(&["c880ish", "--patterns", "256", "--pattern-stripes", stripes]);
            assert!(simulate(&a).is_ok(), "--pattern-stripes {stripes}");
        }
        // Composes with the other simulate knobs.
        let a = args(&[
            "c880ish", "--patterns", "256", "--pattern-stripes", "2", "--threads", "2",
            "--block-words", "2", "--seed", "7",
        ]);
        assert!(simulate(&a).is_ok());
        // The tiled engine's pattern axis is the event engine; the dense
        // reference engine has no stripes.
        let a = args(&[
            "c880ish", "--patterns", "256", "--engine", "dense", "--pattern-stripes", "2",
        ]);
        let err = simulate(&a).expect_err("dense + stripes must be rejected");
        assert!(err.contains("--engine event"), "{err}");
        // Garbage values are parse errors, not panics.
        let a = args(&["c880ish", "--patterns", "256", "--pattern-stripes", "many"]);
        assert!(simulate(&a).is_err());
    }

    #[test]
    fn simulate_accepts_thread_counts() {
        for t in ["1", "2", "0"] {
            let a = args(&["c880ish", "--patterns", "256", "--threads", t]);
            assert!(simulate(&a).is_ok(), "--threads {t}");
        }
    }

    #[test]
    fn threads_zero_is_the_documented_auto_fallback() {
        // `--threads 0` means "all cores" everywhere, never a panic or a
        // zero-worker deadlock — on simulate and on the monte-carlo
        // optimize path alike.
        let a = args(&["c880ish", "--patterns", "128", "--threads", "0"]);
        assert!(simulate(&a).is_ok());
        let o = args(&[
            "s1",
            "--engine",
            "monte-carlo",
            "--threads",
            "0",
            "--mc-patterns",
            "256",
        ]);
        assert!(optimize(&o).is_ok());
    }

    #[test]
    fn thread_counts_beyond_the_fault_list_are_clamped_not_fatal() {
        // s1 has a handful of faults; 64 requested shards exceed the
        // fault-list length.  The sharded engine clamps (empty shards
        // are simply never created) instead of panicking.
        let a = args(&["s1", "--patterns", "128", "--threads", "64"]);
        assert!(simulate(&a).is_ok());
        let o = args(&[
            "s1",
            "--engine",
            "monte-carlo",
            "--threads",
            "64",
            "--mc-patterns",
            "256",
        ]);
        assert!(optimize(&o).is_ok());
    }

    #[test]
    fn commit_batch_edge_values_degrade_to_per_move_mode() {
        // 0 and 1 are the documented per-move (PR 3) fallbacks; both
        // must run end to end, as must the batched default.
        for batch in ["0", "1", "4"] {
            let a = args(&["s1", "--commit-batch", batch]);
            assert!(optimize(&a).is_ok(), "--commit-batch {batch}");
        }
        // Malformed values are clean errors, not panics.
        assert!(optimize(&args(&["s1", "--commit-batch", "lots"])).is_err());
        // The flag is tied to the engine that implements it.
        assert!(engine_arg(&args(&["--engine", "cop", "--commit-batch", "4"])).is_err());
        assert!(
            engine_arg(&args(&["--engine", "stafan", "--commit-batch", "2"])).is_err()
        );
    }

    #[test]
    fn time_limit_zero_interrupts_cleanly_everywhere() {
        // A zero wall-clock budget trips at the first check-in: the run
        // reports an interruption and exits cleanly — never a hang, a
        // panic, or a garbage result.
        let a = args(&["c880ish", "--patterns", "4096", "--time-limit", "0"]);
        assert!(simulate(&a).is_ok());
        assert!(atpg(&args(&["s1", "--time-limit", "0"])).is_ok());
        // Malformed limits are clean errors.
        assert!(simulate(&args(&["s1", "--patterns", "64", "--time-limit", "-1"])).is_err());
        assert!(simulate(&args(&["s1", "--patterns", "64", "--time-limit", "soon"])).is_err());
    }

    #[test]
    fn max_evals_smaller_than_one_block_is_an_empty_run_not_a_crash() {
        // One pattern of c880ish costs ~num_nodes evals; a 1-eval budget
        // resolves to a zero-pattern clip — reported as an interruption
        // with an empty (but well-formed) coverage result.
        let a = args(&["c880ish", "--patterns", "4096", "--max-evals", "1"]);
        assert!(simulate(&a).is_ok());
    }

    #[test]
    fn backtrack_budget_is_atpg_only() {
        let a = args(&["s1", "--patterns", "64", "--max-backtracks-total", "5"]);
        assert!(simulate(&a).is_err());
        assert!(atpg(&args(&["s1", "--max-backtracks-total", "100000"])).is_ok());
    }

    #[test]
    fn atpg_degrade_flag_runs() {
        assert!(atpg(&args(&["s1", "--degrade"])).is_ok());
    }

    #[test]
    fn resume_from_missing_corrupt_or_foreign_checkpoint_is_a_clean_error() {
        let dir = std::env::temp_dir().join("wrt_cli_resume_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");

        // Missing file.
        let missing = dir.join("never-written.ckpt");
        let m = missing.to_str().expect("utf8").to_string();
        let err = optimize(&args(&["s1", "--resume", &m])).unwrap_err();
        assert!(err.contains("cannot resume"), "{err}");

        // Corrupt file (tampered checksum): never deserialized.
        let corrupt = dir.join("corrupt.ckpt");
        let mut c = Checkpoint::new(OPTIMIZE_CHECKPOINT_KIND);
        c.put("fingerprint", "0000000000000000");
        let tampered = c
            .render()
            .replace("fingerprint=0000", "fingerprint=1111");
        std::fs::write(&corrupt, tampered).expect("write");
        let p = corrupt.to_str().expect("utf8").to_string();
        let err = optimize(&args(&["s1", "--resume", &p])).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");

        // Version from the future: reported, not guessed at.
        let future = dir.join("future.ckpt");
        std::fs::write(&future, "wrt-checkpoint v99\nkind=atpg\n").expect("write");
        let p = future.to_str().expect("utf8").to_string();
        let err = atpg(&args(&["s1", "--resume", &p])).unwrap_err();
        assert!(err.contains("v99") && err.contains("not supported"), "{err}");

        // A checkpoint of the other subsystem.
        let foreign = dir.join("foreign.ckpt");
        let mut c = Checkpoint::new(ATPG_CHECKPOINT_KIND);
        c.put("fingerprint", "0000000000000000");
        c.write_atomic(&foreign).expect("write");
        let p = foreign.to_str().expect("utf8").to_string();
        let err = optimize(&args(&["s1", "--resume", &p])).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn interrupted_optimize_writes_a_checkpoint_that_resumes() {
        let dir = std::env::temp_dir().join("wrt_cli_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("opt.ckpt");
        let p = ckpt.to_str().expect("utf8").to_string();
        let _ = std::fs::remove_file(&ckpt);

        // A 1-engine-call budget trips right after the initial ANALYSIS.
        let interrupted = args(&["s1", "--max-evals", "1", "--checkpoint", &p]);
        assert!(optimize(&interrupted).is_ok());
        assert!(ckpt.exists(), "interruption must persist resume state");

        // Resuming with the same inputs completes.
        assert!(optimize(&args(&["s1", "--resume", &p])).is_ok());

        // Resuming under a different config is refused via fingerprint.
        let err = optimize(&args(&["s1", "--confidence", "0.9", "--resume", &p])).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn interrupted_atpg_writes_a_checkpoint_that_resumes() {
        let dir = std::env::temp_dir().join("wrt_cli_atpg_ckpt");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("atpg.ckpt");
        let p = ckpt.to_str().expect("utf8").to_string();
        let _ = std::fs::remove_file(&ckpt);

        let interrupted = args(&["s1", "--max-evals", "2", "--checkpoint", &p]);
        assert!(atpg(&interrupted).is_ok());
        assert!(ckpt.exists(), "interruption must persist resume state");
        assert!(atpg(&args(&["s1", "--resume", &p])).is_ok());
    }

    #[test]
    fn engine_selection() {
        assert_eq!(engine_arg(&args(&[])).unwrap().name(), "incremental-cop");
        assert_eq!(engine_arg(&args(&["--engine", "cop"])).unwrap().name(), "cop");
        assert_eq!(
            engine_arg(&args(&["--engine", "incremental-cop"]))
                .unwrap()
                .name(),
            "incremental-cop"
        );
        assert_eq!(
            engine_arg(&args(&["--engine", "stafan"])).unwrap().name(),
            "stafan"
        );
        assert_eq!(
            engine_arg(&args(&["--engine", "monte-carlo", "--threads", "2"]))
                .unwrap()
                .name(),
            "monte-carlo"
        );
        assert!(engine_arg(&args(&["--engine", "psychic"])).is_err());
        // Sampling-only flags are rejected rather than silently ignored.
        assert!(engine_arg(&args(&["--threads", "4"])).is_err());
        assert!(engine_arg(&args(&["--engine", "stafan", "--mc-patterns", "64"])).is_err());
        assert!(engine_arg(&args(&["--seed", "7"])).is_err());
        assert!(engine_arg(&args(&["--engine", "stafan", "--seed", "7"])).is_ok());
    }
}

//! `wrt` — command-line front end for the weighted-random-testing
//! workspace.
//!
//! ```text
//! wrt stats    <netlist.bench | workload>          circuit statistics
//! wrt analyze  <netlist.bench | workload | all> [--lint] [--json]
//! wrt estimate <netlist.bench | workload> [--weights w1,w2,…] [--top K]
//! wrt eco      <netlist.bench | workload> --set g=KIND[,…] [--top K]
//! wrt optimize <netlist.bench | workload> [--grid G] [--confidence C]
//!              [--engine cop|stafan|monte-carlo] [--threads T]
//!              [--seed-weights uniform|scoap]
//! wrt simulate <netlist.bench | workload> --patterns N [--weights w1,w2,…]
//!              [--threads T]
//! wrt atpg     <netlist.bench | workload> [--backtracks B]
//!              [--guidance cop|scoap|unguided]
//! wrt generate [--gates N] [--seed S] [--out FILE]  tiled synthetic netlist
//! wrt workloads                                    list built-in circuits
//! wrt serve    [--addr HOST:PORT] [--deadline SECS] resident server
//! wrt client   <addr> <command ...>                one request to a server
//! wrt --remote <addr> <command ...>                same thing, prefix form
//! ```
//!
//! A circuit argument is first tried as a workload registry name
//! (e.g. `s1`, `c7552ish`), then as a `.bench` file path; `#<uid>`
//! addresses a circuit already registered in the target registry.
//!
//! Long-running commands respond to Ctrl-C by cancelling cooperatively:
//! the run stops at its next budget check-in with a structured partial
//! result (and, for optimize/atpg, a resume checkpoint) instead of the
//! process being killed mid-write.  A second Ctrl-C kills the process.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "--remote" => match rest.split_first() {
            Some((addr, argv)) => commands::remote(addr, argv),
            None => Err(format!("--remote requires <addr> <command ...>\n{}", commands::USAGE)),
        },
        "stats" => commands::stats(rest),
        "analyze" => commands::analyze(rest),
        "estimate" => commands::estimate(rest),
        "eco" => commands::eco(rest),
        "optimize" => commands::optimize(rest),
        "simulate" => commands::simulate(rest),
        "atpg" => commands::atpg(rest),
        "generate" => commands::generate(rest),
        "load" => commands::load(rest),
        "stat" => commands::stat(),
        "serve" => commands::serve(rest),
        "client" => commands::client(rest),
        "workloads" => {
            commands::workloads();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

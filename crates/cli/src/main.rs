//! `wrt` — command-line front end for the weighted-random-testing
//! workspace.
//!
//! ```text
//! wrt stats    <netlist.bench | workload>          circuit statistics
//! wrt analyze  <netlist.bench | workload | all> [--lint] [--json]
//! wrt optimize <netlist.bench | workload> [--grid G] [--confidence C]
//!              [--engine cop|stafan|monte-carlo] [--threads T]
//!              [--seed-weights uniform|scoap]
//! wrt simulate <netlist.bench | workload> --patterns N [--weights w1,w2,…]
//!              [--threads T]
//! wrt atpg     <netlist.bench | workload> [--backtracks B]
//!              [--guidance cop|scoap|unguided]
//! wrt generate [--gates N] [--seed S] [--out FILE]  tiled synthetic netlist
//! wrt workloads                                    list built-in circuits
//! ```
//!
//! A circuit argument is first tried as a workload registry name
//! (e.g. `s1`, `c7552ish`), then as a `.bench` file path.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "stats" => commands::stats(rest),
        "analyze" => commands::analyze(rest),
        "optimize" => commands::optimize(rest),
        "simulate" => commands::simulate(rest),
        "atpg" => commands::atpg(rest),
        "generate" => commands::generate(rest),
        "workloads" => {
            commands::workloads();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

//! The PODEM algorithm: path-oriented decision making on primary inputs.
//!
//! PODEM searches the space of primary-input assignments only (unlike the
//! D-algorithm's internal-line decisions): pick an *objective* (excite the
//! fault, then advance the D-frontier), *backtrace* it to an unassigned
//! input, assign, imply by simulation, and backtrack on conflicts.  The
//! search is complete: exhausting it proves the fault redundant.

use wrt_analyze::Scoap;
use wrt_circuit::{Circuit, GateKind, NodeId};
use wrt_estimate::signal_probabilities_cop;
use wrt_fault::{Fault, FaultSite};

use crate::dvalue::{Dv, Tri};

/// Result of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A detecting assignment; `None` entries are don't-cares.
    Test(Vec<Option<bool>>),
    /// The complete search proved no test exists.
    Redundant,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// Controllability model driving the backtrace input choice.
///
/// All variants share the same objective/D-frontier logic; only
/// `pick_input` — which unknown fanin a multi-input backtrace descends
/// into — consults the model.  Detected/redundant conclusions are
/// guidance-independent (the search is complete either way); the model
/// only changes how many backtracks the search needs.
#[derive(Debug, Clone)]
enum Guidance {
    /// No cost model: descend into the first unknown fanin.  The
    /// unguided baseline for measuring what guidance buys.
    Uniform,
    /// COP signal probabilities at equiprobable inputs (the default).
    Cop(Vec<f64>),
    /// SCOAP integer controllabilities (`wrt_analyze`).
    Scoap {
        /// CC0 per node.
        cc0: Vec<u32>,
        /// CC1 per node.
        cc1: Vec<u32>,
    },
}

/// A PODEM test generator bound to one circuit.
///
/// Constructing it once precomputes the controllability guidance (COP
/// signal probabilities at 0.5, SCOAP costs via
/// [`Podem::with_backtrace_costs`], or none via [`Podem::unguided`]) and
/// the output distances used by the backtrace and D-frontier heuristics.
#[derive(Debug, Clone)]
pub struct Podem<'c> {
    circuit: &'c Circuit,
    backtrack_limit: usize,
    /// Backtrace difficulty guide.
    guidance: Guidance,
    /// Minimum fanout distance to a primary output (`u32::MAX` if none).
    po_dist: Vec<u32>,
}

impl<'c> Podem<'c> {
    /// Creates a generator with the default backtrack limit (10 000) and
    /// COP-probability backtrace guidance.
    pub fn new(circuit: &'c Circuit) -> Self {
        let ctrl = signal_probabilities_cop(circuit, &vec![0.5; circuit.num_inputs()]);
        Self::with_guidance(circuit, Guidance::Cop(ctrl))
    }

    /// Creates a generator whose backtrace uses SCOAP integer
    /// controllability costs: descend into the cheapest input when any
    /// one suffices, the most expensive when all are required.
    ///
    /// # Example
    ///
    /// ```
    /// use wrt_analyze::Scoap;
    /// use wrt_atpg::{AtpgOutcome, Podem};
    /// use wrt_fault::Fault;
    ///
    /// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
    /// let c = wrt_circuit::parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
    /// let scoap = Scoap::compute(&c);
    /// let podem = Podem::with_backtrace_costs(&c, &scoap);
    /// let y = c.node_id("y").expect("exists");
    /// assert!(matches!(podem.generate(Fault::output(y, false)), AtpgOutcome::Test(_)));
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_backtrace_costs(circuit: &'c Circuit, scoap: &Scoap) -> Self {
        Self::with_guidance(
            circuit,
            Guidance::Scoap {
                cc0: scoap.cc0_all().to_vec(),
                cc1: scoap.cc1_all().to_vec(),
            },
        )
    }

    /// Creates a generator with no backtrace cost model (first unknown
    /// fanin wins): the baseline that guided configurations are measured
    /// against.
    pub fn unguided(circuit: &'c Circuit) -> Self {
        Self::with_guidance(circuit, Guidance::Uniform)
    }

    fn with_guidance(circuit: &'c Circuit, guidance: Guidance) -> Self {
        let mut po_dist = vec![u32::MAX; circuit.num_nodes()];
        // Reverse pass: node ids are topological, so a reverse scan
        // settles distances in one sweep.
        for idx in (0..circuit.num_nodes()).rev() {
            let id = NodeId::from_index(idx);
            if circuit.is_output(id) {
                po_dist[idx] = 0;
            }
            for &sink in circuit.fanout(id) {
                let d = po_dist[sink.index()].saturating_add(1);
                po_dist[idx] = po_dist[idx].min(d);
            }
        }
        Podem {
            circuit,
            backtrack_limit: 10_000,
            guidance,
            po_dist,
        }
    }

    /// Overrides the backtrack limit.
    pub fn with_backtrack_limit(mut self, limit: usize) -> Self {
        self.backtrack_limit = limit;
        self
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&self, fault: Fault) -> AtpgOutcome {
        self.generate_counted(fault).0
    }

    /// Like [`Podem::generate`], also returning the number of backtracks
    /// the search needed — the cost metric guided and unguided
    /// configurations are compared on.
    pub fn generate_counted(&self, fault: Fault) -> (AtpgOutcome, usize) {
        let num_inputs = self.circuit.num_inputs();
        let mut assignment = vec![Tri::X; num_inputs];
        // Decision stack: (input index, second branch already tried).
        let mut stack: Vec<(usize, bool)> = Vec::new();
        let mut backtracks = 0usize;
        // Set when a dead end was not a proven conflict (a frontier gate
        // whose unknowns our objective cannot target): exhausting the
        // search then yields `Aborted`, never a false redundancy proof.
        let mut incomplete = false;

        loop {
            let sim = self.simulate(fault, &assignment);
            if self
                .circuit
                .outputs()
                .iter()
                .any(|&o| sim.values[o.index()].is_fault_effect())
            {
                return (
                    AtpgOutcome::Test(assignment.iter().map(|t| t.value()).collect()),
                    backtracks,
                );
            }

            let mut next_decision = None;
            match self.objective(fault, &sim) {
                Goal::Objective(node, value) => {
                    next_decision = self.backtrace(node, value, &sim.values);
                    if next_decision.is_none() {
                        // Backtrace dead ends are heuristic, not proofs.
                        incomplete = true;
                    }
                }
                Goal::Conflict => {}
                Goal::SoftDeadEnd => incomplete = true,
            }
            match next_decision {
                Some((pi, v)) => {
                    stack.push((pi, false));
                    assignment[pi] = Tri::known(v);
                }
                None => {
                    // Conflict: flip the most recent untried decision.
                    backtracks += 1;
                    if backtracks > self.backtrack_limit {
                        return (AtpgOutcome::Aborted, backtracks);
                    }
                    loop {
                        match stack.pop() {
                            None => {
                                let outcome = if incomplete {
                                    AtpgOutcome::Aborted
                                } else {
                                    AtpgOutcome::Redundant
                                };
                                return (outcome, backtracks);
                            }
                            Some((pi, true)) => assignment[pi] = Tri::X,
                            Some((pi, false)) => {
                                assignment[pi] = !assignment[pi];
                                stack.push((pi, true));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Forward 9-valued implication with the fault injected.
    fn simulate(&self, fault: Fault, assignment: &[Tri]) -> SimState {
        let n = self.circuit.num_nodes();
        let mut values = vec![Dv::X; n];
        let mut frontier = Vec::new();
        for (id, node) in self.circuit.iter() {
            let mut pair = match node.kind() {
                GateKind::Input => {
                    let t = assignment[self.circuit.input_position(id).expect("pi")];
                    Dv {
                        good: t,
                        faulty: t,
                    }
                }
                GateKind::Const0 => Dv::known(false),
                GateKind::Const1 => Dv::known(true),
                kind => {
                    let fanin_value = |pin: usize, f: NodeId| -> Dv {
                        let mut v = values[f.index()];
                        if let FaultSite::InputPin { gate, pin: fp } = fault.site {
                            if gate == id && fp == pin {
                                v.faulty = Tri::known(fault.stuck_value);
                            }
                        }
                        v
                    };
                    let mut effect_on_input = false;
                    let mut acc: Option<Dv> = None;
                    for (pin, &f) in node.fanin().iter().enumerate() {
                        let v = fanin_value(pin, f);
                        effect_on_input |= v.is_fault_effect();
                        acc = Some(match (acc, kind) {
                            (None, _) => v,
                            (Some(a), GateKind::And | GateKind::Nand) => a.and(v),
                            (Some(a), GateKind::Or | GateKind::Nor) => a.or(v),
                            (Some(a), GateKind::Xor | GateKind::Xnor) => a.xor(v),
                            (Some(_), _) => unreachable!("1-input kinds"),
                        });
                    }
                    let mut out = acc.expect("gates have fanin");
                    if kind.is_inverting() {
                        out = !out;
                    }
                    if effect_on_input && out.is_unknown() {
                        frontier.push(id);
                    }
                    out
                }
            };
            if fault.site == FaultSite::Output(id) {
                pair.faulty = Tri::known(fault.stuck_value);
            }
            values[id.index()] = pair;
        }
        SimState { values, frontier }
    }

    /// The next objective, a proven conflict, or a soft dead end.
    fn objective(&self, fault: Fault, sim: &SimState) -> Goal {
        // Phase 1: excitation — the faulty line's good value must be the
        // complement of the stuck value.
        let driver = fault.site.driver(self.circuit);
        match sim.values[driver.index()].good.value() {
            None => return Goal::Objective(driver, !fault.stuck_value),
            Some(g) if g == fault.stuck_value => return Goal::Conflict,
            Some(_) => {}
        }
        // Phase 2: propagation — advance the D-frontier gate closest to a
        // primary output, provided an X-path to an output still exists.
        let mut candidates: Vec<NodeId> = sim
            .frontier
            .iter()
            .copied()
            .filter(|&g| self.has_x_path(g, &sim.values))
            .collect();
        if candidates.is_empty() {
            // No propagation path at all: a genuine dead end for this
            // branch (the classic X-path check).
            return Goal::Conflict;
        }
        candidates.sort_by_key(|&g| self.po_dist[g.index()]);
        for &gate in &candidates {
            let node = self.circuit.node(gate);
            // Set an unknown, non-fault-carrying input to the
            // non-controlling value.
            if let Some(&pin) = node
                .fanin()
                .iter()
                .find(|&&f| sim.values[f.index()].good == Tri::X)
            {
                let value = match node.kind() {
                    GateKind::And | GateKind::Nand => true,
                    GateKind::Or | GateKind::Nor => false,
                    // Either value propagates through XOR; pick 0.
                    _ => false,
                };
                return Goal::Objective(pin, value);
            }
        }
        // Frontier gates exist but none has an input our good-side
        // objective can target (mixed good-known/faulty-unknown pairs):
        // backtrack, but remember this was not a proof.
        Goal::SoftDeadEnd
    }

    /// Whether a fault effect at `from` can still reach an output through
    /// unknown-valued nodes.
    fn has_x_path(&self, from: NodeId, values: &[Dv]) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.circuit.num_nodes()];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            if !values[n.index()].is_unknown() {
                continue;
            }
            if self.circuit.is_output(n) {
                return true;
            }
            stack.extend(self.circuit.fanout(n).iter().copied());
        }
        false
    }

    /// Walks an objective back to an unassigned primary input.
    fn backtrace(
        &self,
        mut node: NodeId,
        mut value: bool,
        values: &[Dv],
    ) -> Option<(usize, bool)> {
        loop {
            let nd = self.circuit.node(node);
            match nd.kind() {
                GateKind::Input => {
                    let pi = self.circuit.input_position(node).expect("pi");
                    return (values[node.index()].good == Tri::X).then_some((pi, value));
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Not => {
                    value = !value;
                    node = nd.fanin()[0];
                }
                GateKind::Buf => {
                    node = nd.fanin()[0];
                }
                kind @ (GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor) => {
                    let base = value ^ kind.is_inverting();
                    // "all inputs required" for AND@1 / OR@0; otherwise any
                    // single input suffices.
                    let need_all = match kind {
                        GateKind::And | GateKind::Nand => base,
                        _ => !base,
                    };
                    let next = self.pick_input(nd.fanin(), values, base, need_all)?;
                    node = next;
                    value = base;
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Choose an unknown input; the value it needs is the
                    // target parity against the other inputs (unknown
                    // co-inputs counted as 0 — later decisions fix them).
                    let target = value ^ (kind_is_xnor(nd.kind()));
                    let chosen = nd
                        .fanin()
                        .iter()
                        .copied()
                        .find(|&f| values[f.index()].good == Tri::X)?;
                    let parity = nd
                        .fanin()
                        .iter()
                        .filter(|&&f| f != chosen)
                        .fold(false, |acc, &f| {
                            acc ^ values[f.index()].good.value().unwrap_or(false)
                        });
                    node = chosen;
                    value = target ^ parity;
                }
            }
        }
    }

    /// Selects an unknown fanin: the hardest to control when all inputs
    /// must take `base`, the easiest when one suffices (per the active
    /// [`Guidance`] model; unguided takes the first unknown fanin).
    fn pick_input(
        &self,
        fanin: &[NodeId],
        values: &[Dv],
        base: bool,
        need_all: bool,
    ) -> Option<NodeId> {
        let mut xs = fanin
            .iter()
            .copied()
            .filter(|&f| values[f.index()].good == Tri::X);
        match &self.guidance {
            Guidance::Uniform => xs.next(),
            Guidance::Cop(ctrl) => {
                // Probability of achieving `base`: low = hard.
                let score = |f: NodeId| -> f64 {
                    let p1 = ctrl[f.index()];
                    if base {
                        p1
                    } else {
                        1.0 - p1
                    }
                };
                if need_all {
                    xs.min_by(|&a, &b| score(a).total_cmp(&score(b)))
                } else {
                    xs.max_by(|&a, &b| score(a).total_cmp(&score(b)))
                }
            }
            Guidance::Scoap { cc0, cc1 } => {
                // Integer cost of achieving `base`: high = hard.
                let cost = |f: NodeId| -> u32 {
                    if base {
                        cc1[f.index()]
                    } else {
                        cc0[f.index()]
                    }
                };
                if need_all {
                    xs.max_by_key(|&f| cost(f))
                } else {
                    xs.min_by_key(|&f| cost(f))
                }
            }
        }
    }
}

fn kind_is_xnor(kind: GateKind) -> bool {
    kind == GateKind::Xnor
}

struct SimState {
    values: Vec<Dv>,
    frontier: Vec<NodeId>,
}

enum Goal {
    Objective(NodeId, bool),
    Conflict,
    SoftDeadEnd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;
    use wrt_fault::FaultList;

    pub fn detects(circuit: &Circuit, fault: Fault, test: &[Option<bool>]) -> bool {
        // Fill don't-cares with 0 and check via scalar double simulation.
        let assignment: Vec<bool> = test.iter().map(|t| t.unwrap_or(false)).collect();
        let mut good = vec![false; circuit.num_nodes()];
        let mut bad = vec![false; circuit.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in circuit.iter() {
            good[id.index()] = match node.kind() {
                GateKind::Input => assignment[circuit.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| good[f.index()]));
                    kind.eval(&buf)
                }
            };
            let mut v = match node.kind() {
                GateKind::Input => assignment[circuit.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    for (pin, f) in node.fanin().iter().enumerate() {
                        let mut fv = bad[f.index()];
                        if let FaultSite::InputPin { gate, pin: fp } = fault.site {
                            if gate == id && fp == pin {
                                fv = fault.stuck_value;
                            }
                        }
                        buf.push(fv);
                    }
                    kind.eval(&buf)
                }
            };
            if fault.site == FaultSite::Output(id) {
                v = fault.stuck_value;
            }
            bad[id.index()] = v;
        }
        circuit
            .outputs()
            .iter()
            .any(|&o| good[o.index()] != bad[o.index()])
    }

    #[test]
    fn and_gate_tests_are_the_expected_vectors() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let a = c.node_id("a").unwrap();
        let podem = Podem::new(&c);
        match podem.generate(Fault::output(y, false)) {
            AtpgOutcome::Test(t) => assert_eq!(t, vec![Some(true), Some(true)]),
            other => panic!("{other:?}"),
        }
        match podem.generate(Fault::output(a, true)) {
            AtpgOutcome::Test(t) => {
                assert_eq!(t[0], Some(false));
                assert_eq!(t[1], Some(true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_fault_is_proven() {
        // y = OR(a, NOT a) is constant 1: y s-a-1 is untestable.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let podem = Podem::new(&c);
        assert_eq!(podem.generate(Fault::output(y, true)), AtpgOutcome::Redundant);
        // …while s-a-0 is trivially testable.
        assert!(matches!(
            podem.generate(Fault::output(y, false)),
            AtpgOutcome::Test(_)
        ));
    }

    #[test]
    fn reconvergent_masking_requires_backtracking() {
        // Classic example where the first propagation choice fails:
        // z = AND(XOR(a,b), XOR(b,a)) is constant 0; the XOR output
        // faults are still testable through careful excitation.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\nx1 = XOR(a, b)\nx2 = XNOR(a, b)\n\
             z = AND(x1, x2)\nw = OR(x1, b)\n",
        )
        .unwrap();
        let podem = Podem::new(&c);
        // z s-a-1 is testable (z is constant 0, any pattern shows 0 vs 1).
        let z = c.node_id("z").unwrap();
        match podem.generate(Fault::output(z, true)) {
            AtpgOutcome::Test(t) => assert!(detects(&c, Fault::output(z, true), &t)),
            other => panic!("{other:?}"),
        }
        // z s-a-0 is redundant: z is never 1.
        assert_eq!(podem.generate(Fault::output(z, false)), AtpgOutcome::Redundant);
    }

    #[test]
    fn full_adder_every_fault_testable_and_tests_verified() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap();
        let podem = Podem::new(&c);
        for (_, fault) in FaultList::full(&c).iter() {
            match podem.generate(fault) {
                AtpgOutcome::Test(t) => assert!(
                    detects(&c, fault, &t),
                    "bogus test for {}",
                    fault.describe(&c)
                ),
                other => panic!("{}: {other:?}", fault.describe(&c)),
            }
        }
    }

    #[test]
    fn pin_faults_at_fanout_stems() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n",
        )
        .unwrap();
        let y = c.node_id("y").unwrap();
        let podem = Podem::new(&c);
        let fault = Fault::input_pin(y, 0, true);
        match podem.generate(fault) {
            AtpgOutcome::Test(t) => {
                assert!(detects(&c, fault, &t));
                // The branch fault needs a=0, b=1 (distinguishing it from
                // the stem fault, which pattern (0,0) would catch via z).
                assert_eq!(t[0], Some(false));
                assert_eq!(t[1], Some(true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wide_and_is_easy_for_podem() {
        // The random-pattern-hard case is deterministic-easy: one
        // backtrace chain, no backtracking.
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..24 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let y = c.node_id("y").unwrap();
        let podem = Podem::new(&c);
        match podem.generate(Fault::output(y, false)) {
            AtpgOutcome::Test(t) => assert!(t.iter().all(|&v| v == Some(true))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn guidance_never_changes_conclusions() {
        // All three guidance models are complete searches: per fault the
        // outcome class (test / redundant) must match exactly, only the
        // backtrack spend may differ.
        use wrt_analyze::Scoap;
        let c = wrt_workloads::s1();
        let scoap = Scoap::compute(&c);
        let cop = Podem::new(&c);
        let uniform = Podem::unguided(&c);
        let guided = Podem::with_backtrace_costs(&c, &scoap);
        for (_, fault) in FaultList::checkpoints(&c).collapse_equivalent(&c).iter() {
            let (a, _) = cop.generate_counted(fault);
            let (b, _) = uniform.generate_counted(fault);
            let (g, _) = guided.generate_counted(fault);
            let class = |o: &AtpgOutcome| match o {
                AtpgOutcome::Test(_) => "test",
                AtpgOutcome::Redundant => "redundant",
                AtpgOutcome::Aborted => "aborted",
            };
            assert_eq!(class(&a), class(&b), "{}", fault.describe(&c));
            assert_eq!(class(&a), class(&g), "{}", fault.describe(&c));
        }
    }

    #[test]
    fn counted_backtracks_match_generate() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let podem = Podem::new(&c);
        // Proving the redundancy requires exhausting both branches of the
        // single decision variable: at least one backtrack.
        let (outcome, backtracks) = podem.generate_counted(Fault::output(y, true));
        assert_eq!(outcome, AtpgOutcome::Redundant);
        assert!(backtracks >= 1, "redundancy proof must backtrack");
        assert_eq!(podem.generate(Fault::output(y, true)), outcome);
    }

    #[test]
    fn scoap_guided_tests_are_valid() {
        use wrt_analyze::Scoap;
        let c = wrt_workloads::s1();
        let scoap = Scoap::compute(&c);
        let podem = Podem::with_backtrace_costs(&c, &scoap);
        for (_, fault) in FaultList::checkpoints(&c).iter().take(40) {
            if let AtpgOutcome::Test(t) = podem.generate(fault) {
                assert!(detects(&c, fault, &t), "bogus test for {}", fault.describe(&c));
            }
        }
    }

    #[test]
    fn backtrack_limit_aborts() {
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c);
        let podem = Podem::new(&c).with_backtrack_limit(0);
        // With zero backtracks allowed, at least some fault aborts or is
        // solved conflict-free; none may be misclassified as redundant.
        for (_, fault) in faults.iter().take(20) {
            assert_ne!(podem.generate(fault), AtpgOutcome::Redundant);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wrt_circuit::CircuitBuilder;
    use wrt_estimate::exact_detection_probability;
    use wrt_fault::FaultList;

    fn arb_circuit() -> impl Strategy<Value = Circuit> {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
        ]);
        proptest::collection::vec((kinds, proptest::collection::vec(0usize..50, 1..3)), 3..16)
            .prop_map(|specs| {
                let mut b = CircuitBuilder::named("rand");
                let mut ids = Vec::new();
                for i in 0..5 {
                    ids.push(b.input(format!("i{i}")));
                }
                for (kind, picks) in specs {
                    let fanin: Vec<_> = if kind == GateKind::Not {
                        vec![ids[picks[0] % ids.len()]]
                    } else {
                        picks.iter().map(|&p| ids[p % ids.len()]).collect()
                    };
                    ids.push(b.gate_auto(kind, &fanin).expect("valid"));
                }
                b.mark_output(*ids.last().expect("non-empty"));
                b.mark_output(ids[5.min(ids.len() - 1)]);
                b.build().expect("valid circuit")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn podem_agrees_with_exhaustive_ground_truth(circuit in arb_circuit()) {
            let podem = Podem::new(&circuit);
            for (_, fault) in FaultList::full(&circuit).iter() {
                let exact = exact_detection_probability(
                    &circuit, fault, &[0.5; 5], 8,
                ).expect("small circuit");
                match podem.generate(fault) {
                    AtpgOutcome::Test(t) => {
                        prop_assert!(exact > 0.0, "test found for undetectable {}", fault.describe(&circuit));
                        prop_assert!(
                            super::tests::detects(&circuit, fault, &t),
                            "invalid test for {}", fault.describe(&circuit)
                        );
                    }
                    AtpgOutcome::Redundant => {
                        prop_assert!(exact == 0.0, "{} declared redundant but p = {exact}", fault.describe(&circuit));
                    }
                    AtpgOutcome::Aborted => {
                        // Permitted, though unexpected at this size.
                    }
                }
            }
        }
    }
}

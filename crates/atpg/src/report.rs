//! Batch test generation with fault dropping.
//!
//! [`generate_tests`] is the plain driver; [`generate_tests_budgeted`]
//! runs the same loop under a [`Budget`] with fault-boundary check-ins
//! and checkpoint/resume.  The budget's *backtrack* axis counts total
//! PODEM backtracks (the search-effort metric), its *eval* axis counts
//! PODEM invocations; both are machine-independent, so interrupting on
//! either axis is deterministic and the checkpointed state resumes
//! bit-identically (random fill continues from the saved RNG state).
//! Deadline and cancellation trips are timing-dependent; their partial
//! reports are well-formed but not reproducible.

use wrt_analyze::Scoap;
use wrt_circuit::Circuit;
use wrt_fault::{FaultId, FaultList};
use wrt_robust::{Budget, BudgetExceeded, Checkpoint, CheckpointError, DegradeStep, Ladder, Progress, RunOutcome};
use wrt_sim::{FaultSimulator, Xoshiro256};

use crate::patterns::PatternSet;
use crate::podem::{AtpgOutcome, Podem};

/// Which controllability model steers the PODEM backtrace.
///
/// The choice never changes which faults end up detected or redundant
/// (PODEM's search is complete); it only changes how many backtracks the
/// search spends getting there, which [`AtpgReport::backtracks`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BacktraceGuidance {
    /// First-unknown-fanin baseline; no cost model.
    Unguided,
    /// COP signal probabilities at equiprobable inputs (the default).
    #[default]
    Cop,
    /// SCOAP integer controllability costs (`wrt_analyze`).
    Scoap,
}

/// Configuration for [`generate_tests`].
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: usize,
    /// Fill don't-care bits randomly (seeded) instead of with 0 — random
    /// fill lets each deterministic pattern drop many additional faults.
    pub random_fill_seed: Option<u64>,
    /// Controllability model for the backtrace input choice.
    pub guidance: BacktraceGuidance,
    /// Graceful degradation: when a *guided* search aborts at the
    /// backtrack limit, retry that fault once with the unguided backtrace
    /// (a different descent order sometimes escapes a guidance-induced
    /// thrashing region).  Off by default; each retry is recorded on the
    /// degradation ladder.
    pub degrade_on_abort: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            backtrack_limit: 10_000,
            random_fill_seed: Some(0x5EED),
            guidance: BacktraceGuidance::default(),
            degrade_on_abort: false,
        }
    }
}

/// Outcome of a batch ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgReport {
    /// The generated test set (don't-cares filled), bit-packed — one bit
    /// per primary input, not one heap `Vec` per pattern.
    pub tests: PatternSet,
    /// Faults detected (by a generated test or by dropping).
    pub detected: Vec<FaultId>,
    /// Faults proven redundant.
    pub redundant: Vec<FaultId>,
    /// Faults aborted at the backtrack limit.
    pub aborted: Vec<FaultId>,
    /// Faults never handed to PODEM because the budget tripped first
    /// (always empty on complete runs) — the survivor worklist a resumed
    /// run picks up.
    pub survivors: Vec<FaultId>,
    /// Number of PODEM invocations (≤ fault count thanks to dropping).
    pub podem_calls: usize,
    /// Total backtracks across all PODEM invocations — the search-effort
    /// metric that backtrace guidance models are compared on.
    pub backtracks: usize,
}

impl AtpgReport {
    /// Fault coverage over the detectable faults
    /// (`detected / (total − redundant)`).
    pub fn coverage(&self) -> f64 {
        let detectable = self.detected.len() + self.aborted.len();
        if detectable == 0 {
            return 1.0;
        }
        self.detected.len() as f64 / detectable as f64
    }
}

/// Runs PODEM over every fault in `faults`, fault-simulating each
/// generated pattern against the remaining targets (fault dropping).
///
/// Faults already detected by an earlier pattern are never handed to
/// PODEM, which is what makes deterministic ATPG economical — and what
/// the paper's §5.2 accelerates further by *pre-dropping* with optimized
/// random patterns before any PODEM call.
pub fn generate_tests(circuit: &Circuit, faults: &FaultList, config: &AtpgConfig) -> AtpgReport {
    let mut state = AtpgState::fresh(circuit.num_inputs(), faults.len(), config);
    let tripped = run_atpg_loop(circuit, faults, config, &mut state, None);
    debug_assert!(tripped.is_none(), "unbudgeted ATPG cannot be interrupted");
    state.into_report(faults).0
}

/// The resumable state of the batch loop at a fault boundary.
struct AtpgState {
    detected: Vec<bool>,
    tests: PatternSet,
    redundant: Vec<FaultId>,
    aborted: Vec<FaultId>,
    podem_calls: usize,
    backtracks: usize,
    /// Lowest fault index not yet attempted.
    next_index: usize,
    rng: Option<Xoshiro256>,
    ladder: Ladder,
}

impl AtpgState {
    fn fresh(num_inputs: usize, num_faults: usize, config: &AtpgConfig) -> Self {
        AtpgState {
            detected: vec![false; num_faults],
            tests: PatternSet::new(num_inputs),
            redundant: Vec::new(),
            aborted: Vec::new(),
            podem_calls: 0,
            backtracks: 0,
            next_index: 0,
            rng: config.random_fill_seed.map(Xoshiro256::seed_from),
            ladder: Ladder::new(),
        }
    }

    /// Finalizes into a report plus the degradation ladder.  Faults past
    /// `next_index` that are neither detected nor classified are the
    /// survivors of an interrupted run.
    fn into_report(self, faults: &FaultList) -> (AtpgReport, Ladder) {
        let detected: Vec<FaultId> = self
            .detected
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(k, _)| FaultId::from_index(k))
            .collect();
        let survivors: Vec<FaultId> = (self.next_index..faults.len())
            .map(FaultId::from_index)
            .filter(|id| !self.detected[id.index()])
            .collect();
        let report = AtpgReport {
            tests: self.tests,
            detected,
            redundant: self.redundant,
            aborted: self.aborted,
            survivors,
            podem_calls: self.podem_calls,
            backtracks: self.backtracks,
        };
        (report, self.ladder)
    }

    /// Serializes the state at the current fault boundary.
    fn to_checkpoint(&self, fingerprint: u64, circuit: &Circuit) -> Checkpoint {
        let mut c = Checkpoint::new(ATPG_CHECKPOINT_KIND);
        c.put("fingerprint", format!("{fingerprint:016x}"));
        c.put_circuit_identity(circuit.structural_digest(), circuit.uid());
        c.put("num_faults", self.detected.len());
        c.put("next_index", self.next_index);
        c.put("podem_calls", self.podem_calls);
        c.put("backtracks", self.backtracks);
        let detected: Vec<u64> = self
            .detected
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(k, _)| k as u64)
            .collect();
        c.put_u64_slice("detected", &detected);
        let ids = |v: &[FaultId]| -> Vec<u64> { v.iter().map(|id| id.index() as u64).collect() };
        c.put_u64_slice("redundant", &ids(&self.redundant));
        c.put_u64_slice("aborted", &ids(&self.aborted));
        // Tests as comma-joined 0/1 bitstrings (one per pattern) — the
        // text format predates the bit-packed store and is preserved.
        let tests: Vec<String> = self
            .tests
            .iter()
            .map(|t| t.map(|b| if b { '1' } else { '0' }).collect())
            .collect();
        c.put("tests", tests.join(","));
        // RNG mid-stream state; empty when fill is deterministic zeros.
        c.put_u64_slice("rng_state", &self.rng.as_ref().map_or(Vec::new(), |r| r.state().to_vec()));
        c
    }

    /// Rebuilds the state from a checkpoint written by
    /// [`AtpgState::to_checkpoint`], validating the run fingerprint.
    fn from_checkpoint(
        ckpt: &Checkpoint,
        circuit: &Circuit,
        faults: &FaultList,
        config: &AtpgConfig,
        fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        let recorded = ckpt.get("fingerprint")?;
        if recorded != format!("{fingerprint:016x}") {
            return Err(CheckpointError::Corrupt {
                reason: format!(
                    "checkpoint fingerprint {recorded} does not match this circuit/fault-list/\
                     config combination ({fingerprint:016x}); resume must use the original inputs"
                ),
            });
        }
        // The fingerprint only hashes circuit *counts*; the structural
        // digest (when recorded) pins the resume to the exact netlist.
        ckpt.validate_circuit_digest(circuit.structural_digest())?;
        let num_inputs = circuit.num_inputs();
        let num_faults: usize = ckpt.get_parse("num_faults")?;
        if num_faults != faults.len() {
            return Err(CheckpointError::Corrupt {
                reason: format!(
                    "checkpoint is for {num_faults} faults, this list has {}",
                    faults.len()
                ),
            });
        }
        let mut detected = vec![false; num_faults];
        for k in ckpt.get_u64_slice("detected")? {
            let k = k as usize;
            if k >= num_faults {
                return Err(CheckpointError::Corrupt {
                    reason: format!("detected fault index {k} out of range"),
                });
            }
            detected[k] = true;
        }
        let to_ids = |key: &str| -> Result<Vec<FaultId>, CheckpointError> {
            ckpt.get_u64_slice(key)?
                .into_iter()
                .map(|k| {
                    let k = k as usize;
                    if k >= num_faults {
                        return Err(CheckpointError::Corrupt {
                            reason: format!("{key} fault index {k} out of range"),
                        });
                    }
                    Ok(FaultId::from_index(k))
                })
                .collect()
        };
        let raw_tests = ckpt.get("tests")?;
        let mut tests = PatternSet::new(num_inputs);
        let mut bits: Vec<bool> = Vec::with_capacity(num_inputs);
        for pattern in raw_tests.split(',').filter(|p| !p.is_empty()) {
            bits.clear();
            for ch in pattern.chars() {
                bits.push(match ch {
                    '0' => false,
                    '1' => true,
                    other => {
                        return Err(CheckpointError::Corrupt {
                            reason: format!("test bitstring holds `{other}`"),
                        })
                    }
                });
            }
            if bits.len() != num_inputs {
                return Err(CheckpointError::Corrupt {
                    reason: format!(
                        "test bitstring is {} bits wide, circuit has {num_inputs} inputs",
                        bits.len()
                    ),
                });
            }
            tests.push(&bits);
        }
        let rng_words = ckpt.get_u64_slice("rng_state")?;
        let rng = match (rng_words.len(), config.random_fill_seed) {
            (0, None) => None,
            (4, Some(_)) => Some(Xoshiro256::from_state([
                rng_words[0],
                rng_words[1],
                rng_words[2],
                rng_words[3],
            ])),
            _ => {
                return Err(CheckpointError::Corrupt {
                    reason: "rng_state does not match the configured fill mode".to_string(),
                })
            }
        };
        Ok(AtpgState {
            detected,
            tests,
            redundant: to_ids("redundant")?,
            aborted: to_ids("aborted")?,
            podem_calls: ckpt.get_parse("podem_calls")?,
            backtracks: ckpt.get_parse("backtracks")?,
            next_index: ckpt.get_parse("next_index")?,
            rng,
            ladder: Ladder::new(),
        })
    }
}

/// The shared fault loop.  Returns `Some(reason)` when the budget
/// tripped at a fault boundary (state is left at that boundary).
fn run_atpg_loop(
    circuit: &Circuit,
    faults: &FaultList,
    config: &AtpgConfig,
    state: &mut AtpgState,
    budget: Option<&Budget>,
) -> Option<BudgetExceeded> {
    let podem = match config.guidance {
        BacktraceGuidance::Unguided => Podem::unguided(circuit),
        BacktraceGuidance::Cop => Podem::new(circuit),
        BacktraceGuidance::Scoap => {
            Podem::with_backtrace_costs(circuit, &Scoap::compute(circuit))
        }
    }
    .with_backtrack_limit(config.backtrack_limit);
    // The unguided fallback for `degrade_on_abort` (pointless when the
    // primary search is already unguided).
    let fallback = (config.degrade_on_abort
        && config.guidance != BacktraceGuidance::Unguided)
        .then(|| Podem::unguided(circuit).with_backtrack_limit(config.backtrack_limit));
    let mut sim = FaultSimulator::new(circuit, faults);

    for (id, fault) in faults.iter() {
        if id.index() < state.next_index {
            continue;
        }
        if state.detected[id.index()] {
            state.next_index = id.index() + 1;
            continue;
        }
        if let Some(budget) = budget {
            state.next_index = id.index();
            if let Err(reason) =
                budget.check_in(state.podem_calls as u64, state.backtracks as u64)
            {
                return Some(reason);
            }
        }
        state.podem_calls += 1;
        let (mut outcome, backtracks) = podem.generate_counted(fault);
        state.backtracks += backtracks;
        if outcome == AtpgOutcome::Aborted {
            if let Some(fb) = &fallback {
                state.ladder.record(
                    DegradeStep::GuidedToUnguided,
                    format!("fault {} aborted at {backtracks} backtracks", id.index()),
                );
                state.podem_calls += 1;
                let (retry, retry_backtracks) = fb.generate_counted(fault);
                state.backtracks += retry_backtracks;
                outcome = retry;
            }
        }
        match outcome {
            AtpgOutcome::Redundant => state.redundant.push(id),
            AtpgOutcome::Aborted => state.aborted.push(id),
            AtpgOutcome::Test(pattern) => {
                let filled: Vec<bool> = pattern
                    .iter()
                    .map(|bit| {
                        bit.unwrap_or_else(|| match &mut state.rng {
                            Some(r) => r.next_u64() & 1 == 1,
                            None => false,
                        })
                    })
                    .collect();
                // Drop every fault this pattern detects.
                let words: Vec<u64> = filled.iter().map(|&b| u64::from(b)).collect();
                let hits = sim.detect_block(&words, 1);
                for (k, w) in hits.iter().enumerate() {
                    if *w != 0 {
                        state.detected[k] = true;
                    }
                }
                // The targeted fault must be among them.
                debug_assert!(state.detected[id.index()], "PODEM test failed simulation");
                state.detected[id.index()] = true;
                state.tests.push(&filled);
            }
        }
        state.next_index = id.index() + 1;
    }
    None
}

/// The checkpoint `kind` tag of batch-ATPG state.
pub const ATPG_CHECKPOINT_KIND: &str = "atpg";

/// Fingerprint of everything an ATPG resume must hold fixed.
fn run_fingerprint(circuit: &Circuit, faults: &FaultList, config: &AtpgConfig) -> u64 {
    let text = format!(
        "inputs={} nodes={} faults={} backtrack_limit={} fill={:?} guidance={:?} degrade={}",
        circuit.num_inputs(),
        circuit.num_nodes(),
        faults.len(),
        config.backtrack_limit,
        config.random_fill_seed,
        config.guidance,
        config.degrade_on_abort,
    );
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A budgeted batch-ATPG run: the (possibly partial) report, the
/// degradation ladder, and — when interrupted — the resume checkpoint.
#[derive(Debug)]
pub struct BudgetedAtpg {
    /// The run outcome; `Interrupted` carries the partial report, whose
    /// `survivors` field lists the faults never attempted.
    pub outcome: RunOutcome<AtpgReport>,
    /// `degrade_on_abort` retries this run performed (never checkpointed:
    /// the ladder is per-run diagnostics).
    pub ladder: Ladder,
    /// Resume state at the last fault boundary (`Some` iff interrupted).
    pub checkpoint: Option<Checkpoint>,
}

/// [`generate_tests`] under a [`Budget`], with checkpoint/resume.
///
/// The budget is checked before each PODEM target: the *eval* axis
/// counts PODEM invocations, the *backtrack* axis total backtracks.
/// Both are machine-independent, so interrupting on either axis is
/// deterministic; resuming from the returned checkpoint (same circuit,
/// fault list, and config) continues bit-identically — including the
/// random-fill stream, whose mid-run RNG state the checkpoint carries.
///
/// # Errors
///
/// [`CheckpointError`] when `resume` does not validate against this
/// circuit/fault-list/config combination.  No work is performed then.
pub fn generate_tests_budgeted(
    circuit: &Circuit,
    faults: &FaultList,
    config: &AtpgConfig,
    budget: &Budget,
    resume: Option<&Checkpoint>,
) -> Result<BudgetedAtpg, CheckpointError> {
    let fingerprint = run_fingerprint(circuit, faults, config);
    let mut state = match resume {
        Some(ckpt) => {
            if ckpt.kind() != ATPG_CHECKPOINT_KIND {
                return Err(CheckpointError::WrongKind {
                    expected: ATPG_CHECKPOINT_KIND.to_string(),
                    found: ckpt.kind().to_string(),
                });
            }
            AtpgState::from_checkpoint(ckpt, circuit, faults, config, fingerprint)?
        }
        None => AtpgState::fresh(circuit.num_inputs(), faults.len(), config),
    };
    let tripped = run_atpg_loop(circuit, faults, config, &mut state, Some(budget));
    match tripped {
        None => {
            let (report, ladder) = state.into_report(faults);
            Ok(BudgetedAtpg {
                outcome: RunOutcome::Complete(report),
                ladder,
                checkpoint: None,
            })
        }
        Some(reason) => {
            let progress = Progress {
                done: state.next_index as u64,
                total: Some(faults.len() as u64),
                unit: "faults",
            };
            let checkpoint = state.to_checkpoint(fingerprint, circuit);
            let (report, ladder) = state.into_report(faults);
            Ok(BudgetedAtpg {
                outcome: RunOutcome::Interrupted {
                    partial: report,
                    reason,
                    progress,
                },
                ladder,
                checkpoint: Some(checkpoint),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn full_adder_complete_coverage_with_compact_set() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let report = generate_tests(&c, &faults, &AtpgConfig::default());
        assert!(report.redundant.is_empty());
        assert!(report.aborted.is_empty());
        assert_eq!(report.coverage(), 1.0);
        // Dropping keeps the test set far below one test per fault.
        assert!(
            report.tests.len() < faults.len() / 2,
            "{} tests for {} faults",
            report.tests.len(),
            faults.len()
        );
        assert!(report.podem_calls < faults.len());
    }

    #[test]
    fn redundancies_are_reported() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\nt = OR(a, n)\ny = AND(t, b)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let report = generate_tests(&c, &faults, &AtpgConfig::default());
        assert!(!report.redundant.is_empty(), "t s-a-1 class is redundant");
        // Every non-redundant fault is detected.
        assert_eq!(report.coverage(), 1.0);
    }

    #[test]
    fn zero_fill_is_deterministic() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let faults = FaultList::full(&c);
        let config = AtpgConfig {
            random_fill_seed: None,
            ..AtpgConfig::default()
        };
        let r1 = generate_tests(&c, &faults, &config);
        let r2 = generate_tests(&c, &faults, &config);
        assert_eq!(r1.tests, r2.tests);
    }

    #[test]
    fn guidance_variants_agree_on_detection_sets() {
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let run = |guidance| {
            generate_tests(
                &c,
                &faults,
                &AtpgConfig {
                    guidance,
                    random_fill_seed: None,
                    ..AtpgConfig::default()
                },
            )
        };
        let cop = run(BacktraceGuidance::Cop);
        let unguided = run(BacktraceGuidance::Unguided);
        let scoap = run(BacktraceGuidance::Scoap);
        // Fault dropping differs pattern-by-pattern, but redundancy calls
        // and final coverage are guidance-independent.
        assert_eq!(cop.redundant, unguided.redundant);
        assert_eq!(cop.redundant, scoap.redundant);
        assert_eq!(cop.coverage(), unguided.coverage());
        assert_eq!(cop.coverage(), scoap.coverage());
    }

    fn assert_same_report(got: &AtpgReport, reference: &AtpgReport, what: &str) {
        assert_eq!(got.tests, reference.tests, "{what}: tests");
        assert_eq!(got.detected, reference.detected, "{what}: detected");
        assert_eq!(got.redundant, reference.redundant, "{what}: redundant");
        assert_eq!(got.aborted, reference.aborted, "{what}: aborted");
        assert_eq!(got.survivors, reference.survivors, "{what}: survivors");
        assert_eq!(got.podem_calls, reference.podem_calls, "{what}: calls");
        assert_eq!(got.backtracks, reference.backtracks, "{what}: backtracks");
    }

    #[test]
    fn budgeted_with_unlimited_budget_matches_plain_run() {
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let config = AtpgConfig::default();
        let reference = generate_tests(&c, &faults, &config);
        let run = generate_tests_budgeted(
            &c,
            &faults,
            &config,
            &wrt_robust::Budget::unlimited(),
            None,
        )
        .expect("no checkpoint involved");
        assert!(run.checkpoint.is_none());
        assert!(run.ladder.is_empty());
        match run.outcome {
            wrt_robust::RunOutcome::Complete(got) => {
                assert!(got.survivors.is_empty());
                assert_same_report(&got, &reference, "unbudgeted");
            }
            wrt_robust::RunOutcome::Interrupted { .. } => panic!("must complete"),
        }
    }

    #[test]
    fn resume_after_podem_call_budget_is_bit_identical() {
        // Interrupt on the eval (= PODEM call) axis — deterministic — at
        // several points, round-trip the checkpoint through its text
        // form, resume unlimited, and compare to the uninterrupted run.
        // Random fill is ON so this also proves the RNG state survives.
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let config = AtpgConfig::default();
        assert!(config.random_fill_seed.is_some(), "fill must be random here");
        let reference = generate_tests(&c, &faults, &config);
        assert!(reference.podem_calls > 6, "need room to interrupt");

        for calls in [1u64, 3, 5] {
            let budget = wrt_robust::Budget::unlimited().with_max_evals(calls);
            let run = generate_tests_budgeted(&c, &faults, &config, &budget, None)
                .expect("fresh run");
            let ckpt = run.checkpoint.expect("interrupted run must checkpoint");
            match &run.outcome {
                wrt_robust::RunOutcome::Interrupted {
                    partial,
                    reason,
                    progress,
                } => {
                    assert_eq!(*reason, wrt_robust::BudgetExceeded::Evals);
                    assert_eq!(progress.unit, "faults");
                    assert_eq!(partial.podem_calls as u64, calls);
                    assert!(!partial.survivors.is_empty(), "work must remain");
                }
                wrt_robust::RunOutcome::Complete(_) => panic!("{calls} calls must interrupt"),
            }

            let ckpt =
                wrt_robust::Checkpoint::parse(&ckpt.render(), ATPG_CHECKPOINT_KIND)
                    .expect("checkpoint round-trips");
            let resumed = generate_tests_budgeted(
                &c,
                &faults,
                &config,
                &wrt_robust::Budget::unlimited(),
                Some(&ckpt),
            )
            .expect("resume validates");
            match resumed.outcome {
                wrt_robust::RunOutcome::Complete(got) => {
                    assert_same_report(&got, &reference, &format!("resume after {calls}"));
                }
                wrt_robust::RunOutcome::Interrupted { .. } => panic!("must complete"),
            }
        }
    }

    #[test]
    fn global_backtrack_budget_interrupts_deterministically() {
        // A redundancy proof forces backtracks; a 0-backtrack global
        // budget must trip at the first fault boundary after they accrue,
        // identically across runs.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\nt = OR(a, n)\ny = AND(t, b)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let budget = wrt_robust::Budget::unlimited().with_max_backtracks(1);
        let run = |config: &AtpgConfig| {
            generate_tests_budgeted(&c, &faults, config, &budget, None).expect("fresh")
        };
        let config = AtpgConfig::default();
        let a = run(&config);
        let b = run(&config);
        match (&a.outcome, &b.outcome) {
            (
                wrt_robust::RunOutcome::Interrupted {
                    partial: pa,
                    reason: ra,
                    ..
                },
                wrt_robust::RunOutcome::Interrupted {
                    partial: pb,
                    reason: rb,
                    ..
                },
            ) => {
                assert_eq!(ra, rb);
                assert_eq!(*ra, wrt_robust::BudgetExceeded::Backtracks);
                assert_same_report(pa, pb, "two identically-budgeted runs");
            }
            other => panic!("expected two interruptions, got {other:?}"),
        }
    }

    #[test]
    fn resume_rejects_foreign_and_mismatched_checkpoints() {
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let config = AtpgConfig::default();
        let budget = wrt_robust::Budget::unlimited().with_max_evals(1);
        let run = generate_tests_budgeted(&c, &faults, &config, &budget, None).unwrap();
        let ckpt = run.checkpoint.expect("interrupted");

        // Different config → fingerprint refusal.
        let other = AtpgConfig {
            backtrack_limit: 7,
            ..config
        };
        let err = generate_tests_budgeted(
            &c,
            &faults,
            &other,
            &wrt_robust::Budget::unlimited(),
            Some(&ckpt),
        )
        .unwrap_err();
        assert!(
            matches!(err, wrt_robust::CheckpointError::Corrupt { .. }),
            "{err}"
        );

        // A structural twin — same input/node/fault counts, different
        // gates — slips past the count-only fingerprint; the recorded
        // structural digest must refuse it.
        let and4 = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n",
        )
        .unwrap();
        let or4 = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = OR(a, b, c, d)\n",
        )
        .unwrap();
        let and_faults = FaultList::checkpoints(&and4);
        let or_faults = FaultList::checkpoints(&or4);
        assert_eq!(and_faults.len(), or_faults.len(), "twin must match counts");
        assert_ne!(and4.structural_digest(), or4.structural_digest());
        let run = generate_tests_budgeted(&and4, &and_faults, &config, &budget, None).unwrap();
        let twin_ckpt = run.checkpoint.expect("interrupted");
        let err = generate_tests_budgeted(
            &or4,
            &or_faults,
            &config,
            &wrt_robust::Budget::unlimited(),
            Some(&twin_ckpt),
        )
        .unwrap_err();
        assert!(err.to_string().contains("structural digest"), "{err}");

        // Foreign subsystem kind → WrongKind.
        let foreign = wrt_robust::Checkpoint::new("optimize");
        let err = generate_tests_budgeted(
            &c,
            &faults,
            &config,
            &wrt_robust::Budget::unlimited(),
            Some(&foreign),
        )
        .unwrap_err();
        assert!(
            matches!(err, wrt_robust::CheckpointError::WrongKind { .. }),
            "{err}"
        );
    }

    #[test]
    fn degrade_on_abort_retries_unguided_and_records_the_ladder() {
        // With a zero per-fault backtrack limit the guided search aborts
        // whenever it hits any conflict; the unguided retry has the same
        // limit, so conclusions only improve when the descent order
        // differs.  The key contract: retries are *recorded*, and the
        // outcome classes never get worse than the non-degrading run.
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let base = AtpgConfig {
            backtrack_limit: 0,
            random_fill_seed: None,
            ..AtpgConfig::default()
        };
        let plain = generate_tests(&c, &faults, &base);
        let degrading = AtpgConfig {
            degrade_on_abort: true,
            ..base
        };
        let run = generate_tests_budgeted(
            &c,
            &faults,
            &degrading,
            &wrt_robust::Budget::unlimited(),
            None,
        )
        .expect("no checkpoint involved");
        let report = run.outcome.into_value();
        let retries = run.ladder.count(wrt_robust::DegradeStep::GuidedToUnguided);
        if plain.aborted.is_empty() {
            assert!(run.ladder.is_empty(), "no aborts, nothing to degrade");
        } else {
            // Processing is identical up to the first guided abort, so at
            // least that fault must have been retried; and every fault
            // still aborted after degradation went through a retry.
            assert!(retries >= 1, "first abort must be retried");
        }
        assert!(retries >= report.aborted.len());
        assert!(report.aborted.len() <= plain.aborted.len());
    }

    #[test]
    fn workload_circuit_s1_is_fully_atpg_testable() {
        // S1 had its redundancies removed by construction; PODEM must
        // find a test for every collapsed checkpoint fault.
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let report = generate_tests(&c, &faults, &AtpgConfig::default());
        assert!(report.aborted.is_empty(), "aborted: {:?}", report.aborted);
        assert!(
            report.redundant.is_empty(),
            "redundant: {:?}",
            report.redundant
        );
        assert_eq!(report.coverage(), 1.0);
    }
}

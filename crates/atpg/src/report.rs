//! Batch test generation with fault dropping.

use wrt_analyze::Scoap;
use wrt_circuit::Circuit;
use wrt_fault::{FaultId, FaultList};
use wrt_sim::{FaultSimulator, Xoshiro256};

use crate::podem::{AtpgOutcome, Podem};

/// Which controllability model steers the PODEM backtrace.
///
/// The choice never changes which faults end up detected or redundant
/// (PODEM's search is complete); it only changes how many backtracks the
/// search spends getting there, which [`AtpgReport::backtracks`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BacktraceGuidance {
    /// First-unknown-fanin baseline; no cost model.
    Unguided,
    /// COP signal probabilities at equiprobable inputs (the default).
    #[default]
    Cop,
    /// SCOAP integer controllability costs (`wrt_analyze`).
    Scoap,
}

/// Configuration for [`generate_tests`].
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: usize,
    /// Fill don't-care bits randomly (seeded) instead of with 0 — random
    /// fill lets each deterministic pattern drop many additional faults.
    pub random_fill_seed: Option<u64>,
    /// Controllability model for the backtrace input choice.
    pub guidance: BacktraceGuidance,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            backtrack_limit: 10_000,
            random_fill_seed: Some(0x5EED),
            guidance: BacktraceGuidance::default(),
        }
    }
}

/// Outcome of a batch ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgReport {
    /// The generated test set (don't-cares filled).
    pub tests: Vec<Vec<bool>>,
    /// Faults detected (by a generated test or by dropping).
    pub detected: Vec<FaultId>,
    /// Faults proven redundant.
    pub redundant: Vec<FaultId>,
    /// Faults aborted at the backtrack limit.
    pub aborted: Vec<FaultId>,
    /// Number of PODEM invocations (≤ fault count thanks to dropping).
    pub podem_calls: usize,
    /// Total backtracks across all PODEM invocations — the search-effort
    /// metric that backtrace guidance models are compared on.
    pub backtracks: usize,
}

impl AtpgReport {
    /// Fault coverage over the detectable faults
    /// (`detected / (total − redundant)`).
    pub fn coverage(&self) -> f64 {
        let detectable = self.detected.len() + self.aborted.len();
        if detectable == 0 {
            return 1.0;
        }
        self.detected.len() as f64 / detectable as f64
    }
}

/// Runs PODEM over every fault in `faults`, fault-simulating each
/// generated pattern against the remaining targets (fault dropping).
///
/// Faults already detected by an earlier pattern are never handed to
/// PODEM, which is what makes deterministic ATPG economical — and what
/// the paper's §5.2 accelerates further by *pre-dropping* with optimized
/// random patterns before any PODEM call.
pub fn generate_tests(circuit: &Circuit, faults: &FaultList, config: &AtpgConfig) -> AtpgReport {
    let podem = match config.guidance {
        BacktraceGuidance::Unguided => Podem::unguided(circuit),
        BacktraceGuidance::Cop => Podem::new(circuit),
        BacktraceGuidance::Scoap => {
            Podem::with_backtrace_costs(circuit, &Scoap::compute(circuit))
        }
    }
    .with_backtrack_limit(config.backtrack_limit);
    let mut rng = config.random_fill_seed.map(Xoshiro256::seed_from);
    let mut sim = FaultSimulator::new(circuit, faults);

    let mut detected = vec![false; faults.len()];
    let mut report = AtpgReport {
        tests: Vec::new(),
        detected: Vec::new(),
        redundant: Vec::new(),
        aborted: Vec::new(),
        podem_calls: 0,
        backtracks: 0,
    };

    for (id, fault) in faults.iter() {
        if detected[id.index()] {
            continue;
        }
        report.podem_calls += 1;
        let (outcome, backtracks) = podem.generate_counted(fault);
        report.backtracks += backtracks;
        match outcome {
            AtpgOutcome::Redundant => report.redundant.push(id),
            AtpgOutcome::Aborted => report.aborted.push(id),
            AtpgOutcome::Test(pattern) => {
                let filled: Vec<bool> = pattern
                    .iter()
                    .map(|bit| {
                        bit.unwrap_or_else(|| match &mut rng {
                            Some(r) => r.next_u64() & 1 == 1,
                            None => false,
                        })
                    })
                    .collect();
                // Drop every fault this pattern detects.
                let words: Vec<u64> = filled.iter().map(|&b| u64::from(b)).collect();
                let hits = sim.detect_block(&words, 1);
                for (k, w) in hits.iter().enumerate() {
                    if *w != 0 {
                        detected[k] = true;
                    }
                }
                // The targeted fault must be among them.
                debug_assert!(detected[id.index()], "PODEM test failed simulation");
                detected[id.index()] = true;
                report.tests.push(filled);
            }
        }
    }
    report.detected = detected
        .iter()
        .enumerate()
        .filter(|(_, &d)| d)
        .map(|(k, _)| FaultId::from_index(k))
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn full_adder_complete_coverage_with_compact_set() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let report = generate_tests(&c, &faults, &AtpgConfig::default());
        assert!(report.redundant.is_empty());
        assert!(report.aborted.is_empty());
        assert_eq!(report.coverage(), 1.0);
        // Dropping keeps the test set far below one test per fault.
        assert!(
            report.tests.len() < faults.len() / 2,
            "{} tests for {} faults",
            report.tests.len(),
            faults.len()
        );
        assert!(report.podem_calls < faults.len());
    }

    #[test]
    fn redundancies_are_reported() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\nt = OR(a, n)\ny = AND(t, b)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let report = generate_tests(&c, &faults, &AtpgConfig::default());
        assert!(!report.redundant.is_empty(), "t s-a-1 class is redundant");
        // Every non-redundant fault is detected.
        assert_eq!(report.coverage(), 1.0);
    }

    #[test]
    fn zero_fill_is_deterministic() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let faults = FaultList::full(&c);
        let config = AtpgConfig {
            random_fill_seed: None,
            ..AtpgConfig::default()
        };
        let r1 = generate_tests(&c, &faults, &config);
        let r2 = generate_tests(&c, &faults, &config);
        assert_eq!(r1.tests, r2.tests);
    }

    #[test]
    fn guidance_variants_agree_on_detection_sets() {
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let run = |guidance| {
            generate_tests(
                &c,
                &faults,
                &AtpgConfig {
                    guidance,
                    random_fill_seed: None,
                    ..AtpgConfig::default()
                },
            )
        };
        let cop = run(BacktraceGuidance::Cop);
        let unguided = run(BacktraceGuidance::Unguided);
        let scoap = run(BacktraceGuidance::Scoap);
        // Fault dropping differs pattern-by-pattern, but redundancy calls
        // and final coverage are guidance-independent.
        assert_eq!(cop.redundant, unguided.redundant);
        assert_eq!(cop.redundant, scoap.redundant);
        assert_eq!(cop.coverage(), unguided.coverage());
        assert_eq!(cop.coverage(), scoap.coverage());
    }

    #[test]
    fn workload_circuit_s1_is_fully_atpg_testable() {
        // S1 had its redundancies removed by construction; PODEM must
        // find a test for every collapsed checkpoint fault.
        let c = wrt_workloads::s1();
        let faults = FaultList::checkpoints(&c).collapse_equivalent(&c);
        let report = generate_tests(&c, &faults, &AtpgConfig::default());
        assert!(report.aborted.is_empty(), "aborted: {:?}", report.aborted);
        assert!(
            report.redundant.is_empty(),
            "redundant: {:?}",
            report.redundant
        );
        assert_eq!(report.coverage(), 1.0);
    }
}

//! Deterministic test pattern generation (PODEM) for stuck-at faults.
//!
//! The paper positions optimized random patterns *against* deterministic
//! generation: "the computing time of optimizing and simulation together
//! is less than computing test patterns by the D-algorithm" (§5.2).  This
//! crate supplies that comparator: a PODEM-style path-oriented decision
//! maker with complete backtracking, so it is also a *complete* redundancy
//! identifier (a fault for which the search space is exhausted provably
//! has no test) — strictly stronger than the constant-line proofs of
//! `wrt-estimate`.
//!
//! # Example
//!
//! ```
//! use wrt_atpg::{AtpgOutcome, Podem};
//! use wrt_fault::Fault;
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! let c = wrt_circuit::parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let y = c.node_id("y").expect("exists");
//! let podem = Podem::new(&c);
//! // y stuck-at-0 needs the all-ones pattern.
//! match podem.generate(Fault::output(y, false)) {
//!     AtpgOutcome::Test(t) => assert_eq!(t, vec![Some(true), Some(true)]),
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod dvalue;
mod patterns;
mod podem;
mod report;

pub use dvalue::{Dv, Tri};
pub use patterns::PatternSet;
pub use podem::{AtpgOutcome, Podem};
pub use report::{
    generate_tests, generate_tests_budgeted, AtpgConfig, AtpgReport, BacktraceGuidance,
    BudgetedAtpg, ATPG_CHECKPOINT_KIND,
};

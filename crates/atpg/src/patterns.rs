//! Bit-packed test-pattern storage.
//!
//! A batch ATPG run over a large circuit accumulates thousands of
//! patterns, each as wide as the primary-input count.  Storing them as
//! `Vec<Vec<bool>>` costs one heap allocation and one *byte* per bit;
//! [`PatternSet`] packs all patterns into a single flat `Vec<u64>` —
//! 64× denser, allocation-free per pattern, and cheap to clone into
//! checkpoints.

/// A set of equally wide test patterns, bit-packed into one flat word
/// arena.
///
/// Pattern `k` occupies words `k * words_per_pattern ..` with input `i`
/// at bit `i % 64` of word `i / 64`; pad bits beyond `width` are always
/// zero, so derived equality compares pattern sets exactly.
///
/// # Example
///
/// ```
/// use wrt_atpg::PatternSet;
///
/// let mut set = PatternSet::new(3);
/// set.push(&[true, false, true]);
/// assert_eq!(set.len(), 1);
/// assert!(set.bit(0, 0) && !set.bit(0, 1) && set.bit(0, 2));
/// assert_eq!(set.pattern(0).collect::<Vec<bool>>(), [true, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternSet {
    width: usize,
    words: Vec<u64>,
}

impl PatternSet {
    /// An empty set of `width`-bit patterns.
    pub fn new(width: usize) -> Self {
        PatternSet {
            width,
            words: Vec::new(),
        }
    }

    fn words_per_pattern(&self) -> usize {
        self.width.div_ceil(64).max(1)
    }

    /// Bits per pattern (the circuit's primary-input count).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of patterns stored.
    pub fn len(&self) -> usize {
        self.words.len() / self.words_per_pattern()
    }

    /// Whether no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Appends one pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.width()`.
    pub fn push(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.width, "pattern width mismatch");
        self.push_bits(bits.iter().copied());
    }

    /// Appends one pattern from an iterator that must yield exactly
    /// [`PatternSet::width`] bits.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields a different number of bits.
    pub fn push_bits(&mut self, bits: impl Iterator<Item = bool>) {
        let base = self.words.len();
        self.words.resize(base + self.words_per_pattern(), 0);
        let mut count = 0usize;
        for (i, bit) in bits.enumerate() {
            count += 1;
            if bit {
                self.words[base + i / 64] |= 1 << (i % 64);
            }
        }
        assert_eq!(count, self.width, "pattern width mismatch");
    }

    /// The value of input `i` in pattern `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `i` is out of range.
    pub fn bit(&self, k: usize, i: usize) -> bool {
        assert!(k < self.len() && i < self.width, "pattern index out of range");
        self.words[k * self.words_per_pattern() + i / 64] >> (i % 64) & 1 == 1
    }

    /// The bits of pattern `k`, in input order.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pattern(&self, k: usize) -> impl Iterator<Item = bool> + '_ {
        assert!(k < self.len(), "pattern index out of range");
        let base = k * self.words_per_pattern();
        (0..self.width).map(move |i| self.words[base + i / 64] >> (i % 64) & 1 == 1)
    }

    /// Iterates over all patterns.
    pub fn iter(&self) -> impl Iterator<Item = impl Iterator<Item = bool> + '_> + '_ {
        (0..self.len()).map(|k| self.pattern(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_and_reads_back_across_word_boundaries() {
        // 130 bits > 2 words; pattern bits follow i % 3 == 0.
        let width = 130;
        let mut set = PatternSet::new(width);
        let a: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..width).map(|i| i % 7 == 0).collect();
        set.push(&a);
        set.push(&b);
        assert_eq!(set.len(), 2);
        assert_eq!(set.width(), width);
        for i in 0..width {
            assert_eq!(set.bit(0, i), a[i], "pattern 0 bit {i}");
            assert_eq!(set.bit(1, i), b[i], "pattern 1 bit {i}");
        }
        assert_eq!(set.pattern(1).collect::<Vec<bool>>(), b);
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn equality_is_exact() {
        let mut a = PatternSet::new(65);
        let mut b = PatternSet::new(65);
        let p: Vec<bool> = (0..65).map(|i| i % 2 == 0).collect();
        a.push(&p);
        b.push(&p);
        assert_eq!(a, b);
        let mut q = p.clone();
        q[64] = !q[64];
        let mut c = PatternSet::new(65);
        c.push(&q);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "pattern width mismatch")]
    fn rejects_wrong_width() {
        let mut set = PatternSet::new(4);
        set.push(&[true, false]);
    }

    #[test]
    fn memory_is_one_bit_per_input() {
        let mut set = PatternSet::new(64);
        for _ in 0..100 {
            set.push(&[false; 64]);
        }
        // 100 patterns × 64 bits = 100 words.
        assert_eq!(set.len(), 100);
    }
}

//! The composite good/faulty value algebra.
//!
//! PODEM reasons about the fault-free ("good") and faulty machine
//! simultaneously.  Instead of the classical 5-valued {0, 1, X, D, D̄}
//! alphabet we carry an explicit pair of three-valued components, which
//! is closed under all gate operations (it is the 9-valued algebra of
//! Muth; the classical five values are the diagonal + D/D̄).

use std::fmt;

/// Three-valued logic: known 0, known 1, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// Known 0.
    Zero,
    /// Known 1.
    One,
    /// Unassigned / unknown.
    #[default]
    X,
}

impl Tri {
    /// Lifts a boolean.
    pub fn known(v: bool) -> Self {
        if v {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    /// The boolean, if known.
    pub fn value(self) -> Option<bool> {
        match self {
            Tri::Zero => Some(false),
            Tri::One => Some(true),
            Tri::X => None,
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
            (Tri::One, Tri::One) => Tri::One,
            _ => Tri::X,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::One, _) | (_, Tri::One) => Tri::One,
            (Tri::Zero, Tri::Zero) => Tri::Zero,
            _ => Tri::X,
        }
    }

    fn xor(self, other: Tri) -> Tri {
        match (self.value(), other.value()) {
            (Some(a), Some(b)) => Tri::known(a ^ b),
            _ => Tri::X,
        }
    }
}

impl std::ops::Not for Tri {
    type Output = Tri;

    /// Three-valued negation (`X` stays `X`).
    fn not(self) -> Tri {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::X => Tri::X,
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tri::Zero => "0",
            Tri::One => "1",
            Tri::X => "X",
        })
    }
}

/// A good/faulty value pair.
///
/// `D` is `(1, 0)`, `D̄` is `(0, 1)`; plain constants have equal
/// components; partially known mixed pairs like `(1, X)` arise naturally
/// during implication and are handled uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dv {
    /// Fault-free machine value.
    pub good: Tri,
    /// Faulty machine value.
    pub faulty: Tri,
}

impl Dv {
    /// Both machines unknown.
    pub const X: Dv = Dv {
        good: Tri::X,
        faulty: Tri::X,
    };

    /// The same known value in both machines.
    pub fn known(v: bool) -> Self {
        Dv {
            good: Tri::known(v),
            faulty: Tri::known(v),
        }
    }

    /// The classical `D` (good 1 / faulty 0).
    pub fn d() -> Self {
        Dv {
            good: Tri::One,
            faulty: Tri::Zero,
        }
    }

    /// The classical `D̄` (good 0 / faulty 1).
    pub fn dbar() -> Self {
        Dv {
            good: Tri::Zero,
            faulty: Tri::One,
        }
    }

    /// True iff both machines are known and disagree (a fault effect).
    pub fn is_fault_effect(self) -> bool {
        matches!(
            (self.good.value(), self.faulty.value()),
            (Some(g), Some(f)) if g != f
        )
    }

    /// True iff either machine is unknown.
    pub fn is_unknown(self) -> bool {
        self.good == Tri::X || self.faulty == Tri::X
    }

    /// Componentwise AND.
    pub fn and(self, other: Dv) -> Self {
        Dv {
            good: self.good.and(other.good),
            faulty: self.faulty.and(other.faulty),
        }
    }

    /// Componentwise OR.
    pub fn or(self, other: Dv) -> Self {
        Dv {
            good: self.good.or(other.good),
            faulty: self.faulty.or(other.faulty),
        }
    }

    /// Componentwise XOR.
    pub fn xor(self, other: Dv) -> Self {
        Dv {
            good: self.good.xor(other.good),
            faulty: self.faulty.xor(other.faulty),
        }
    }
}

impl std::ops::Not for Dv {
    type Output = Dv;

    /// Negation in both machines (`NOT D = D̄`).
    fn not(self) -> Dv {
        Dv {
            good: !self.good,
            faulty: !self.faulty,
        }
    }
}

impl fmt::Display for Dv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.good, self.faulty) {
            (Tri::One, Tri::Zero) => f.write_str("D"),
            (Tri::Zero, Tri::One) => f.write_str("D'"),
            (g, ff) if g == ff => write!(f, "{g}"),
            (g, ff) => write!(f, "{g}/{ff}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_algebra_classics() {
        let d = Dv::d();
        let one = Dv::known(true);
        let zero = Dv::known(false);
        // D AND 1 = D;  D AND 0 = 0;  D OR 1 = 1;  D OR 0 = D.
        assert_eq!(d.and(one), d);
        assert_eq!(d.and(zero), zero);
        assert_eq!(d.or(one), one);
        assert_eq!(d.or(zero), d);
        // NOT D = D'.
        assert_eq!(!d, Dv::dbar());
        // D AND D' = 0; D OR D' = 1; D XOR D' = 1; D XOR D = 0.
        assert_eq!(d.and(Dv::dbar()), zero);
        assert_eq!(d.or(Dv::dbar()), one);
        assert_eq!(d.xor(Dv::dbar()), one);
        assert_eq!(d.xor(d), zero);
    }

    #[test]
    fn x_absorbs_partially() {
        let x = Dv::X;
        let zero = Dv::known(false);
        let one = Dv::known(true);
        assert_eq!(x.and(zero), zero); // controlling value wins
        assert_eq!(x.or(one), one);
        assert!(x.and(one).is_unknown());
        assert!(x.xor(one).is_unknown());
    }

    #[test]
    fn fault_effect_predicate() {
        assert!(Dv::d().is_fault_effect());
        assert!(Dv::dbar().is_fault_effect());
        assert!(!Dv::known(true).is_fault_effect());
        assert!(!Dv::X.is_fault_effect());
        let mixed = Dv {
            good: Tri::One,
            faulty: Tri::X,
        };
        assert!(!mixed.is_fault_effect());
        assert!(mixed.is_unknown());
    }

    #[test]
    fn display_notation() {
        assert_eq!(Dv::d().to_string(), "D");
        assert_eq!(Dv::dbar().to_string(), "D'");
        assert_eq!(Dv::known(true).to_string(), "1");
        assert_eq!(Dv::X.to_string(), "X");
    }
}

//! Client side of the line protocol: one connection, one request, one
//! framed response.
//!
//! The CLI's `wrt client <addr> <verb...>` and `wrt --remote <addr>`
//! forms both land here, so remote rendering is byte-identical to local
//! rendering by construction — the server runs the same verb functions
//! and the frame codec restores the exact payload text.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{read_response, LineReader, MAX_LINE};

/// Connect timeout; responses themselves may take as long as the server
/// allows its verbs to run.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Sends one request and returns the server's verb result: the outer
/// `Err` is a transport/protocol failure, the inner result mirrors the
/// remote verb's own success or failure.
///
/// # Errors
///
/// Unresolvable or unreachable addresses, argv not representable as one
/// protocol line, transport failures, malformed frames.
pub fn request(addr: &str, argv: &[String]) -> Result<Result<String, String>, String> {
    let line = encode_request(argv)?;
    let mut stream = connect(addr)?;
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    let mut reader = LineReader::new(&stream);
    read_response(&mut reader, &mut || true)
}

/// [`request`] with the two error layers flattened, for callers that
/// treat "server unreachable" and "verb failed over there" the same way.
///
/// # Errors
///
/// Transport failures and remote verb failures alike.
pub fn run(addr: &str, argv: &[String]) -> Result<String, String> {
    request(addr, argv)?
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    use std::net::ToSocketAddrs;
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolves to no address"))?;
    TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))
}

/// Renders argv as one request line, refusing tokens the protocol
/// cannot carry.
fn encode_request(argv: &[String]) -> Result<String, String> {
    if argv.is_empty() {
        return Err("empty request".into());
    }
    for token in argv {
        if token.chars().any(char::is_whitespace) {
            return Err(format!(
                "argument `{token}` contains whitespace, which the line protocol \
                 cannot carry; use a path or name without spaces"
            ));
        }
    }
    let line = format!("{}\n", argv.join(" "));
    if line.len() > MAX_LINE {
        return Err(format!("request exceeds the {MAX_LINE} byte protocol cap"));
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_rejects_unrepresentable_argv() {
        let ok = encode_request(&["stats".into(), "s1".into()]).expect("encodes");
        assert_eq!(ok, "stats s1\n");
        assert!(encode_request(&[]).is_err());
        assert!(encode_request(&["stats".into(), "my circuit".into()]).is_err());
        assert!(encode_request(&["stats".into(), "evil\nstat".into()]).is_err());
        let huge = "x".repeat(MAX_LINE + 1);
        assert!(encode_request(&[huge]).is_err());
    }

    #[test]
    fn connect_failures_are_structured() {
        assert!(run("definitely-not-a-host-:99", &["stat".into()]).is_err());
        // An unused port on localhost: refused, not hung.
        assert!(run("127.0.0.1:1", &["stat".into()]).is_err());
    }
}
